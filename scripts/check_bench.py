#!/usr/bin/env python
"""Bench-regression gate: freshly generated BENCH_*.json vs the committed ones.

CI's perf-smoke job regenerates every operational benchmark in ``--quick``
mode; this script compares each generated file against the committed
repo-root artifact of the same name and fails the build when a *quality
regression* appears.  Machine speed and workload scale differ between the
committed (full, maintainer-machine) runs and CI smoke runs, so raw
throughput is never compared.  Two classes of field are:

* **acceptance booleans** — every boolean that is ``true`` in the
  committed artifact must still be ``true`` in the generated one
  (``bit_identical``, ``reopen_counters_identical``,
  ``compaction_bounds_runs``, per-row flags, ...).  Booleans are
  collected recursively, so new acceptance flags are guarded the moment
  a benchmark starts emitting them.
* **dimensionless ratios** — machine-independent quality metrics
  (speedups, slowdowns, write amplification, run counts) listed per
  benchmark in :data:`RATIO_GUARDS`, compared within ``--tolerance``
  in their *bad* direction only: a ``higher``-is-better ratio may not
  fall below ``committed / tolerance``; a ``lower``-is-better ratio may
  not rise above ``committed * tolerance``.

Usage::

    python scripts/check_bench.py --generated bench-artifacts
    python scripts/check_bench.py --generated bench-artifacts --tolerance 2.5
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# (dotted path pattern, direction); patterns match the flattened JSON
# paths of numeric scalars, list indices spelled out (fnmatch wildcards).
RATIO_GUARDS: dict[str, list[tuple[str, str]]] = {
    "pointbatch": [
        ("speedup", "higher"),
        ("filter_speedup", "higher"),
    ],
    "rangebatch": [
        ("speedup", "higher"),
    ],
    "shardedlsm": [],  # acceptance is boolean-only (exactness ladder)
    "store": [
        # identity flags (reopen_bit_identical, mmap_matches_eager,
        # answers_match_none, zlib_shrink_ok) carry exactness; these two
        # guard the read-tier wins themselves.
        ("reopen_curve.reopen_speedup", "higher"),
        ("codec_sweep.zlib_disk_shrink", "higher"),
    ],
    "wal": [
        # a dict keyed by shard count -> paths like batch_vs_off_slowdown.1
        ("batch_vs_off_slowdown.*", "lower"),
    ],
    "compaction": [
        ("policies.*.write_amp", "lower"),
        ("policies.*.final_runs", "lower"),
        ("policies.*.mean_runs_during_ingest", "lower"),
    ],
    "server": [
        # dimensionless wins of the coalescing front-end; raw QPS and
        # latency stay unguarded (machine-dependent).
        ("coalesce_qps_speedup", "higher"),
        ("engine_call_reduction", "higher"),
    ],
}


def flatten(obj, prefix: str = ""):
    """Yield ``(dotted_path, value)`` for every scalar in a JSON tree."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from flatten(value, f"{prefix}{key}." if prefix or key else key)
    elif isinstance(obj, list):
        for index, value in enumerate(obj):
            yield from flatten(value, f"{prefix}{index}.")
    else:
        yield prefix.rstrip("."), obj


def flatten_dict(obj) -> dict:
    return dict(flatten(obj))


def check_file(name: str, committed: dict, generated: dict, tolerance: float):
    """All violations for one benchmark, as human-readable strings."""
    problems = []
    bench = committed.get("benchmark", name)
    if generated.get("benchmark") != bench:
        problems.append(
            f"benchmark name mismatch: committed {bench!r} vs generated "
            f"{generated.get('benchmark')!r}"
        )
        return problems

    committed_flat = flatten_dict(committed)
    generated_flat = flatten_dict(generated)

    # 1. acceptance booleans must not regress.
    for path, value in sorted(committed_flat.items()):
        if value is not True or path == "mode":
            continue
        got = generated_flat.get(path)
        if got is None:
            # Quick/full runs may shape rows differently (e.g. list
            # lengths); a missing flag is only a problem when the whole
            # key vanished everywhere.
            if not any(
                candidate.split(".")[-1] == path.split(".")[-1]
                and generated_flat[candidate] is True
                for candidate in generated_flat
            ):
                problems.append(f"{path}: acceptance flag missing from output")
            continue
        if got is not True:
            problems.append(f"{path}: was true in committed run, now {got!r}")

    # 2. guarded ratios must stay within tolerance in the bad direction.
    for pattern, direction in RATIO_GUARDS.get(bench, []):
        matched = False
        for path, value in sorted(committed_flat.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if not fnmatch.fnmatch(path, pattern):
                continue
            matched = True
            got = generated_flat.get(path)
            if not isinstance(got, (int, float)) or isinstance(got, bool):
                problems.append(f"{path}: guarded ratio missing from output")
                continue
            if direction == "higher" and got < value / tolerance:
                problems.append(
                    f"{path}: {got:.3g} fell below committed {value:.3g} "
                    f"/ tolerance {tolerance:g}"
                )
            elif direction == "lower" and got > value * tolerance:
                problems.append(
                    f"{path}: {got:.3g} rose above committed {value:.3g} "
                    f"* tolerance {tolerance:g}"
                )
        if not matched:
            problems.append(
                f"guard pattern {pattern!r} matched nothing in the committed "
                "artifact (stale guard?)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--generated",
        type=Path,
        required=True,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--committed",
        type=Path,
        default=REPO_ROOT,
        help=f"directory holding the committed artifacts (default: {REPO_ROOT})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=4.0,
        help="allowed ratio drift factor, bad direction only (default: 4.0 — "
        "quick CI runs vs committed full runs; tighten for full-vs-full)",
    )
    args = parser.parse_args(argv)

    committed_files = sorted(args.committed.glob("BENCH_*.json"))
    if not committed_files:
        print(f"no committed BENCH_*.json under {args.committed}")
        return 2

    failures = 0
    checked = 0
    for committed_path in committed_files:
        generated_path = args.generated / committed_path.name
        if not generated_path.is_file():
            print(f"MISSING {committed_path.name}: not generated by this run")
            failures += 1
            continue
        committed = json.loads(committed_path.read_text())
        generated = json.loads(generated_path.read_text())
        problems = check_file(
            committed_path.stem, committed, generated, args.tolerance
        )
        checked += 1
        if problems:
            failures += 1
            print(f"FAIL {committed_path.name}:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {committed_path.name}")

    print(
        f"bench gate: {checked} compared, {failures} failing "
        f"(tolerance {args.tolerance:g})"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
