"""Suppression round-trip and rule-engine behavior for ``repro lint``."""

import textwrap

from repro.analysis import Linter
from repro.analysis.core import SUPPRESSION_RULE_ID
from repro.analysis.rules import ALL_RULES, LockDisciplineRule


def lint_snippet(tmp_path, relpath, source, rules=None):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    rule_classes = rules if rules is not None else ALL_RULES
    return Linter([cls() for cls in rule_classes]).run([path])


BAD_LINE = "        self.sstables = []"


def test_suppression_round_trip(tmp_path):
    """A finding on a line with a matching reasoned suppression moves to
    the suppressed list and the report goes green."""
    source = f"""
        class Engine:
            def rotate(self):
        {BAD_LINE}  # repro-lint: ignore[lock-discipline] -- test fixture
    """
    report = lint_snippet(tmp_path, "repro/lsm/db.py", source, [LockDisciplineRule])
    assert report.ok, report.render()
    assert len(report.suppressed) == 1
    finding, suppression = report.suppressed[0]
    assert finding.rule == "lock-discipline"
    assert suppression.reason == "test fixture"
    assert "1 suppressed" in report.render()
    assert "test fixture" in report.render(show_suppressed=True)


def test_wildcard_suppression_covers_any_rule(tmp_path):
    source = f"""
        class Engine:
            def rotate(self):
        {BAD_LINE}  # repro-lint: ignore[*] -- fixture blanket waiver
    """
    report = lint_snippet(tmp_path, "repro/lsm/db.py", source, [LockDisciplineRule])
    assert report.ok
    assert len(report.suppressed) == 1


def test_suppression_for_other_rule_does_not_cover(tmp_path):
    source = f"""
        class Engine:
            def rotate(self):
        {BAD_LINE}  # repro-lint: ignore[dtype-discipline] -- wrong rule
    """
    report = lint_snippet(tmp_path, "repro/lsm/db.py", source)
    assert not report.ok
    assert [f.rule for f in report.findings] == ["lock-discipline"]


def test_missing_reason_is_reported_and_does_not_suppress(tmp_path):
    source = f"""
        class Engine:
            def rotate(self):
        {BAD_LINE}  # repro-lint: ignore[lock-discipline]
    """
    report = lint_snippet(tmp_path, "repro/lsm/db.py", source, [LockDisciplineRule])
    rules = sorted(finding.rule for finding in report.findings)
    assert rules == ["lint-suppression", "lock-discipline"]
    assert "missing its '-- reason'" in report.findings[0].message


def test_unknown_rule_id_in_suppression_is_reported(tmp_path):
    source = """
        def fine():
            return 1  # repro-lint: ignore[no-such-rule] -- misremembered id
    """
    report = lint_snippet(tmp_path, "repro/lsm/db.py", source)
    assert [f.rule for f in report.findings] == [SUPPRESSION_RULE_ID]
    assert "unknown rule 'no-such-rule'" in report.findings[0].message


def test_empty_rule_list_in_suppression_is_reported(tmp_path):
    source = """
        def fine():
            return 1  # repro-lint: ignore[] -- forgot the rule id
    """
    report = lint_snippet(tmp_path, "repro/lsm/db.py", source)
    assert [f.rule for f in report.findings] == [SUPPRESSION_RULE_ID]
    assert "names no rule" in report.findings[0].message


def test_suppression_syntax_in_strings_is_inert(tmp_path):
    """Docstrings documenting the marker must not create suppressions."""
    source = '''
        def document():
            """Use  # repro-lint: ignore[lock-discipline] -- reason  inline."""
            return 1
    '''
    report = lint_snippet(tmp_path, "repro/lsm/db.py", source)
    assert report.ok
    assert not report.suppressed


def test_findings_sorted_and_rendered_with_locations(tmp_path):
    source = """
        class Engine:
            def later(self):
                self.sstables = [2]

            def earlier(self):
                self.sstables = [1]
    """
    report = lint_snippet(tmp_path, "repro/lsm/db.py", source, [LockDisciplineRule])
    lines = [finding.line for finding in report.findings]
    assert lines == sorted(lines)
    rendered = report.findings[0].render()
    assert rendered.endswith("] self.sstables mutated outside "
                             "'with self._maintenance_lock'")
    assert "repro/lsm/db.py:" in rendered
    assert "[lock-discipline]" in rendered


def test_multiple_rules_one_suppression_comment(tmp_path):
    """One comment can name several rules, comma-separated."""
    source = f"""
        class Engine:
            def rotate(self):
        {BAD_LINE}  # repro-lint: ignore[lock-discipline, dtype-discipline] -- both
    """
    report = lint_snippet(tmp_path, "repro/lsm/db.py", source)
    assert report.ok, report.render()
    assert len(report.suppressed) == 1
