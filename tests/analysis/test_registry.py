"""The serial-discipline registry cross-check, driven by a fake registry.

``SerialDisciplineRule.registry_findings`` normally reads the live
``repro.api`` registry; it takes an injectable mapping so these tests can
exercise every failure mode without touching global state.
"""

import textwrap
import types

from repro.analysis import Linter
from repro.analysis.rules import SerialDisciplineRule

SERIAL_FIXTURE = """
    KIND_A = 1
    KIND_B = 2
    KIND_C = 3

    KIND_NAMES = {KIND_A: "a", KIND_B: "b", KIND_C: "c"}
"""

READER_FIXTURE = """
    import repro.serial as serial

    def read(kind):
        return kind == serial.KIND_C
"""


def _modules(tmp_path, with_reader=True):
    serial_path = tmp_path / "repro" / "serial.py"
    serial_path.parent.mkdir(parents=True, exist_ok=True)
    serial_path.write_text(textwrap.dedent(SERIAL_FIXTURE))
    paths = [serial_path]
    if with_reader:
        reader = tmp_path / "repro" / "reader.py"
        reader.write_text(textwrap.dedent(READER_FIXTURE))
        paths.append(reader)
    rule = SerialDisciplineRule()
    modules = Linter([rule]).load(paths)
    serial = next(m for m in modules if m.display.endswith("repro/serial.py"))
    constants = rule._kind_constants(serial)
    values = {value: name for name, (_, value) in constants.items()}
    return rule, serial, constants, values, modules


def _entry(serial_kind):
    return types.SimpleNamespace(serial_kind=serial_kind)


def test_clean_registry_yields_no_findings(tmp_path):
    rule, serial, constants, values, modules = _modules(tmp_path)
    registry = {"alpha": _entry(1), "beta": _entry(2)}
    # KIND_C has no loader but the reader module references it by name.
    findings = list(
        rule.registry_findings(serial, constants, values, modules, registry)
    )
    assert findings == []


def test_loader_without_constant_is_flagged(tmp_path):
    rule, serial, constants, values, modules = _modules(tmp_path)
    registry = {"alpha": _entry(1), "ghost": _entry(9)}
    findings = list(
        rule.registry_findings(serial, constants, values, modules, registry)
    )
    messages = [f.message for f in findings]
    assert any(
        "'ghost' loads serial kind 9" in m and "no KIND_* constant" in m
        for m in messages
    )


def test_duplicate_readers_for_one_kind_are_flagged(tmp_path):
    rule, serial, constants, values, modules = _modules(tmp_path)
    registry = {"alpha": _entry(1), "alias": _entry(1), "beta": _entry(2)}
    findings = list(
        rule.registry_findings(serial, constants, values, modules, registry)
    )
    assert any(
        "serial kind 1 has 2 registered readers" in f.message for f in findings
    )


def test_constant_without_any_reader_is_flagged(tmp_path):
    rule, serial, constants, values, modules = _modules(tmp_path, with_reader=False)
    registry = {"alpha": _entry(1), "beta": _entry(2)}
    findings = list(
        rule.registry_findings(serial, constants, values, modules, registry)
    )
    assert any(
        "KIND_C has no reader" in f.message for f in findings
    )


def test_entries_without_serial_kind_are_ignored(tmp_path):
    rule, serial, constants, values, modules = _modules(tmp_path)
    registry = {
        "alpha": _entry(1),
        "beta": _entry(2),
        "volatile": types.SimpleNamespace(serial_kind=None),
    }
    findings = list(
        rule.registry_findings(serial, constants, values, modules, registry)
    )
    assert findings == []


def test_live_registry_is_consistent(tmp_path):
    """The real repro.api registry passes its own cross-check (this is
    what the linter's finalize() enforces over the installed tree)."""
    import repro.api as api

    rule, serial, constants, values, modules = _modules(tmp_path)
    del serial, constants, values  # fixture copies; rebuild from the live tree
    import repro.serial

    from pathlib import Path

    live_path = Path(repro.serial.__file__)
    live_modules = Linter([rule]).load([live_path])
    live_serial = live_modules[0]
    live_constants = rule._kind_constants(live_serial)
    live_values = {value: name for name, (_, value) in live_constants.items()}
    findings = list(
        rule.registry_findings(
            live_serial,
            live_constants,
            live_values,
            live_modules,
            dict(api._REGISTRY),
        )
    )
    # The live store modules are not in `live_modules`, so constants read
    # only by the store layer would look reader-less here; restrict the
    # assertion to the registry-shape checks (duplicates / ghost kinds).
    shape_problems = [
        f for f in findings if "has no reader" not in f.message
    ]
    assert shape_problems == []
