"""Fixture-based tests for every ``repro lint`` rule.

Each rule is run against a known-bad snippet it must flag and a
known-good twin it must pass.  Fixtures are written to ``tmp_path``
under the same relative layout as the real tree (``repro/lsm/db.py``,
...) because rules select files by path suffix.
"""

import textwrap

import pytest

from repro.analysis import Linter
from repro.analysis.rules import (
    ALL_RULES,
    DtypeDisciplineRule,
    DurabilityDisciplineRule,
    ExceptionDisciplineRule,
    LockDisciplineRule,
    SerialDisciplineRule,
    WalOrderingRule,
)


def lint_snippet(tmp_path, relpath, source, rules=None):
    """Write ``source`` at ``tmp_path/relpath`` and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    rule_classes = rules if rules is not None else ALL_RULES
    return Linter([cls() for cls in rule_classes]).run([path])


def rule_ids(report):
    return sorted({finding.rule for finding in report.findings})


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------

LOCK_BAD = """
    class Engine:
        def rotate(self):
            self.sstables = []

        def unsafe_caller(self):
            self._commit_merge()

        def extend(self, run):
            self.sstables += [run]
"""

LOCK_GOOD = """
    class Engine:
        def __init__(self):
            self.sstables = []

        def rotate(self):
            with self._maintenance_lock:
                self.sstables = []
                self._commit_merge()

        def _swap_locked(self):
            self.sstables = list(self.sstables)
            self._commit_merge()

        def snapshot(self):
            return list(self.sstables)  # lock-free read: fine by design
"""


def test_lock_discipline_flags_unlocked_mutations(tmp_path):
    report = lint_snippet(tmp_path, "repro/lsm/db.py", LOCK_BAD, [LockDisciplineRule])
    assert rule_ids(report) == ["lock-discipline"]
    assert len(report.findings) == 3  # two swaps + one locked-method call


def test_lock_discipline_passes_locked_twin(tmp_path):
    report = lint_snippet(tmp_path, "repro/lsm/db.py", LOCK_GOOD, [LockDisciplineRule])
    assert report.ok, report.render()


def test_lock_discipline_ignores_other_files(tmp_path):
    report = lint_snippet(tmp_path, "repro/other.py", LOCK_BAD, [LockDisciplineRule])
    assert report.ok


# ----------------------------------------------------------------------
# durability-discipline
# ----------------------------------------------------------------------

DURABILITY_BAD = """
    import os

    def sneaky_checkpoint(path, tmp, payload):
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
"""

DURABILITY_GOOD = """
    import os

    def _atomic_write(path, tmp, payload):
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)

    def read_manifest(path):
        with open(path, "rb") as fh:
            return fh.read()

    def read_default_mode(path):
        with open(path) as fh:
            return fh.read()
"""


def test_durability_flags_raw_writes_outside_helpers(tmp_path):
    report = lint_snippet(
        tmp_path, "repro/lsm/store.py", DURABILITY_BAD, [DurabilityDisciplineRule]
    )
    assert rule_ids(report) == ["durability-discipline"]
    assert len(report.findings) == 2  # open("wb") + os.replace


def test_durability_passes_approved_helper_and_reads(tmp_path):
    report = lint_snippet(
        tmp_path, "repro/lsm/store.py", DURABILITY_GOOD, [DurabilityDisciplineRule]
    )
    assert report.ok, report.render()


def test_durability_flags_non_literal_mode(tmp_path):
    source = """
        def helper(path, mode):
            return open(path, mode)
    """
    report = lint_snippet(
        tmp_path, "repro/lsm/wal.py", source, [DurabilityDisciplineRule]
    )
    assert len(report.findings) == 1
    assert "non-literal mode" in report.findings[0].message


# ----------------------------------------------------------------------
# wal-ordering
# ----------------------------------------------------------------------

WAL_BAD = """
    class PersistentEngine:
        def put(self, key, value):
            self.memtable.put(key, value)
            self._wal.append_put(key, value)
"""

WAL_GOOD = """
    class PersistentEngine:
        def put(self, key, value):
            self._wal.append_put(key, value)
            self.memtable.put(key, value)

        def delete(self, key):
            self._wal.append_delete(key)
            super().delete(key)
"""


def test_wal_ordering_flags_mutation_before_append(tmp_path):
    report = lint_snippet(tmp_path, "repro/lsm/store.py", WAL_BAD, [WalOrderingRule])
    assert rule_ids(report) == ["wal-ordering"]
    assert "self.memtable.put()" in report.findings[0].message


def test_wal_ordering_passes_append_first_twin(tmp_path):
    report = lint_snippet(tmp_path, "repro/lsm/store.py", WAL_GOOD, [WalOrderingRule])
    assert report.ok, report.render()


def test_wal_ordering_only_applies_to_persistent_classes(tmp_path):
    source = """
        class VolatileEngine:
            def put(self, key, value):
                self.memtable.put(key, value)
    """
    report = lint_snippet(tmp_path, "repro/lsm/store.py", source, [WalOrderingRule])
    assert report.ok


# ----------------------------------------------------------------------
# serial-discipline
# ----------------------------------------------------------------------

SERIAL_BAD = """
    class SerialError(ValueError):
        pass

    def load(blob):
        raise SerialError("truncated block")
"""

SERIAL_GOOD = """
    class SerialError(ValueError):
        pass

    def load(path, blob):
        raise SerialError(f"{path}: truncated block")

    def load_wrapped(path, blob):
        try:
            if len(blob) < 8:
                raise SerialError("truncated header")
            return blob
        except SerialError as exc:
            raise SerialError(f"{path}: {exc}") from exc
"""


def test_serial_flags_pathless_raise(tmp_path):
    report = lint_snippet(
        tmp_path, "repro/lsm/blocks.py", SERIAL_BAD, [SerialDisciplineRule]
    )
    assert rule_ids(report) == ["serial-discipline"]
    assert "offending" in report.findings[0].message


def test_serial_passes_path_naming_and_wrap_pattern(tmp_path):
    report = lint_snippet(
        tmp_path, "repro/lsm/blocks.py", SERIAL_GOOD, [SerialDisciplineRule]
    )
    assert report.ok, report.render()


KIND_BAD = """
    KIND_A = 1
    KIND_B = 1

    KIND_NAMES = {KIND_A: "a"}
"""

KIND_GOOD = """
    KIND_A = 1
    KIND_B = 2

    KIND_NAMES = {KIND_A: "a", KIND_B: "b"}
"""


def test_serial_kind_registry_static_checks(tmp_path):
    report = lint_snippet(
        tmp_path, "repro/serial.py", KIND_BAD, [SerialDisciplineRule]
    )
    messages = "\n".join(f.message for f in report.findings)
    assert "KIND_B is not registered in KIND_NAMES" in messages
    assert "claimed by" in messages  # duplicate value 1


def test_serial_kind_registry_good_twin(tmp_path):
    # A fixture serial.py is not the installed repro.serial, so only the
    # static KIND_* checks run — no live-registry cross-check findings.
    report = lint_snippet(
        tmp_path, "repro/serial.py", KIND_GOOD, [SerialDisciplineRule]
    )
    assert report.ok, report.render()


# ----------------------------------------------------------------------
# dtype-discipline
# ----------------------------------------------------------------------

DTYPE_BAD = """
    import numpy as np

    def normalize(keys):
        return np.asarray(keys)

    def decode(key_bytes):
        return np.frombuffer(key_bytes)
"""

DTYPE_GOOD = """
    import numpy as np

    def normalize(keys):
        return np.asarray(keys, dtype=np.uint64)

    def decode(body, keys_len):
        return np.frombuffer(body[:keys_len], dtype="<u8")

    def lengths(body, keys_end, lengths_end):
        # "keys_end" only indexes the slice; the sliced value is lengths.
        return np.frombuffer(body[keys_end:lengths_end], dtype="<u4")

    def widths(values):
        return np.asarray(values)  # not a key/bounds argument
"""


def test_dtype_flags_unpinned_key_conversions(tmp_path):
    report = lint_snippet(
        tmp_path, "repro/some_module.py", DTYPE_BAD, [DtypeDisciplineRule]
    )
    assert rule_ids(report) == ["dtype-discipline"]
    assert len(report.findings) == 2


def test_dtype_passes_pinned_and_non_key_twin(tmp_path):
    report = lint_snippet(
        tmp_path, "repro/some_module.py", DTYPE_GOOD, [DtypeDisciplineRule]
    )
    assert report.ok, report.render()


# ----------------------------------------------------------------------
# exception-discipline
# ----------------------------------------------------------------------

EXCEPT_BAD = """
    def drain(jobs):
        for job in jobs:
            try:
                job()
            except Exception:
                continue
"""

EXCEPT_GOOD = """
    class Scheduler:
        def drain(self, jobs):
            for job in jobs:
                try:
                    job()
                except Exception as exc:
                    self.last_error = exc
"""


def test_exception_flags_swallowed_worker_errors(tmp_path):
    report = lint_snippet(
        tmp_path, "repro/parallel.py", EXCEPT_BAD, [ExceptionDisciplineRule]
    )
    assert rule_ids(report) == ["exception-discipline"]


def test_exception_passes_recorded_errors(tmp_path):
    report = lint_snippet(
        tmp_path, "repro/parallel.py", EXCEPT_GOOD, [ExceptionDisciplineRule]
    )
    assert report.ok, report.render()


def test_bare_except_pass_is_flagged(tmp_path):
    source = """
        def reap(workers):
            for worker in workers:
                try:
                    worker.join()
                except BaseException:
                    pass
    """
    report = lint_snippet(
        tmp_path, "repro/lsm/compaction.py", source, [ExceptionDisciplineRule]
    )
    assert len(report.findings) == 1


# ----------------------------------------------------------------------
# cross-rule sanity
# ----------------------------------------------------------------------


def test_every_rule_has_id_summary_invariant_and_failing_fixture():
    """Guard the rule table contract: metadata present and ids unique."""
    ids = [cls.id for cls in ALL_RULES]
    assert len(ids) == len(set(ids))
    for cls in ALL_RULES:
        assert cls.id and cls.summary and cls.invariant, cls.__name__


BAD_BY_RULE = {
    LockDisciplineRule: ("repro/lsm/db.py", LOCK_BAD),
    DurabilityDisciplineRule: ("repro/lsm/store.py", DURABILITY_BAD),
    WalOrderingRule: ("repro/lsm/store.py", WAL_BAD),
    SerialDisciplineRule: ("repro/lsm/blocks.py", SERIAL_BAD),
    DtypeDisciplineRule: ("repro/some_module.py", DTYPE_BAD),
    ExceptionDisciplineRule: ("repro/parallel.py", EXCEPT_BAD),
}


@pytest.mark.parametrize("rule_cls", ALL_RULES, ids=lambda cls: cls.id)
def test_each_rule_fires_on_its_bad_fixture(rule_cls, tmp_path):
    relpath, source = BAD_BY_RULE[rule_cls]
    report = lint_snippet(tmp_path, relpath, source, [rule_cls])
    assert not report.ok
    assert all(finding.rule == rule_cls.id for finding in report.findings)
