"""CLI behavior of ``repro lint`` — including the self-check that the
shipped ``src/repro`` tree lints clean."""

import textwrap
from pathlib import Path

import repro
from repro.analysis.cli import main as lint_main
from repro.analysis.rules import ALL_RULES
from repro.cli import main as repro_main

PACKAGE_DIR = Path(repro.__file__).parent


def test_self_check_repro_source_lints_clean(capsys):
    """The shipped tree must have zero unsuppressed findings (exit 0)."""
    assert lint_main([str(PACKAGE_DIR)]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[-1].startswith("0 finding(s)")


def test_show_suppressed_lists_reasons(capsys):
    assert lint_main([str(PACKAGE_DIR), "--show-suppressed"]) == 0
    out = capsys.readouterr().out
    assert "(suppressed:" in out


def test_list_rules_prints_every_rule(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for cls in ALL_RULES:
        assert cls.id in out
        assert cls.summary.split()[0] in out


def test_findings_exit_one(tmp_path, capsys):
    bad = tmp_path / "repro" / "lsm" / "db.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        textwrap.dedent(
            """
            class Engine:
                def rotate(self):
                    self.sstables = []
            """
        )
    )
    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "[lock-discipline]" in out
    assert "1 finding(s)" in out


def test_missing_path_exits_two(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope.py")]) == 2
    assert "no such path" in capsys.readouterr().out


def test_repro_cli_forwards_lint_subcommand(capsys):
    """``repro lint`` and ``python -m repro.analysis`` share one engine."""
    assert repro_main(["lint", str(PACKAGE_DIR)]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[-1].startswith("0 finding(s)")
    assert repro_main(["lint", "--list-rules"]) == 0
    assert "lock-discipline" in capsys.readouterr().out
