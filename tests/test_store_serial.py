"""Corruption robustness of the on-disk store (``repro.lsm.store``).

Every damaged-store scenario must raise :class:`~repro.serial.SerialError`
naming the offending file or kind — a persistent store never silently
mis-answers.  Covered: truncated and bit-flipped manifests, stale format
versions, missing shard directories and run files, SST/filter frames of
the wrong kind (cross-wired files), and run contents contradicting the
manifest.
"""

import shutil

import numpy as np
import pytest

from repro.api import FilterSpec, open_store
from repro.lsm.store import (
    MANIFEST_NAME,
    PersistentLsmDB,
    PersistentShardedLsmDB,
    read_store_manifest,
)
from repro.lsm.wal import WAL_NAME, read_wal
from repro.serial import KIND_STORE, SerialError, pack_frame

SPEC = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})


def make_store(path, shards=1):
    with open_store(
        path=path, filter=SPEC, shards=shards, memtable_capacity=128
    ) as db:
        db.put_many(np.arange(0, 2_000, 2, dtype=np.uint64))
    return path


@pytest.fixture()
def store_dir(tmp_path):
    return make_store(tmp_path / "db")


@pytest.fixture()
def sharded_dir(tmp_path):
    return make_store(tmp_path / "sharded", shards=4)


class TestManifestCorruption:
    def test_missing_manifest_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(SerialError, match="STORE.brf is missing"):
            read_store_manifest(tmp_path / "empty")

    def test_truncated_manifest_raises(self, store_dir):
        manifest = store_dir / MANIFEST_NAME
        blob = manifest.read_bytes()
        for cut in (3, 11, len(blob) // 2, len(blob) - 1):
            manifest.write_bytes(blob[:cut])
            with pytest.raises(SerialError, match="STORE.brf"):
                open_store(path=store_dir)
            with pytest.raises(SerialError, match="truncated"):
                open_store(path=store_dir)

    def test_bit_flipped_manifest_raises(self, store_dir):
        manifest = store_dir / MANIFEST_NAME
        blob = bytearray(manifest.read_bytes())
        blob[12] ^= 0xFF  # first byte of the JSON header
        manifest.write_bytes(bytes(blob))
        with pytest.raises(SerialError, match="corrupt store manifest"):
            open_store(path=store_dir)

    def test_stale_format_version_raises(self, store_dir):
        manifest = store_dir / MANIFEST_NAME
        blob = manifest.read_bytes()
        manifest.write_bytes(blob[:4] + (99).to_bytes(2, "little") + blob[6:])
        with pytest.raises(SerialError, match="version 99"):
            open_store(path=store_dir)

    def test_wrong_frame_kind_in_manifest_slot_raises(self, store_dir):
        sst = next(store_dir.glob("sst-*.sst"))
        (store_dir / MANIFEST_NAME).write_bytes(sst.read_bytes())
        with pytest.raises(SerialError, match="'sstable'.*'store-manifest'"):
            open_store(path=store_dir)

    def test_unknown_engine_raises(self, store_dir):
        (store_dir / MANIFEST_NAME).write_bytes(
            pack_frame(KIND_STORE, {"engine": "btree"})
        )
        with pytest.raises(SerialError, match="unknown engine 'btree'"):
            open_store(path=store_dir)

    def test_engine_mismatch_raises(self, store_dir, sharded_dir):
        with pytest.raises(SerialError, match="not a 'sharded-lsm' store"):
            PersistentShardedLsmDB(store_dir)
        with pytest.raises(SerialError, match="not an unsharded 'lsm' store"):
            PersistentLsmDB(sharded_dir)


class TestRunFileCorruption:
    def test_missing_sst_file_raises(self, store_dir):
        victim = next(store_dir.glob("sst-*.sst"))
        victim.unlink()
        with pytest.raises(SerialError, match=f"missing run file {victim.name}"):
            open_store(path=store_dir)

    def test_missing_filter_file_raises(self, store_dir):
        victim = next(store_dir.glob("sst-*.filter"))
        victim.unlink()
        with pytest.raises(SerialError, match=f"missing run file {victim.name}"):
            open_store(path=store_dir)

    def test_filter_frame_in_sst_slot_raises(self, store_dir):
        """Cross-wired files: a filter frame where an SST frame belongs."""
        sst = next(store_dir.glob("sst-*.sst"))
        sst.write_bytes(sst.with_suffix(".filter").read_bytes())
        with pytest.raises(SerialError, match=f"corrupt SST file .*{sst.name}"):
            open_store(path=store_dir)

    def test_sst_frame_in_filter_slot_raises(self, store_dir):
        filt = next(store_dir.glob("sst-*.filter"))
        filt.write_bytes(filt.with_suffix(".sst").read_bytes())
        with pytest.raises(
            SerialError, match=f"corrupt filter block .*{filt.name}"
        ):
            open_store(path=store_dir)

    def test_truncated_sst_file_raises(self, store_dir):
        victim = next(store_dir.glob("sst-*.sst"))
        victim.write_bytes(victim.read_bytes()[:-9])
        with pytest.raises(SerialError, match="truncated"):
            open_store(path=store_dir)

    def test_bit_flipped_sst_payload_raises(self, store_dir):
        """SST payloads are exact data: a single flipped bit in the key
        words must fail the checksum, never silently change answers."""
        victim = next(store_dir.glob("sst-*.sst"))
        blob = bytearray(victim.read_bytes())
        blob[-5] ^= 0x01  # inside the checksummed payload region
        victim.write_bytes(bytes(blob))
        with pytest.raises(SerialError, match="checksum mismatch"):
            open_store(path=store_dir)

    def test_swapped_same_kind_filter_files_raise(self, store_dir):
        """Two runs' filter blobs are the same frame kind, so only the
        manifest's per-run checksum can catch a cross-wire between them."""
        manifest = read_store_manifest(store_dir)
        runs = manifest["runs"]
        assert len(runs) >= 2
        a = store_dir / (runs[0]["file"] + ".filter")
        b = store_dir / (runs[-1]["file"] + ".filter")
        blob_a, blob_b = a.read_bytes(), b.read_bytes()
        assert blob_a != blob_b
        a.write_bytes(blob_b)
        b.write_bytes(blob_a)
        with pytest.raises(SerialError, match="checksum does not match"):
            open_store(path=store_dir)

    def test_swapped_sst_files_raise(self, store_dir):
        """A run file from a different run contradicts the manifest."""
        manifest = read_store_manifest(store_dir)
        runs = manifest["runs"]
        assert len(runs) >= 2, "fixture must produce multiple runs"
        a, b = (
            store_dir / (runs[0]["file"] + ".sst"),
            store_dir / (runs[-1]["file"] + ".sst"),
        )
        # The last flush (close) drains a partial memtable, so the two
        # runs hold different key counts and the swap is detectable.
        blob_a, blob_b = a.read_bytes(), b.read_bytes()
        a.write_bytes(blob_b)
        b.write_bytes(blob_a)
        with pytest.raises(SerialError, match="the store manifest records"):
            open_store(path=store_dir)


class TestWalCorruption:
    def _store_with_unflushed_tail(self, path, n=40):
        """A store whose WAL holds ``n`` unflushed put records (the store
        is dropped without close, as a crash would leave it)."""
        db = open_store(
            path=path, filter=SPEC, memtable_capacity=1024, store_values=True
        )
        for k in range(n):  # one WAL record per op: easy to count/cut
            db.put(k, b"wal-%d" % k)
        pool = getattr(db, "_pool", None)
        if pool is not None:
            pool.close()
        del db
        return path

    def test_bit_flipped_wal_record_raises_with_file_and_offset(
        self, tmp_path
    ):
        root = self._store_with_unflushed_tail(tmp_path / "db")
        wal = root / WAL_NAME
        _, records, valid_end, _ = read_wal(wal)
        assert len(records) == 40
        blob = bytearray(wal.read_bytes())
        # Flip one byte in the FIRST record's body — non-tail corruption
        # must be loud, never a silent partial replay.  (A flip in a
        # length prefix can masquerade as a torn tail; a body flip always
        # fails the record checksum.)
        from repro.serial import unpack_frame_prefix

        _, _, header_end = unpack_frame_prefix(bytes(blob))
        blob[header_end + 8 + 2] ^= 0x10
        wal.write_bytes(bytes(blob))
        with pytest.raises(SerialError, match="WAL.brf") as excinfo:
            open_store(path=root)
        assert "byte offset" in str(excinfo.value)

    def test_truncated_wal_tail_recovers_the_complete_prefix(self, tmp_path):
        root = self._store_with_unflushed_tail(tmp_path / "db")
        wal = root / WAL_NAME
        blob = wal.read_bytes()
        wal.write_bytes(blob[: len(blob) - 5])  # cut inside the last record
        with open_store(path=root) as db:
            assert db.wal_info()["replayed_records"] == 39
            assert db.wal_info()["recovered_torn_tail"]
            answers = db.get_many(np.arange(40, dtype=np.uint64))
            assert answers[:39].all()
            for k in range(39):
                assert db.get_value(k) == b"wal-%d" % k
            # key 39's record was torn before reaching disk: not acked
            assert db.get_value(39) is None

    def test_swapped_wal_files_between_shards_raise(self, tmp_path):
        db = open_store(
            path=tmp_path / "db", filter=SPEC, shards=4, memtable_capacity=256
        )
        db.put_many(np.arange(300, dtype=np.uint64))
        db._pool.close()
        del db  # crash-drop: per-shard WALs keep their unflushed records
        a = tmp_path / "db" / "shard-0000" / WAL_NAME
        b = tmp_path / "db" / "shard-0001" / WAL_NAME
        blob_a, blob_b = a.read_bytes(), b.read_bytes()
        a.write_bytes(blob_b)
        b.write_bytes(blob_a)
        with pytest.raises(SerialError, match="belongs to a different store"):
            open_store(path=tmp_path / "db")

    def test_stale_wal_is_discarded_and_resurrects_nothing(self, tmp_path):
        """A WAL restored from before a flush references runs that have
        since absorbed (and then tombstoned) its records.  Its epoch is
        behind the manifest's, so replaying it would resurrect deleted
        keys — it must be discarded silently instead."""
        root = tmp_path / "db"
        db = open_store(
            path=root, filter=SPEC, memtable_capacity=1024, store_values=True
        )
        keys = np.arange(50, dtype=np.uint64)
        db.put_many(keys, [b"old-%d" % k for k in range(50)])
        stale = (root / WAL_NAME).read_bytes()  # epoch 0, holds the puts
        db.flush()  # records move into a run; WAL rotates to epoch 1
        db.delete_many(keys[:25])
        db.flush()  # tombstones flushed; epoch 2
        db.close()
        (root / WAL_NAME).write_bytes(stale)  # simulated bad restore
        with open_store(path=root) as db2:
            info = db2.wal_info()
            # the single put_many batch is one (discarded) log record
            assert info["discarded_stale_records"] == 1
            assert info["replayed_records"] == 0
            answers = db2.get_many(keys)
            assert not answers[:25].any(), "stale WAL resurrected deletes"
            assert answers[25:].all()
            for k in range(25, 50):
                assert db2.get_value(int(k)) == b"old-%d" % k


class TestShardCorruption:
    def test_missing_shard_directory_raises(self, sharded_dir):
        shutil.rmtree(sharded_dir / "shard-0002")
        with pytest.raises(
            SerialError, match="missing shard directory shard-0002"
        ):
            open_store(path=sharded_dir)

    def test_corrupt_shard_manifest_raises(self, sharded_dir):
        victim = sharded_dir / "shard-0001" / MANIFEST_NAME
        victim.write_bytes(victim.read_bytes()[:16])
        with pytest.raises(SerialError, match="shard-0001"):
            open_store(path=sharded_dir)

    def test_corrupt_shard_run_raises(self, sharded_dir):
        victim = next((sharded_dir / "shard-0000").glob("sst-*.filter"))
        victim.write_bytes(b"XXXX" + victim.read_bytes()[4:])
        with pytest.raises(SerialError, match="bad magic"):
            open_store(path=sharded_dir)


class TestCreateSafety:
    def test_lost_manifest_never_destroys_run_files(self, store_dir):
        """A directory holding runs but no manifest must refuse to
        initialize (silently re-creating would prune — delete — the
        orphaned runs)."""
        (store_dir / MANIFEST_NAME).unlink()
        run_files = sorted(p.name for p in store_dir.glob("sst-*"))
        assert run_files
        with pytest.raises(SerialError, match="refusing to initialize"):
            open_store(path=store_dir)
        assert sorted(p.name for p in store_dir.glob("sst-*")) == run_files

    def test_lost_top_manifest_of_sharded_store_refuses_init(
        self, sharded_dir
    ):
        """Re-creating over leftover shard directories could silently
        change the routing config over the old data — refuse instead."""
        (sharded_dir / MANIFEST_NAME).unlink()
        with pytest.raises(SerialError, match="refusing to initialize"):
            open_store(path=sharded_dir, filter=SPEC, shards=4)

    def test_manifest_missing_field_raises_serial_error(self, store_dir):
        """A frame-valid manifest that lost a header field is a corrupt
        store artifact, not a bare KeyError."""
        import json

        from repro.serial import pack_frame

        header = read_store_manifest(store_dir)
        header = json.loads(json.dumps(header))
        del header["spec"]
        (store_dir / MANIFEST_NAME).write_bytes(
            pack_frame(KIND_STORE, header)
        )
        with pytest.raises(SerialError, match="missing field 'spec'"):
            open_store(path=store_dir)


    def test_spec_conflict_on_reopen_raises(self, store_dir):
        other = FilterSpec("bloom", {"bits_per_key": 10})
        with pytest.raises(ValueError, match="conflicts"):
            open_store(path=store_dir, filter=other)

    def test_shard_count_conflict_on_reopen_raises(self, sharded_dir):
        with pytest.raises(ValueError, match="shards"):
            open_store(path=sharded_dir, shards=2)

    def test_geometry_conflict_on_reopen_raises(self, store_dir):
        with pytest.raises(ValueError, match="memtable_capacity"):
            open_store(path=store_dir, memtable_capacity=4096)

    def test_matching_args_on_reopen_are_accepted(self, sharded_dir):
        with open_store(
            path=sharded_dir, filter=SPEC, shards=4, memtable_capacity=128
        ) as db:
            assert db.num_shards == 4

    def test_non_spec_policy_is_rejected(self, tmp_path):
        class OpaquePolicy:
            name = "opaque"

        with pytest.raises(ValueError, match="FilterSpec-driven"):
            open_store(path=tmp_path / "db", filter=OpaquePolicy())

    def test_cli_init_refuses_existing_store(self, store_dir, capsys):
        from repro.cli import main

        assert main(["store", "init", str(store_dir)]) == 2
        assert "refusing" in capsys.readouterr().out


def make_compressed_store(path):
    """A zlib-compressed store with values (small blocks -> several per run)."""
    keys = np.arange(0, 2_000, 2, dtype=np.uint64)
    with open_store(
        path=path,
        filter=SPEC,
        memtable_capacity=128,
        store_values=True,
        compression={"codec": "zlib", "block_bytes": 512},
    ) as db:
        db.put_many(keys, [b"value-%06d" % int(k) * 4 for k in keys])
    return path


@pytest.fixture()
def compressed_dir(tmp_path):
    return make_compressed_store(tmp_path / "zdb")


def _flip_byte_in_payload(sst_path, payload_index, offset=3):
    """Flip one byte inside the given payload of an SST frame on disk."""
    from repro.serial import unpack_frame

    data = sst_path.read_bytes()
    target = bytes(unpack_frame(data)[1][payload_index])
    position = data.rindex(target) + offset
    blob = bytearray(data)
    blob[position] ^= 0x20
    sst_path.write_bytes(bytes(blob))


class TestCompressedFrameCorruption:
    """Version-2 (block-compressed) frames: damage must raise
    :class:`SerialError` naming the file and byte offset — wrong data is
    never returned, whether the payload decodes at open or lazily."""

    def test_bit_flipped_compressed_key_block_raises_on_open(
        self, compressed_dir
    ):
        victim = next(compressed_dir.glob("sst-*.sst"))
        _flip_byte_in_payload(victim, 0)  # keys decode eagerly at open
        # The eager path catches it via the whole-frame checksum, the mmap
        # path via the flipped block's own CRC — both name the file.
        with pytest.raises(SerialError, match=f"{victim.name}.*checksum"):
            open_store(path=compressed_dir)
        with pytest.raises(
            SerialError,
            match=f"{victim.name}.*block \\d+ checksum mismatch.*offset",
        ):
            open_store(path=compressed_dir, mmap=True)

    def test_bit_flipped_value_block_raises_on_access_not_wrong_data(
        self, compressed_dir
    ):
        """The value blob decompresses lazily: a flip there passes the
        mmap open (which skips whole-payload reads by design) but must
        fail loudly on the first lookup that touches the block."""
        victim = next(compressed_dir.glob("sst-*.sst"))
        _flip_byte_in_payload(victim, 3)  # the value blob payload
        db = open_store(path=compressed_dir, mmap=True)
        with pytest.raises(
            SerialError,
            match=f"{victim.name}.*block \\d+ checksum mismatch.*offset",
        ):
            for k in range(0, 2_000, 2):
                db.get_value(k)
        db.close()

    def test_truncated_block_table_raises(self, compressed_dir):
        from repro.serial import (
            FORMAT_VERSION_BLOCKS,
            KIND_SSTABLE,
            pack_frame,
            unpack_frame,
        )

        victim = next(compressed_dir.glob("sst-*.sst"))
        header, payloads = unpack_frame(victim.read_bytes())
        assert len(header["blocks"][3]) > 1, "fixture needs multi-block values"
        header["blocks"][3] = header["blocks"][3][:-1]
        victim.write_bytes(
            pack_frame(
                KIND_SSTABLE, header, *payloads,
                version=FORMAT_VERSION_BLOCKS,
            )
        )
        for mmap in (False, True):
            with pytest.raises(
                SerialError, match=f"{victim.name}.*truncated block table"
            ):
                open_store(path=compressed_dir, mmap=mmap)

    def test_codec_mismatch_vs_manifest_raises(self, compressed_dir):
        import json

        header = read_store_manifest(compressed_dir)
        header = json.loads(json.dumps(header))
        header["geometry"]["compression"] = None
        (compressed_dir / MANIFEST_NAME).write_bytes(
            pack_frame(KIND_STORE, header)
        )
        for mmap in (False, True):
            with pytest.raises(
                SerialError,
                match="codec 'zlib' does not match the store manifest",
            ):
                open_store(path=compressed_dir, mmap=mmap)

    def test_mmap_of_file_shorter_than_header_claims_raises(self, store_dir):
        victim = next(store_dir.glob("sst-*.sst"))
        victim.write_bytes(victim.read_bytes()[:-9])
        with pytest.raises(
            SerialError, match=f"{victim.name}.*truncated.*offset"
        ):
            open_store(path=store_dir, mmap=True)

    def test_mmap_of_empty_file_raises(self, store_dir):
        victim = next(store_dir.glob("sst-*.filter"))
        victim.write_bytes(b"")
        with pytest.raises(
            SerialError, match=f"{victim.name}.*empty file"
        ):
            open_store(path=store_dir, mmap=True)

    def test_mmap_trailing_garbage_raises(self, store_dir):
        victim = next(store_dir.glob("sst-*.sst"))
        victim.write_bytes(victim.read_bytes() + b"\x00" * 16)
        with pytest.raises(
            SerialError, match=f"{victim.name}.*trailing"
        ):
            open_store(path=store_dir, mmap=True)

    def test_zstd_store_without_the_extra_fails_loudly(
        self, tmp_path, monkeypatch
    ):
        """A manifest recorded with zstd must never silently fall back to
        zlib when the optional package is missing."""
        import repro.lsm.blocks as blocks_mod

        if blocks_mod._zstd_module() is not None:
            monkeypatch.setattr(blocks_mod, "_zstd_module", lambda: None)
        with pytest.raises(ValueError, match="zstandard"):
            open_store(
                path=tmp_path / "db", filter=SPEC, compression="zstd"
            )
