"""The versioned serialization subsystem (``repro.serial``).

Round-trip properties (Hypothesis): a filter built from a random config and
random keys must reconstruct from its bytes with identical storage words,
key counts, and probe answers.  Corruption cases: bad magic, version skew,
kind mismatch, truncation, and header garbage must raise ``ValueError`` —
a persisted filter block never silently mis-answers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serial
from repro.baselines.bloom import BloomFilter
from repro.core.bloomrf import BloomRF
from repro.lsm.filter_policy import (
    SpecPolicy,
    handle_from_bytes,
    load_handle,
    save_handle,
)
from repro.shard import ShardedBloomRF

U64 = (1 << 64) - 1


def build_bloomrf(domain_bits, bits_per_key, basic, keys, max_range=1 << 16):
    if basic:
        filt = BloomRF.basic(
            n_keys=max(len(keys), 1),
            bits_per_key=bits_per_key,
            domain_bits=domain_bits,
        )
    else:
        filt = BloomRF.tuned(
            n_keys=max(len(keys), 1),
            bits_per_key=bits_per_key,
            max_range=max_range,
            domain_bits=domain_bits,
        )
    filt.insert_many(np.array(keys, dtype=np.uint64))
    return filt


@st.composite
def bloomrf_cases(draw):
    """Random (config knobs, key set) pairs across domains and tunings."""
    domain_bits = draw(st.sampled_from([16, 32, 48, 64]))
    bits_per_key = draw(st.sampled_from([12.0, 16.0, 22.0]))
    basic = draw(st.booleans())
    keys = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << domain_bits) - 1),
            min_size=0,
            max_size=200,
            unique=True,
        )
    )
    return domain_bits, bits_per_key, basic, keys


class TestBloomRFRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(bloomrf_cases())
    def test_words_keys_and_answers_survive(self, case):
        domain_bits, bits_per_key, basic, keys = case
        filt = build_bloomrf(domain_bits, bits_per_key, basic, keys)
        restored = BloomRF.from_bytes(filt.to_bytes())
        assert restored.config == filt.config
        assert restored.num_keys == filt.num_keys
        assert restored._bits == filt._bits  # words, bit for bit
        if filt._exact is not None:
            assert restored._exact == filt._exact
        # Probe answers are a pure function of (config, words): spot-check
        # inserted keys, near-misses, and ranges anchored on both.
        probes = np.array(
            sorted(set(keys) | {0, (1 << domain_bits) - 1, 7}), dtype=np.uint64
        )
        assert np.array_equal(
            restored.contains_point_many(probes), filt.contains_point_many(probes)
        )
        domain_max = np.uint64((1 << domain_bits) - 1)
        hi = probes + np.minimum(domain_max - probes, np.uint64(63))
        bounds = np.stack([probes, hi], axis=1)
        assert np.array_equal(
            restored.contains_range_many(bounds), filt.contains_range_many(bounds)
        )

    @settings(max_examples=15, deadline=None)
    @given(bloomrf_cases())
    def test_serialization_is_deterministic(self, case):
        domain_bits, bits_per_key, basic, keys = case
        filt = build_bloomrf(domain_bits, bits_per_key, basic, keys)
        blob = filt.to_bytes()
        assert blob == BloomRF.from_bytes(blob).to_bytes()


class TestBloomRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=U64),
            min_size=1,
            max_size=300,
            unique=True,
        ),
        st.sampled_from([8.0, 12.0, 20.0]),
    )
    def test_words_and_answers_survive(self, keys, bits_per_key):
        filt = BloomFilter(n_keys=len(keys), bits_per_key=bits_per_key)
        filt.insert_many(np.array(keys, dtype=np.uint64))
        restored = BloomFilter.from_bytes(filt.to_bytes())
        assert (restored.num_bits, restored.num_hashes, restored.seed) == (
            filt.num_bits,
            filt.num_hashes,
            filt.seed,
        )
        assert len(restored) == len(filt)
        assert restored._bits == filt._bits
        probes = np.array(keys[:100], dtype=np.uint64)
        assert restored.contains_point_many(probes).all()


class TestShardedRoundTrip:
    @pytest.fixture(scope="class")
    def sharded(self):
        keys = np.random.default_rng(77).integers(
            0, 1 << 64, 4_000, dtype=np.uint64
        )
        sharded = ShardedBloomRF.from_keys(
            keys, num_shards=3, partition="range", bits_per_key=14
        )
        yield sharded, keys
        sharded.close()

    def test_blob_round_trip_is_bit_exact(self, sharded):
        sharded, keys = sharded
        with ShardedBloomRF.from_bytes(sharded.to_bytes()) as restored:
            assert restored.num_shards == sharded.num_shards
            assert restored.partition == sharded.partition
            assert restored.config == sharded.config
            for a, b in zip(restored.shards, sharded.shards, strict=True):
                assert a._bits == b._bits
                assert a.num_keys == b.num_keys
            assert restored.contains_point_many(keys[:500]).all()
            # The merge-compatibility bridge survives the round trip.
            assert restored.merge()._bits == sharded.merge()._bits

    def test_manifest_round_trip_is_bit_exact(self, sharded, tmp_path):
        sharded, keys = sharded
        manifest = sharded.save_manifest(tmp_path / "shards")
        assert manifest.name == "MANIFEST.json"
        assert len(list((tmp_path / "shards").glob("shard-*.brf"))) == 3
        with ShardedBloomRF.load_manifest(tmp_path / "shards") as restored:
            for a, b in zip(restored.shards, sharded.shards, strict=True):
                assert a._bits == b._bits
            assert restored.partition == sharded.partition
            assert restored.contains_point_many(keys[:500]).all()

    def test_manifest_version_mismatch_raises(self, sharded, tmp_path):
        sharded, _ = sharded
        sharded.save_manifest(tmp_path / "m")
        manifest = tmp_path / "m" / "MANIFEST.json"
        manifest.write_text(manifest.read_text().replace('"version": 1', '"version": 99'))
        with pytest.raises(ValueError, match="version 99"):
            ShardedBloomRF.load_manifest(tmp_path / "m")

    def test_generic_dump_load_dispatch(self, sharded):
        sharded, _ = sharded
        blob = serial.dump_filter(sharded)
        assert serial.peek_kind(blob) == serial.KIND_SHARDED_BLOOMRF
        with serial.load_filter(blob) as restored:
            assert isinstance(restored, ShardedBloomRF)


class TestCorruptionCases:
    @pytest.fixture(scope="class")
    def blob(self):
        filt = build_bloomrf(64, 16.0, False, list(range(500, 900)))
        return filt.to_bytes()

    def test_bad_magic_raises(self, blob):
        with pytest.raises(ValueError, match="bad magic"):
            BloomRF.from_bytes(b"XXXX" + blob[4:])

    def test_version_mismatch_raises(self, blob):
        bumped = blob[:4] + (99).to_bytes(2, "little") + blob[6:]
        with pytest.raises(ValueError, match="version 99"):
            BloomRF.from_bytes(bumped)

    def test_kind_mismatch_raises(self, blob):
        with pytest.raises(ValueError, match="expected 'bloom'"):
            BloomFilter.from_bytes(blob)

    def test_unknown_kind_raises(self, blob):
        mangled = blob[:6] + (42).to_bytes(2, "little") + blob[8:]
        with pytest.raises(ValueError, match="unknown serialization kind"):
            serial.load_filter(mangled)

    def test_truncation_raises(self, blob):
        for cut in (3, 11, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ValueError, match="truncated"):
                serial.unpack_frame(blob[:cut])

    def test_trailing_garbage_raises(self, blob):
        with pytest.raises(ValueError, match="trailing garbage"):
            serial.unpack_frame(blob + b"\x00")

    def test_garbage_header_raises(self, blob):
        header_len = int.from_bytes(blob[8:12], "little")
        mangled = blob[:12] + b"\xff" * header_len + blob[12 + header_len :]
        with pytest.raises(ValueError, match="corrupt filter frame header"):
            serial.unpack_frame(mangled)

    def test_dump_rejects_foreign_objects(self):
        with pytest.raises(TypeError):
            serial.dump_filter(object())

    def test_pack_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            serial.pack_frame(99, {})


class TestSerialError:
    """Frame failures raise the dedicated SerialError, naming the kind byte."""

    @pytest.fixture(scope="class")
    def blob(self):
        filt = build_bloomrf(64, 14.0, True, list(range(64)))
        return filt.to_bytes()

    def test_is_a_value_error_subclass(self):
        assert issubclass(serial.SerialError, ValueError)

    def test_truncation_raises_serial_error(self, blob):
        for cut in (3, 11, len(blob) // 2):
            with pytest.raises(serial.SerialError, match="truncated"):
                serial.unpack_frame(blob[:cut])
            with pytest.raises(serial.SerialError):
                serial.peek_kind(blob[:3])

    def test_unknown_kind_names_the_kind_byte(self, blob):
        mangled = blob[:6] + (42).to_bytes(2, "little") + blob[8:]
        with pytest.raises(serial.SerialError, match="kind byte 42"):
            serial.unpack_frame(mangled)
        with pytest.raises(serial.SerialError, match="kind byte 42"):
            serial.load_filter(mangled)

    def test_kind_mismatch_names_both_kind_bytes(self, blob):
        with pytest.raises(
            serial.SerialError,
            match=rf"kind byte {serial.KIND_BLOOMRF}.*kind byte {serial.KIND_BLOOM}",
        ):
            serial.unpack_frame(blob, expect_kind=serial.KIND_BLOOM)

    def test_bad_magic_raises_serial_error(self, blob):
        with pytest.raises(serial.SerialError, match="bad magic"):
            serial.peek_kind(b"XXXX" + blob[4:])


class TestHandlePersistence:
    def test_bloomrf_handle_save_load(self, tmp_path):
        keys = np.arange(1_000, 2_000, dtype=np.uint64)
        policy = SpecPolicy("bloomrf", bits_per_key=16, max_range=1 << 16)
        handle = policy.build(keys)
        path = save_handle(handle, tmp_path / "block.brf")
        restored = load_handle(path)
        assert restored.size_bits == handle.size_bits
        assert restored.probe_point_many(keys).all()
        bounds = np.stack([keys, keys + np.uint64(3)], axis=1)
        assert np.array_equal(
            restored.probe_range_many(bounds), handle.probe_range_many(bounds)
        )

    def test_bloom_handle_save_load(self, tmp_path):
        keys = np.arange(5_000, 6_000, dtype=np.uint64)
        handle = SpecPolicy("bloom", bits_per_key=12).build(keys)
        restored = load_handle(save_handle(handle, tmp_path / "bloom.brf"))
        assert restored.probe_point_many(keys).all()
        assert restored.serialize() == handle.serialize()

    def test_sharded_handle_from_bytes(self):
        keys = np.arange(0, 3_000, dtype=np.uint64)
        with ShardedBloomRF.from_keys(keys, num_shards=2) as sharded:
            blob = sharded.to_bytes()
        with handle_from_bytes(blob) as handle:
            assert handle.probe_point_many(keys[:200]).all()
            assert handle.probe_range(100, 200)
        # Close released the rehydrated shard set's worker pool.
        assert not handle._filter._pool.is_open

    def test_none_policy_blocks_round_trip(self, tmp_path):
        # Since the repro.api registry, even the "none" kind persists (a
        # tiny self-describing frame), so spec-driven stores can disable
        # filtering without a serialization special case.
        handle = SpecPolicy("none").build(np.arange(10, dtype=np.uint64))
        restored = load_handle(save_handle(handle, tmp_path / "none.brf"))
        assert restored.size_bits == 0
        assert restored.probe_point(7) and restored.probe_range(1, 5)

    def test_empty_serialization_rejected(self, tmp_path):
        # A handle whose filter has no persisted form is still refused
        # rather than written as a 0-byte file.
        class _Empty:
            size_bits = 0

            def contains_point(self, key):
                return True

            def contains_range(self, lo, hi):
                return True

            def to_bytes(self):
                return b""

        from repro.lsm.filter_policy import wrap_filter

        with pytest.raises(ValueError, match="no persisted"):
            save_handle(wrap_filter(_Empty()), tmp_path / "nope.brf")

    def test_policy_deserialize_uses_frames(self):
        keys = np.arange(100, dtype=np.uint64)
        policy = SpecPolicy("bloomrf", bits_per_key=16, max_range=1 << 10)
        handle = policy.build(keys)
        restored = policy.deserialize(handle.serialize())
        assert restored.probe_point_many(keys).all()
