"""Tests for key distributions, query generation, and synthetic datasets."""

import numpy as np
import pytest

from repro.workloads import (
    empty_point_queries,
    empty_range_queries,
    kepler_like_flux,
    normal_keys,
    sdss_like_catalog,
    synthetic_words,
    uniform_keys,
    zipfian_keys,
)
from repro.workloads.distributions import distribution_by_name, sample_indices


class TestKeyDistributions:
    @pytest.mark.parametrize("gen", [uniform_keys, normal_keys, zipfian_keys])
    def test_exact_count_sorted_distinct(self, gen):
        keys = gen(5_000, seed=1)
        assert keys.size == 5_000
        assert keys.dtype == np.uint64
        assert np.all(keys[1:] > keys[:-1])

    def test_deterministic_by_seed(self):
        assert np.array_equal(uniform_keys(100, seed=5), uniform_keys(100, seed=5))
        assert not np.array_equal(uniform_keys(100, seed=5), uniform_keys(100, seed=6))

    def test_normal_is_centered(self):
        keys = normal_keys(20_000, seed=2)
        mean = float(np.mean(keys.astype(np.float64)))
        center = 2.0**63
        assert abs(mean - center) < 0.05 * 2.0**64

    def test_normal_is_peaked(self):
        """Middle half of the domain holds most of a normal key set."""
        keys = normal_keys(20_000, seed=3)
        quarter, three_quarters = 2.0**62, 3 * 2.0**62
        inside = np.mean((keys.astype(np.float64) > quarter) & (keys.astype(np.float64) < three_quarters))
        assert inside > 0.85

    def test_zipfian_is_skewed(self):
        """Zipf ranks concentrate: the top-1% hottest ranks cover a large
        probability mass, visible as many duplicate draws pre-dedup."""
        rng = np.random.default_rng(4)
        from repro.workloads.distributions import _zipf_ranks

        ranks = _zipf_ranks(rng, 50_000, universe=10**6, theta=0.99)
        unique = np.unique(ranks).size
        assert unique < 25_000  # heavy repetition = skew

    def test_distribution_by_name(self):
        assert distribution_by_name("uniform") is uniform_keys
        with pytest.raises(ValueError):
            distribution_by_name("exponential")

    def test_small_domain(self):
        keys = uniform_keys(100, seed=7, domain_bits=16)
        assert int(keys.max()) < 1 << 16


class TestSampleIndices:
    @pytest.mark.parametrize("workload", ["uniform", "normal", "zipfian"])
    def test_bounds(self, workload):
        rng = np.random.default_rng(0)
        idx = sample_indices(rng, 1000, 5_000, workload)
        assert idx.min() >= 0 and idx.max() < 1000

    def test_rejects_unknown(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_indices(rng, 10, 10, "bogus")

    def test_normal_concentrates_middle(self):
        rng = np.random.default_rng(1)
        idx = sample_indices(rng, 1000, 20_000, "normal")
        middle = np.mean((idx > 250) & (idx < 750))
        assert middle > 0.8


class TestEmptyQueries:
    @pytest.mark.parametrize("workload", ["uniform", "normal", "zipfian"])
    @pytest.mark.parametrize("range_size", [1, 64, 10**6])
    def test_guaranteed_empty(self, workload, range_size):
        keys = uniform_keys(5_000, seed=11)
        queries = empty_range_queries(
            keys, 500, range_size=range_size, workload=workload, seed=12
        )
        assert len(queries) == 500
        for lo, hi in queries:
            assert hi - lo + 1 == range_size
            idx = int(np.searchsorted(keys, np.uint64(lo)))
            assert not (idx < keys.size and int(keys[idx]) <= hi), "non-empty!"

    def test_point_queries_absent(self):
        keys = uniform_keys(2_000, seed=13)
        key_set = set(keys.tolist())
        points = empty_point_queries(keys, 300, seed=14)
        assert len(points) == 300
        assert all(int(p) not in key_set for p in points)

    def test_rejects_bad_range(self):
        keys = uniform_keys(100, seed=15)
        with pytest.raises(ValueError):
            empty_range_queries(keys, 10, range_size=0)

    def test_impossible_range_raises(self):
        keys = np.arange(0, 200, 2, dtype=np.uint64)  # gaps of 1
        with pytest.raises(ValueError):
            empty_range_queries(keys, 10, range_size=1 << 30, max_attempts=3)

    def test_queries_sit_in_gaps(self):
        """Anchored adjacency: each query's gap hosts a real key boundary."""
        keys = uniform_keys(1_000, seed=16)
        queries = empty_range_queries(keys, 200, range_size=16, seed=17)
        for lo, _ in list(queries)[:50]:
            idx = int(np.searchsorted(keys, np.uint64(lo)))
            # predecessor key exists and the query is inside its gap
            assert 0 < idx <= keys.size


class TestDatasets:
    def test_kepler_flux_shape(self):
        flux = kepler_like_flux(10_000, seed=1)
        assert flux.size == 10_000
        assert flux.dtype == np.float64
        assert np.any(flux > 0) and np.any(flux < 0)
        assert np.all(np.isfinite(flux))

    def test_kepler_dynamic_range(self):
        flux = kepler_like_flux(20_000, seed=2)
        magnitudes = np.abs(flux[flux != 0])
        assert magnitudes.max() / magnitudes.min() > 1e4

    def test_sdss_catalog(self):
        run, obj = sdss_like_catalog(5_000, seed=3)
        assert run.size == obj.size == 5_000
        assert run.dtype == obj.dtype == np.uint64
        assert int(run.max()) <= 1000 and int(run.min()) >= 1
        assert int(obj.max()) < 1 << 63

    def test_sdss_run_roughly_normal(self):
        run, _ = sdss_like_catalog(20_000, seed=4)
        mean = float(np.mean(run.astype(np.float64)))
        assert 250 < mean < 350

    def test_synthetic_words(self):
        words = synthetic_words(500, seed=5)
        assert len(words) == 500
        assert words == sorted(set(words))
        assert all(isinstance(w, bytes) and b"@" in w for w in words)
