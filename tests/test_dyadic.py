"""Tests for dyadic intervals and the two-path range planner (Sect. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dyadic import (
    RecordingOracle,
    covering_prefix_range,
    di_bounds,
    dyadic_decompose,
    level_of_range,
    prefix_of,
    two_path_range_lookup,
)


class TestPrefixes:
    def test_prefix_of(self):
        assert prefix_of(42, 0) == 42
        assert prefix_of(42, 4) == 2
        assert prefix_of(0x002A, 12) == 0

    def test_di_bounds(self):
        assert di_bounds(0b11, 1) == (6, 7)  # the paper's Sect. 2 example
        assert di_bounds(0, 3) == (0, 7)

    def test_level_of_range(self):
        assert level_of_range(5, 5) == 0
        assert level_of_range(0, 7) == 3
        assert level_of_range(0, 8) == 4

    def test_level_of_range_rejects_empty(self):
        with pytest.raises(ValueError):
            level_of_range(6, 5)


class TestDecompose:
    def test_paper_example(self):
        """I=[45,60] decomposes as in Fig. 7."""
        pieces = dyadic_decompose(45, 60)
        intervals = [di_bounds(p, l) for l, p in pieces]
        assert intervals == [(45, 45), (46, 47), (48, 55), (56, 59), (60, 60)]

    def test_single_point(self):
        assert dyadic_decompose(7, 7) == [(0, 7)]

    def test_aligned_block(self):
        assert dyadic_decompose(8, 15) == [(3, 1)]

    def test_max_level_cap(self):
        pieces = dyadic_decompose(0, 15, max_level=2)
        assert all(level <= 2 for level, _ in pieces)
        assert len(pieces) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dyadic_decompose(5, 4)

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=200)
    def test_partition_property(self, lo, width):
        hi = lo + width
        pieces = dyadic_decompose(lo, hi)
        cursor = lo
        for level, prefix in pieces:
            p_lo, p_hi = di_bounds(prefix, level)
            assert p_lo == cursor, "pieces must be contiguous"
            cursor = p_hi + 1
        assert cursor == hi + 1, "pieces must cover exactly [lo, hi]"

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=1 << 16),
    )
    @settings(max_examples=100)
    def test_minimality(self, lo, width):
        """Greedy decomposition is the canonical minimal one: no two adjacent
        sibling DIs (which could merge into their parent)."""
        hi = lo + width
        pieces = dyadic_decompose(lo, hi)
        for (l1, p1), (l2, p2) in zip(pieces, pieces[1:]):
            if l1 == l2 and p1 ^ 1 == p2 and p1 % 2 == 0:
                pytest.fail(f"siblings {(l1, p1)} and {(l2, p2)} not merged")


class TestCoveringPrefixRange:
    def test_basic(self):
        assert covering_prefix_range(45, 60, 3) == (5, 7)
        assert covering_prefix_range(0, 7, 3) == (0, 0)

    def test_level_zero(self):
        assert covering_prefix_range(5, 9, 0) == (5, 9)


def exact_filter_probes(keys: set[int], levels):
    """Build exact probe oracles over a key set (reference filter)."""

    def probe_bit(layer, prefix):
        level = levels[layer]
        return any((k >> level) == prefix for k in keys)

    def probe_mask(layer, p_lo, p_hi):
        level = levels[layer]
        return any(p_lo <= (k >> level) <= p_hi for k in keys)

    return probe_bit, probe_mask


class TestTwoPathPlanner:
    LEVELS = [0, 4, 8, 12]  # the paper's d=16, Delta=4 layout

    def test_fig7_probe_pattern(self):
        """For I=[45,60] the planner probes the Fig. 7 intervals."""
        oracle = RecordingOracle(bit_answer=True, mask_answer=False)
        result = two_path_range_lookup(
            45, 60, self.LEVELS, oracle.probe_bit, oracle.probe_mask
        )
        assert result is False
        # Coverings: [0,4095] at layer 3, [0,255] at layer 2, then the split
        # coverings [32,47] and [48,63] at layer 1 (prefixes 2 and 3).
        assert oracle.bit_probes == [(3, 0), (2, 0), (1, 2), (1, 3)]
        # Decomposition masks at layer 0: [45,47] (left) and [48,60] (right).
        assert sorted(oracle.mask_probes) == [(0, 45, 47), (0, 48, 60)]

    def test_mask_ranges_partition_query(self):
        oracle = RecordingOracle()
        two_path_range_lookup(45, 60, self.LEVELS, oracle.probe_bit, oracle.probe_mask)
        ranges = oracle.mask_key_ranges(self.LEVELS)
        cursor = 45
        for lo, hi in ranges:
            assert lo == cursor
            cursor = hi + 1
        assert cursor == 61

    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=300)
    def test_mask_partition_property(self, a, b):
        lo, hi = min(a, b), max(a, b)
        oracle = RecordingOracle()
        two_path_range_lookup(lo, hi, self.LEVELS, oracle.probe_bit, oracle.probe_mask)
        ranges = oracle.mask_key_ranges(self.LEVELS)
        cursor = lo
        for r_lo, r_hi in ranges:
            assert r_lo == cursor
            cursor = r_hi + 1
        assert cursor == hi + 1

    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=300)
    def test_coverings_contain_bounds(self, a, b):
        lo, hi = min(a, b), max(a, b)
        oracle = RecordingOracle()
        two_path_range_lookup(lo, hi, self.LEVELS, oracle.probe_bit, oracle.probe_mask)
        for layer, prefix in oracle.bit_probes:
            d_lo, d_hi = di_bounds(prefix, self.LEVELS[layer])
            contains_lo = d_lo <= lo <= d_hi
            contains_hi = d_lo <= hi <= d_hi
            assert contains_lo or contains_hi, "covering must contain a bound"

    @given(
        st.sets(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=300)
    def test_exact_oracle_gives_exact_answer(self, keys, a, b):
        """With exact probes the planner IS an exact range-emptiness test."""
        lo, hi = min(a, b), max(a, b)
        probe_bit, probe_mask = exact_filter_probes(keys, self.LEVELS)
        got = two_path_range_lookup(lo, hi, self.LEVELS, probe_bit, probe_mask)
        expected = any(lo <= k <= hi for k in keys)
        assert got == expected

    @given(
        st.sets(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=30),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.sampled_from([[0, 7, 14], [0, 2, 4, 6, 8, 10, 12, 14], [0, 5, 10, 16], [0, 16]]),
    )
    @settings(max_examples=200)
    def test_exactness_for_any_layout(self, keys, a, b, levels):
        lo, hi = min(a, b), max(a, b)
        probe_bit, probe_mask = exact_filter_probes(keys, levels)
        got = two_path_range_lookup(lo, hi, levels, probe_bit, probe_mask)
        assert got == any(lo <= k <= hi for k in keys)

    def test_early_exit_on_empty_covering(self):
        oracle = RecordingOracle(bit_answer=False)
        result = two_path_range_lookup(
            45, 46, self.LEVELS, oracle.probe_bit, oracle.probe_mask
        )
        assert result is False
        assert len(oracle.bit_probes) == 1  # stopped at the top covering
        assert oracle.mask_probes == []

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            two_path_range_lookup(5, 4, self.LEVELS, lambda *_: True, lambda *_: True)

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            two_path_range_lookup(0, 1, [1, 4], lambda *_: True, lambda *_: True)

    def test_exact_dyadic_query_single_mask(self):
        """A query equal to one DI needs exactly one decomposition probe."""
        oracle = RecordingOracle(mask_answer=True)
        assert two_path_range_lookup(
            32, 47, self.LEVELS, oracle.probe_bit, oracle.probe_mask
        )
        assert oracle.mask_probes == [(1, 2, 2)]
        assert oracle.bit_probes == [(3, 0), (2, 0)]
