"""Tests for dyadic intervals and the two-path range planner (Sect. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dyadic import (
    PATH_BOTH,
    PATH_LEFT,
    PATH_RIGHT,
    RangePlan,
    RecordingOracle,
    compile_range_plan,
    covering_prefix_range,
    di_bounds,
    dyadic_decompose,
    level_of_range,
    prefix_of,
    two_path_range_lookup,
)
from repro.hashing import splitmix64


class TestPrefixes:
    def test_prefix_of(self):
        assert prefix_of(42, 0) == 42
        assert prefix_of(42, 4) == 2
        assert prefix_of(0x002A, 12) == 0

    def test_di_bounds(self):
        assert di_bounds(0b11, 1) == (6, 7)  # the paper's Sect. 2 example
        assert di_bounds(0, 3) == (0, 7)

    def test_level_of_range(self):
        assert level_of_range(5, 5) == 0
        assert level_of_range(0, 7) == 3
        assert level_of_range(0, 8) == 4

    def test_level_of_range_rejects_empty(self):
        with pytest.raises(ValueError):
            level_of_range(6, 5)


class TestDecompose:
    def test_paper_example(self):
        """I=[45,60] decomposes as in Fig. 7."""
        pieces = dyadic_decompose(45, 60)
        intervals = [di_bounds(p, lvl) for lvl, p in pieces]
        assert intervals == [(45, 45), (46, 47), (48, 55), (56, 59), (60, 60)]

    def test_single_point(self):
        assert dyadic_decompose(7, 7) == [(0, 7)]

    def test_aligned_block(self):
        assert dyadic_decompose(8, 15) == [(3, 1)]

    def test_max_level_cap(self):
        pieces = dyadic_decompose(0, 15, max_level=2)
        assert all(level <= 2 for level, _ in pieces)
        assert len(pieces) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dyadic_decompose(5, 4)

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=200)
    def test_partition_property(self, lo, width):
        hi = lo + width
        pieces = dyadic_decompose(lo, hi)
        cursor = lo
        for level, prefix in pieces:
            p_lo, p_hi = di_bounds(prefix, level)
            assert p_lo == cursor, "pieces must be contiguous"
            cursor = p_hi + 1
        assert cursor == hi + 1, "pieces must cover exactly [lo, hi]"

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=1 << 16),
    )
    @settings(max_examples=100)
    def test_minimality(self, lo, width):
        """Greedy decomposition is the canonical minimal one: no two adjacent
        sibling DIs (which could merge into their parent)."""
        hi = lo + width
        pieces = dyadic_decompose(lo, hi)
        for (l1, p1), (l2, p2) in zip(pieces, pieces[1:], strict=False):
            if l1 == l2 and p1 ^ 1 == p2 and p1 % 2 == 0:
                pytest.fail(f"siblings {(l1, p1)} and {(l2, p2)} not merged")


class TestCoveringPrefixRange:
    def test_basic(self):
        assert covering_prefix_range(45, 60, 3) == (5, 7)
        assert covering_prefix_range(0, 7, 3) == (0, 0)

    def test_level_zero(self):
        assert covering_prefix_range(5, 9, 0) == (5, 9)


def exact_filter_probes(keys: set[int], levels):
    """Build exact probe oracles over a key set (reference filter)."""

    def probe_bit(layer, prefix):
        level = levels[layer]
        return any((k >> level) == prefix for k in keys)

    def probe_mask(layer, p_lo, p_hi):
        level = levels[layer]
        return any(p_lo <= (k >> level) <= p_hi for k in keys)

    return probe_bit, probe_mask


class TestTwoPathPlanner:
    LEVELS = [0, 4, 8, 12]  # the paper's d=16, Delta=4 layout

    def test_fig7_probe_pattern(self):
        """For I=[45,60] the planner probes the Fig. 7 intervals."""
        oracle = RecordingOracle(bit_answer=True, mask_answer=False)
        result = two_path_range_lookup(
            45, 60, self.LEVELS, oracle.probe_bit, oracle.probe_mask
        )
        assert result is False
        # Coverings: [0,4095] at layer 3, [0,255] at layer 2, then the split
        # coverings [32,47] and [48,63] at layer 1 (prefixes 2 and 3).
        assert oracle.bit_probes == [(3, 0), (2, 0), (1, 2), (1, 3)]
        # Decomposition masks at layer 0: [45,47] (left) and [48,60] (right).
        assert sorted(oracle.mask_probes) == [(0, 45, 47), (0, 48, 60)]

    def test_mask_ranges_partition_query(self):
        oracle = RecordingOracle()
        two_path_range_lookup(45, 60, self.LEVELS, oracle.probe_bit, oracle.probe_mask)
        ranges = oracle.mask_key_ranges(self.LEVELS)
        cursor = 45
        for lo, hi in ranges:
            assert lo == cursor
            cursor = hi + 1
        assert cursor == 61

    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=300)
    def test_mask_partition_property(self, a, b):
        lo, hi = min(a, b), max(a, b)
        oracle = RecordingOracle()
        two_path_range_lookup(lo, hi, self.LEVELS, oracle.probe_bit, oracle.probe_mask)
        ranges = oracle.mask_key_ranges(self.LEVELS)
        cursor = lo
        for r_lo, r_hi in ranges:
            assert r_lo == cursor
            cursor = r_hi + 1
        assert cursor == hi + 1

    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=300)
    def test_coverings_contain_bounds(self, a, b):
        lo, hi = min(a, b), max(a, b)
        oracle = RecordingOracle()
        two_path_range_lookup(lo, hi, self.LEVELS, oracle.probe_bit, oracle.probe_mask)
        for layer, prefix in oracle.bit_probes:
            d_lo, d_hi = di_bounds(prefix, self.LEVELS[layer])
            contains_lo = d_lo <= lo <= d_hi
            contains_hi = d_lo <= hi <= d_hi
            assert contains_lo or contains_hi, "covering must contain a bound"

    @given(
        st.sets(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=300)
    def test_exact_oracle_gives_exact_answer(self, keys, a, b):
        """With exact probes the planner IS an exact range-emptiness test."""
        lo, hi = min(a, b), max(a, b)
        probe_bit, probe_mask = exact_filter_probes(keys, self.LEVELS)
        got = two_path_range_lookup(lo, hi, self.LEVELS, probe_bit, probe_mask)
        expected = any(lo <= k <= hi for k in keys)
        assert got == expected

    @given(
        st.sets(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=30),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.sampled_from([[0, 7, 14], [0, 2, 4, 6, 8, 10, 12, 14], [0, 5, 10, 16], [0, 16]]),
    )
    @settings(max_examples=200)
    def test_exactness_for_any_layout(self, keys, a, b, levels):
        lo, hi = min(a, b), max(a, b)
        probe_bit, probe_mask = exact_filter_probes(keys, levels)
        got = two_path_range_lookup(lo, hi, levels, probe_bit, probe_mask)
        assert got == any(lo <= k <= hi for k in keys)

    def test_early_exit_on_empty_covering(self):
        oracle = RecordingOracle(bit_answer=False)
        result = two_path_range_lookup(
            45, 46, self.LEVELS, oracle.probe_bit, oracle.probe_mask
        )
        assert result is False
        assert len(oracle.bit_probes) == 1  # stopped at the top covering
        assert oracle.mask_probes == []

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            two_path_range_lookup(5, 4, self.LEVELS, lambda *_: True, lambda *_: True)

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            two_path_range_lookup(0, 1, [1, 4], lambda *_: True, lambda *_: True)

    def test_exact_dyadic_query_single_mask(self):
        """A query equal to one DI needs exactly one decomposition probe."""
        oracle = RecordingOracle(mask_answer=True)
        assert two_path_range_lookup(
            32, 47, self.LEVELS, oracle.probe_bit, oracle.probe_mask
        )
        assert oracle.mask_probes == [(1, 2, 2)]
        assert oracle.bit_probes == [(3, 0), (2, 0)]


LAYOUTS = [
    [0, 4, 8, 12],
    [0, 2, 4, 6, 8, 10, 12, 14],
    [0, 5, 10, 16],
    [0, 16],
    [0, 7, 14],
    [0, 1, 2, 3],
]


def pseudo_random_oracle(salt: int):
    """Deterministic probe answers keyed on (layer, prefixes) — lets the
    short-circuiting callback walk and the eager plan evaluation be compared
    on identical answer functions."""

    def probe_bit(layer, prefix):
        return splitmix64((layer << 40) ^ prefix, seed=salt) % 3 > 0

    def probe_mask(layer, p_lo, p_hi):
        return splitmix64((layer << 40) ^ p_lo ^ (p_hi << 20), seed=salt) % 4 == 0

    return probe_bit, probe_mask


class TestCompiledPlans:
    """compile_range_plan emits the walk's probe program (the tentpole's
    plan/executor split): plan evaluation must agree with the callback walk
    on every oracle, and the probe set must be identical to the recorded
    full probe tree."""

    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.sampled_from(LAYOUTS),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=400)
    def test_plan_matches_callback_walk(self, a, b, levels, salt):
        lo, hi = min(a, b), max(a, b)
        probe_bit, probe_mask = pseudo_random_oracle(salt)
        expected = two_path_range_lookup(lo, hi, levels, probe_bit, probe_mask)
        plan = compile_range_plan(lo, hi, levels)
        assert plan.evaluate(probe_bit, probe_mask) == expected

    @given(
        st.sets(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.sampled_from(LAYOUTS),
    )
    @settings(max_examples=200)
    def test_plan_with_exact_oracle_is_exact(self, keys, a, b, levels):
        lo, hi = min(a, b), max(a, b)
        probe_bit, probe_mask = exact_filter_probes(keys, levels)
        got = compile_range_plan(lo, hi, levels).evaluate(probe_bit, probe_mask)
        assert got == any(lo <= k <= hi for k in keys)

    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.sampled_from(LAYOUTS),
    )
    @settings(max_examples=300)
    def test_plan_probes_exactly_the_recorded_set(self, a, b, levels):
        """The compiled plan probes the exact same (layer, prefix) coverings
        and (layer, p_lo, p_hi) masks as the callback walk's full probe tree
        (RecordingOracle with set coverings / empty masks)."""
        lo, hi = min(a, b), max(a, b)
        oracle = RecordingOracle(bit_answer=True, mask_answer=False)
        two_path_range_lookup(lo, hi, levels, oracle.probe_bit, oracle.probe_mask)
        plan = compile_range_plan(lo, hi, levels)
        assert sorted(plan.bit_probes()) == sorted(oracle.bit_probes)
        plan_masks = [(layer, p_lo, p_hi) for layer, p_lo, p_hi, _, _ in plan.masks]
        assert sorted(plan_masks) == sorted(oracle.mask_probes)

    def test_fig7_plan_structure(self):
        """I=[45,60]: two unaligned bounds -> both chains + level-0 masks."""
        plan = compile_range_plan(45, 60, [0, 4, 8, 12])
        assert plan.guard_bits == [(3, 0), (2, 0)]
        assert plan.left_bits == [(1, 2)]
        assert plan.right_bits == [(1, 3)]
        assert sorted(plan.masks) == [
            (0, 45, 47, PATH_LEFT, 1),
            (0, 48, 60, PATH_RIGHT, 1),
        ]

    def test_dyadic_query_plan_is_single_mask(self):
        plan = compile_range_plan(32, 47, [0, 4, 8, 12])
        assert plan.masks == [(1, 2, 2, PATH_BOTH, 0)]
        assert plan.guard_bits == [(3, 0), (2, 0)]
        assert plan.left_bits == [] and plan.right_bits == []

    def test_gate_depths_block_unreachable_masks(self):
        """A failed chain bit must make deeper masks on that path
        unreachable (mirrors the walk's `left`/`right` state)."""
        plan = RangePlan(
            guard_bits=[],
            left_bits=[(2, 10), (1, 20)],
            right_bits=[],
            masks=[(1, 21, 22, PATH_LEFT, 1), (0, 40, 41, PATH_LEFT, 2)],
        )
        answered = plan.evaluate(
            lambda layer, p: (layer, p) != (1, 20),  # deeper chain bit unset
            lambda layer, lo, hi: layer == 0,  # only the depth-2 mask hits
        )
        assert answered is False  # the hitting mask is gated off

    def test_plan_rejects_invalid_input(self):
        with pytest.raises(ValueError):
            compile_range_plan(5, 4, [0, 4])
        with pytest.raises(ValueError):
            compile_range_plan(0, 1, [1, 4])
