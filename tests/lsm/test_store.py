"""Reopen equivalence of the persistent engines: save→load changes nothing.

The on-disk rungs of the exactness ladder:

* a reopened :class:`PersistentLsmDB` answers ``get_many`` /
  ``scan_nonempty_many`` bit-identically to the in-memory store fed the
  same operations — **and** its filter-probe / block-read
  :class:`~repro.lsm.iostats.IOStats` counters match exactly, because
  filter blocks are deserialized (never rebuilt) and the run layout
  round-trips;
* the same holds shard-by-shard for :class:`PersistentShardedLsmDB`;
* a 1-shard on-disk store reproduces the unsharded on-disk store's
  answers and accounting exactly (the persistence layer extends the
  ladder pinned by ``tests/lsm/test_sharded_lsm.py``).
"""

import numpy as np
import pytest

from repro.api import FilterSpec, open_store
from repro.lsm import LsmDB, PersistentLsmDB, PersistentShardedLsmDB, SpecPolicy

SPEC = FilterSpec("bloomrf", {"bits_per_key": 16, "max_range": 1 << 16})
CAPACITY = 1 << 9


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(71)
    keys = rng.integers(0, 1 << 64, 8_000, dtype=np.uint64)
    deleted = keys[:400]
    probes = np.concatenate(
        [keys[::4], rng.integers(0, 1 << 64, 2_000, dtype=np.uint64)]
    )
    lo = rng.integers(0, 1 << 63, 1_000, dtype=np.uint64)
    width = np.uint64(1) << rng.integers(4, 24, 1_000, dtype=np.uint64)
    bounds = np.stack(
        [lo, np.minimum(lo + width, np.uint64((1 << 64) - 1))], axis=1
    )
    return keys, deleted, probes, bounds


def apply_workload(db, keys, deleted):
    db.put_many(keys)
    db.delete_many(deleted)
    db.flush()  # identical run layout on both sides of the comparison
    return db


def drive_reads(db, probes, bounds):
    db.reset_stats()
    got = db.get_many(probes)
    scanned = db.scan_nonempty_many(bounds)
    return got, scanned, db.stats.counters()


class TestUnshardedReopen:
    def test_reopen_matches_in_memory_answers_and_accounting(
        self, tmp_path, workload
    ):
        keys, deleted, probes, bounds = workload
        memory = apply_workload(
            LsmDB(policy=SpecPolicy(SPEC), memtable_capacity=CAPACITY),
            keys,
            deleted,
        )
        disk = apply_workload(
            open_store(
                path=tmp_path / "db", filter=SPEC, memtable_capacity=CAPACITY
            ),
            keys,
            deleted,
        )
        disk.close()
        reopened = open_store(path=tmp_path / "db")
        mem_got, mem_scanned, mem_counters = drive_reads(memory, probes, bounds)
        got, scanned, counters = drive_reads(reopened, probes, bounds)
        assert np.array_equal(got, mem_got)
        assert np.array_equal(scanned, mem_scanned)
        # Filter blocks were deserialized, not rebuilt: the probe-level
        # accounting (probes, positives, FPs, block reads) matches exactly.
        assert counters == mem_counters
        reopened.close()

    def test_reopened_filter_blocks_are_bit_identical(self, tmp_path, workload):
        keys, deleted, _, _ = workload
        disk = apply_workload(
            open_store(
                path=tmp_path / "db", filter=SPEC, memtable_capacity=CAPACITY
            ),
            keys,
            deleted,
        )
        blocks = [sst.filter_block for sst in disk.sstables]
        disk.close()
        reopened = open_store(path=tmp_path / "db")
        assert [sst.filter_block for sst in reopened.sstables] == blocks
        reopened.close()

    def test_reopen_charges_deserialization_not_build(self, tmp_path, workload):
        keys, deleted, _, _ = workload
        disk = apply_workload(
            open_store(
                path=tmp_path / "db", filter=SPEC, memtable_capacity=CAPACITY
            ),
            keys,
            deleted,
        )
        disk.close()
        reopened = open_store(path=tmp_path / "db")
        assert reopened.stats.deserialization_s > 0.0
        # Deserialized handles skip policy.build: per-run build time only
        # covers the hand-off, far below an actual filter construction.
        build_s, _ = reopened.construction_times()
        fresh_build_s, _ = disk.construction_times()
        assert build_s < fresh_build_s
        reopened.close()

    def test_values_round_trip(self, tmp_path):
        keys = np.arange(0, 900, 3, dtype=np.uint64)
        values = [b"payload-%d" % int(k) for k in keys]
        with open_store(
            path=tmp_path / "db",
            filter=SPEC,
            memtable_capacity=128,
            store_values=True,
        ) as db:
            db.put_many(keys, values)
        with open_store(path=tmp_path / "db") as reopened:
            assert reopened.get_value(300) == b"payload-300"
            assert reopened.get_value(301) is None
            assert reopened.scan(0, 30) == [
                (int(k), v) for k, v in zip(keys[:11], values[:11], strict=True)
            ]

    def test_sync_after_compact_prunes_old_runs(self, tmp_path, workload):
        keys, deleted, probes, _ = workload
        disk = apply_workload(
            open_store(
                path=tmp_path / "db", filter=SPEC, memtable_capacity=CAPACITY
            ),
            keys,
            deleted,
        )
        before = disk.get_many(probes)
        assert len(list((tmp_path / "db").glob("sst-*.sst"))) > 1
        disk.compact()
        assert len(list((tmp_path / "db").glob("sst-*.sst"))) == 1
        disk.close()
        with open_store(path=tmp_path / "db") as reopened:
            assert np.array_equal(reopened.get_many(probes), before)
            assert not reopened.get(int(deleted[0]))


class TestShardedReopen:
    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_reopen_matches_in_memory_sharded(
        self, tmp_path, workload, partition
    ):
        keys, deleted, probes, bounds = workload
        from repro.lsm import ShardedLsmDB

        with apply_workload(
            ShardedLsmDB(
                policy=SpecPolicy(SPEC),
                num_shards=4,
                partition=partition,
                memtable_capacity=CAPACITY,
            ),
            keys,
            deleted,
        ) as memory:
            disk = apply_workload(
                open_store(
                    path=tmp_path / "db",
                    filter=SPEC,
                    shards=4,
                    partition=partition,
                    memtable_capacity=CAPACITY,
                ),
                keys,
                deleted,
            )
            disk.close()
            with open_store(path=tmp_path / "db") as reopened:
                assert isinstance(reopened, PersistentShardedLsmDB)
                assert reopened.partition == partition
                mem_got, mem_scanned, mem_counters = drive_reads(
                    memory, probes, bounds
                )
                got, scanned, counters = drive_reads(reopened, probes, bounds)
                assert np.array_equal(got, mem_got)
                assert np.array_equal(scanned, mem_scanned)
                assert counters == mem_counters

    def test_one_shard_on_disk_equals_unsharded_on_disk(
        self, tmp_path, workload
    ):
        """The persistence rung of the 1-shard == unsharded identity."""
        keys, deleted, probes, bounds = workload
        unsharded = apply_workload(
            open_store(
                path=tmp_path / "flat", filter=SPEC, memtable_capacity=CAPACITY
            ),
            keys,
            deleted,
        )
        unsharded.close()
        single = apply_workload(
            open_store(
                path=tmp_path / "one",
                filter=SPEC,
                shards=1,
                memtable_capacity=CAPACITY,
            ),
            keys,
            deleted,
        )
        single.close()
        with open_store(path=tmp_path / "flat") as flat, open_store(
            path=tmp_path / "one"
        ) as one:
            flat_got, flat_scanned, flat_counters = drive_reads(
                flat, probes, bounds
            )
            got, scanned, counters = drive_reads(one, probes, bounds)
            assert np.array_equal(got, flat_got)
            assert np.array_equal(scanned, flat_scanned)
            assert counters == flat_counters

    def test_per_shard_specs_round_trip(self, tmp_path):
        specs = [
            FilterSpec("bloomrf", {"bits_per_key": 10, "max_range": 1 << 10}),
            FilterSpec("bloomrf", {"bits_per_key": 20, "max_range": 1 << 10}),
            FilterSpec("bloom", {"bits_per_key": 12}),
        ]
        keys = np.arange(0, 1 << 63, 1 << 52, dtype=np.uint64)
        with open_store(
            path=tmp_path / "db", filter=specs, shards=3, partition="range"
        ) as db:
            db.put_many(keys)
        with open_store(path=tmp_path / "db") as reopened:
            assert reopened.specs == specs
            assert [shard.policy.spec for shard in reopened.shards] == specs
            assert reopened.get_many(keys).all()

    def test_sharded_stats_merge_after_reopen(self, tmp_path, workload):
        keys, deleted, probes, bounds = workload
        disk = apply_workload(
            open_store(
                path=tmp_path / "db",
                filter=SPEC,
                shards=3,
                memtable_capacity=CAPACITY,
            ),
            keys,
            deleted,
        )
        disk.close()
        from repro.lsm import IOStats

        with open_store(path=tmp_path / "db") as reopened:
            reopened.reset_stats()
            reopened.get_many(probes)
            reopened.scan_nonempty_many(bounds)
            total = IOStats.merged([s.stats for s in reopened.shards])
            assert reopened.stats.counters() == total.counters()


class TestDurabilitySemantics:
    def test_unflushed_memtable_survives_via_the_wal(self, tmp_path):
        db = open_store(path=tmp_path / "db", filter=SPEC)
        db.put_many(np.arange(100, dtype=np.uint64))
        # No flush: the acknowledged writes live only in the memtable and
        # the write-ahead log.  A reopen from the current on-disk state
        # replays the log — nothing acknowledged is ever lost...
        replayed = PersistentLsmDB(tmp_path / "db")
        assert replayed.get_many(np.arange(100, dtype=np.uint64)).all()
        assert replayed.last_recovery["replayed_ops"] == 100
        # ...and flush() migrates them into runs, truncating the log.
        db.flush()
        reopened = PersistentLsmDB(tmp_path / "db")
        assert reopened.get_many(np.arange(100, dtype=np.uint64)).all()
        assert reopened.last_recovery["replayed_ops"] == 0
        assert reopened.wal_info()["records"] == 0
        db.close()

    def test_sync_is_part_of_the_store_protocol(self, tmp_path):
        from repro.api import Store

        with open_store(path=tmp_path / "db", filter=SPEC) as disk:
            assert isinstance(disk, Store)
        with open_store(filter=SPEC) as memory:
            assert isinstance(memory, Store)
            memory.sync()  # no-op, but part of the uniform interface

    def test_read_only_open_close_writes_nothing(self, tmp_path):
        """Pure reads must not touch the store directory: a query-only
        open/close cycle leaves every file byte- and inode-identical."""
        import os

        path = tmp_path / "db"
        with open_store(path=path, filter=SPEC, shards=2,
                        memtable_capacity=128) as db:
            db.put_many(np.arange(1_000, dtype=np.uint64))
        before = {
            str(p): (os.stat(p).st_ino, os.stat(p).st_mtime_ns)
            for p in path.rglob("*") if p.is_file()
        }
        with open_store(path=path) as reader:
            assert reader.get_many(np.arange(64, dtype=np.uint64)).all()
            reader.flush()  # no new runs -> still nothing to write
        after = {
            str(p): (os.stat(p).st_ino, os.stat(p).st_mtime_ns)
            for p in path.rglob("*") if p.is_file()
        }
        assert after == before

    def test_compact_writes_the_manifest_once(self, tmp_path, monkeypatch):
        """The memtable drain inside compact skips its interim sync: one
        compact = one manifest replace, not two plus a discarded run."""
        import repro.lsm.store as store_mod

        db = open_store(path=tmp_path / "db", filter=SPEC,
                        memtable_capacity=128)
        db.put_many(np.arange(700, dtype=np.uint64))
        db.put_many(np.arange(350, 1_050, dtype=np.uint64))
        manifest_writes = []
        real = store_mod._atomic_write
        monkeypatch.setattr(
            store_mod,
            "_atomic_write",
            lambda path, data: (
                manifest_writes.append(path)
                if path.name == store_mod.MANIFEST_NAME
                else None,
                real(path, data),
            )[-1],
        )
        db.compact()
        assert len(manifest_writes) == 1
        db.close()
        with open_store(path=tmp_path / "db") as reopened:
            assert reopened.get_many(np.arange(1_050, dtype=np.uint64)).all()

    def test_close_is_idempotent(self, tmp_path):
        db = open_store(path=tmp_path / "db", filter=SPEC, shards=2)
        db.put_many(np.arange(500, dtype=np.uint64))
        db.close()
        db.close()
        with open_store(path=tmp_path / "db") as reopened:
            assert reopened.num_keys == 500


class TestReadTierExactness:
    """The raw-speed read tier (mmap frames, per-block compression, block
    cache) extends the exactness ladder: every knob combination answers
    and accounts bit-identically to the eager uncompressed store."""

    KNOBS = [
        {"mmap": True},
        {"compression": "zlib"},
        {"compression": {"codec": "zlib", "block_bytes": 1 << 12}, "mmap": True},
        {"compression": "zlib", "mmap": True, "block_cache_bytes": 1 << 12},
    ]

    def _build(self, path, workload, **create_kw):
        keys, deleted, _, _ = workload
        db = apply_workload(
            open_store(
                path=path,
                filter=SPEC,
                memtable_capacity=CAPACITY,
                store_values=True,
                **create_kw,
            ),
            keys,
            deleted,
        )
        db.close()

    @pytest.mark.parametrize("knobs", KNOBS)
    def test_knobs_match_eager_uncompressed_store(
        self, tmp_path, workload, knobs
    ):
        keys, deleted, probes, bounds = workload
        create = {
            k: v for k, v in knobs.items() if k in ("compression",)
        }
        self._build(tmp_path / "base", workload)
        self._build(tmp_path / "tier", workload, **create)
        with open_store(path=tmp_path / "base") as base, open_store(
            path=tmp_path / "tier", **knobs
        ) as tier:
            base_got, base_scanned, base_counters = drive_reads(
                base, probes, bounds
            )
            got, scanned, counters = drive_reads(tier, probes, bounds)
            assert np.array_equal(got, base_got)
            assert np.array_equal(scanned, base_scanned)
            assert counters == base_counters
            for k in keys[:50:5]:
                assert tier.get_value(int(k)) == base.get_value(int(k))

    @pytest.mark.parametrize("shards", [1, 3])
    def test_compressed_mmap_reopen_is_bit_identical(
        self, tmp_path, workload, shards
    ):
        """A compressed + mmap'd reopen reproduces the still-open store's
        answers and probe accounting exactly, sharded or not."""
        keys, deleted, probes, bounds = workload
        live = apply_workload(
            open_store(
                path=tmp_path / "db",
                filter=SPEC,
                shards=shards,
                memtable_capacity=CAPACITY,
                compression="zlib",
            ),
            keys,
            deleted,
        )
        live_got, live_scanned, live_counters = drive_reads(
            live, probes, bounds
        )
        live.close()
        with open_store(path=tmp_path / "db", mmap=True) as reopened:
            got, scanned, counters = drive_reads(reopened, probes, bounds)
            assert np.array_equal(got, live_got)
            assert np.array_equal(scanned, live_scanned)
            assert counters == live_counters

    def test_block_cache_counters_surface_in_iostats(self, tmp_path):
        keys = np.arange(0, 3_000, 3, dtype=np.uint64)
        values = [b"v%08d" % int(k) * 8 for k in keys]
        with open_store(
            path=tmp_path / "db",
            filter=SPEC,
            memtable_capacity=256,
            store_values=True,
            compression={"codec": "zlib", "block_bytes": 1 << 10},
        ) as db:
            db.put_many(keys, values)
        with open_store(path=tmp_path / "db", mmap=True) as db:
            for k in keys[:200]:
                assert db.get_value(int(k)) is not None
            first = db.stats.block_cache_misses
            assert first > 0
            for k in keys[:200]:  # hot re-read: served from the cache
                db.get_value(int(k))
            assert db.stats.block_cache_hits > 0
            assert db.stats.block_cache_misses == first
            # The hit/miss split is cache policy, not probe accounting:
            # it must stay out of the exactness counter set.
            assert "block_cache_hits" not in db.stats.counters()

    def test_cache_counters_survive_reset_stats(self, tmp_path):
        """reset_stats() must not detach the cache's accounting: loaded
        SST frames capture the stats object at open time, so the reset
        has to zero it in place rather than swap in a fresh one."""
        keys = np.arange(0, 3_000, 3, dtype=np.uint64)
        values = [b"v%08d" % int(k) * 8 for k in keys]
        with open_store(
            path=tmp_path / "db",
            filter=SPEC,
            memtable_capacity=256,
            store_values=True,
            compression={"codec": "zlib", "block_bytes": 1 << 10},
        ) as db:
            db.put_many(keys, values)
        with open_store(path=tmp_path / "db", mmap=True) as db:
            old = db.reset_stats()
            assert old.block_cache_misses == 0
            for k in keys[:200]:
                db.get_value(int(k))
            assert db.stats.block_cache_misses > 0
            snapshot = db.reset_stats()
            assert snapshot.block_cache_misses > 0
            assert db.stats.block_cache_misses == 0
            for k in keys[:200]:  # hot re-read, recorded post-reset
                db.get_value(int(k))
            assert db.stats.block_cache_hits > 0

    def test_uncompressed_store_never_touches_the_cache(self, tmp_path):
        keys = np.arange(500, dtype=np.uint64)
        with open_store(
            path=tmp_path / "db",
            filter=SPEC,
            memtable_capacity=128,
            store_values=True,
        ) as db:
            db.put_many(keys, [b"x" * 16] * keys.size)
        with open_store(path=tmp_path / "db", mmap=True) as db:
            for k in keys[:100]:
                assert db.get_value(int(k)) == b"x" * 16
            assert db.stats.block_cache_hits == 0
            assert db.stats.block_cache_misses == 0

    def test_tiny_cache_budget_still_answers_exactly(self, tmp_path):
        keys = np.arange(0, 2_000, 2, dtype=np.uint64)
        values = [b"payload-%06d" % int(k) for k in keys]
        with open_store(
            path=tmp_path / "db",
            filter=SPEC,
            memtable_capacity=256,
            store_values=True,
            compression={"codec": "zlib", "block_bytes": 1 << 10},
        ) as db:
            db.put_many(keys, values)
        # A budget below one block caches nothing; answers are unchanged.
        with open_store(
            path=tmp_path / "db", mmap=True, block_cache_bytes=64
        ) as db:
            for k, v in zip(keys[:100].tolist(), values[:100], strict=True):
                assert db.get_value(k) == v
            assert db.stats.block_cache_hits == 0

    def test_compression_conflict_and_inheritance_on_reopen(self, tmp_path):
        with open_store(
            path=tmp_path / "db", filter=SPEC, compression="zlib"
        ) as db:
            db.put_many(np.arange(300, dtype=np.uint64))
        # Reopen inherits the persisted codec with no arguments...
        with open_store(path=tmp_path / "db") as db:
            assert db._compression == {
                "codec": "zlib", "block_bytes": 1 << 16,
            }
        # ...accepts the matching spec, and rejects a conflicting one.
        with open_store(path=tmp_path / "db", compression="zlib") as db:
            assert db.get(5)
        with pytest.raises(ValueError, match="compression"):
            open_store(
                path=tmp_path / "db",
                compression={"codec": "zlib", "block_bytes": 1 << 12},
            )

    def test_read_tier_knobs_require_a_path(self):
        for kw in (
            {"compression": "zlib"},
            {"mmap": True},
            {"block_cache_bytes": 1 << 20},
        ):
            with pytest.raises(ValueError, match="persistent store"):
                open_store(filter=SPEC, **kw)

    def test_mmap_reopen_skips_payload_byte_work(self, tmp_path, workload):
        """The point of the tier: an mmap reopen does O(runs) metadata
        work.  Proxy assertion (timing-free, CI-safe): reopening must not
        read the key payloads eagerly — the arrays stay buffer views."""
        keys, deleted, _, _ = workload
        self._build(tmp_path / "db", workload)
        with open_store(path=tmp_path / "db", mmap=True) as db:
            for sst in db.sstables:
                assert not sst.keys.flags.owndata
                assert not sst.keys.flags.writeable
            assert db.get(int(keys[400]))  # keys[:400] were deleted

    def test_compaction_over_mmapped_compressed_runs(self, tmp_path):
        """Compaction merges mmap'd runs and prunes their files while
        views may still exist — POSIX keeps the mapped pages valid, and
        the merged store answers exactly."""
        keys = np.arange(0, 4_000, 2, dtype=np.uint64)
        with open_store(
            path=tmp_path / "db",
            filter=SPEC,
            memtable_capacity=256,
            store_values=True,
            compression="zlib",
        ) as db:
            db.put_many(keys, [b"c%06d" % int(k) for k in keys])
        with open_store(path=tmp_path / "db", mmap=True) as db:
            assert len(db.sstables) > 1
            db.compact()
            assert len(db.sstables) == 1
            assert db.get_value(2000) == b"c002000"
        with open_store(path=tmp_path / "db", mmap=True) as db:
            assert db.get_value(2000) == b"c002000"
            assert db.get_value(2001) is None
