"""Model-based durability testing of the on-disk store.

A Hypothesis :class:`RuleBasedStateMachine` drives random operation
sequences — ``put_many`` / ``delete_many`` / ``get_many`` /
``scan_nonempty_many`` / ``compact`` / ``flush`` / close-and-reopen —
against three models at once:

* the **persistent store** under test (``open_store(path=...)``),
* a plain dict **oracle** holding the exact live key→value map,
* a never-closed in-memory **shadow** store fed the identical operations.

Every read must match the oracle exactly (reads resolve exactly; filters
only accelerate), and after every reopen the store's answers must be
bit-identical to the never-closed shadow's.  The machine is run over
filter kinds × shard counts {1, 4}, so the spec round-trip, the per-shard
manifest fan-out, and the partitioned run layout all sit under the same
random churn.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.api import FilterSpec, open_store

# A compact keyspace so random puts, deletes, and probes actually collide;
# hash partitioning spreads it over every shard regardless of width.
KEYSPACE = 1 << 16

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=KEYSPACE - 1),
    min_size=1,
    max_size=24,
)


class StoreMachine(RuleBasedStateMachine):
    """One machine instance = one store directory + oracle + shadow.

    ``compaction`` (class attribute, default manual) opens the store
    under test with a background merge policy while the shadow stays
    manual — every read comparison then also asserts that background
    compaction is answer-preserving under random churn.
    """

    spec: FilterSpec
    shards: int
    compaction: object = "manual"
    # Read-tier machine parameters: the store under test may run block-
    # compressed and/or over mmap'd frames (the shadow never does), so
    # every comparison also pins the zero-copy tier to the eager answers.
    compression: object = None
    mmap: bool = False
    block_cache_bytes: "int | None" = None

    def __init__(self):
        super().__init__()
        self.tmp = Path(tempfile.mkdtemp(prefix="store-model-"))
        self.oracle: dict[int, bytes] = {}
        self.ticks = 0
        self.store = self._open()
        self.shadow = open_store(
            filter=self.spec,
            shards=self.shards,
            partition="hash",
            memtable_capacity=32,
            store_values=True,
        )

    def _open(self):
        return open_store(
            path=self.tmp / "db",
            filter=self.spec,
            shards=self.shards,
            partition="hash",
            memtable_capacity=32,
            store_values=True,
            compaction=self.compaction,
            compression=self.compression,
            mmap=self.mmap,
            block_cache_bytes=self.block_cache_bytes,
        )

    # ------------------------------------------------------------------
    # writes (applied to store, shadow, and oracle identically)
    # ------------------------------------------------------------------
    @rule(keys=keys_strategy)
    def put_many(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        self.ticks += 1
        values = [b"%d:%d" % (self.ticks, key) for key in keys]
        self.store.put_many(arr, values)
        self.shadow.put_many(arr, values)
        for key, value in zip(keys, values, strict=True):
            self.oracle[key] = value

    @rule(keys=keys_strategy)
    def delete_many(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        self.store.delete_many(arr)
        self.shadow.delete_many(arr)
        for key in keys:
            self.oracle.pop(key, None)

    @rule()
    def flush(self):
        self.store.flush()
        self.shadow.flush()

    @rule()
    def compact(self):
        self.store.compact()
        self.shadow.compact()

    # ------------------------------------------------------------------
    # reads (checked against the oracle)
    # ------------------------------------------------------------------
    @rule(keys=keys_strategy)
    def get_many_matches_oracle(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        expected = np.array([key in self.oracle for key in keys], dtype=bool)
        assert np.array_equal(self.store.get_many(arr), expected)
        assert np.array_equal(self.shadow.get_many(arr), expected)

    @rule(key=st.integers(min_value=0, max_value=KEYSPACE - 1))
    def get_value_matches_oracle(self, key):
        assert self.store.get_value(key) == self.oracle.get(key)

    @rule(
        lo=st.integers(min_value=0, max_value=KEYSPACE - 1),
        width=st.integers(min_value=0, max_value=KEYSPACE // 4),
    )
    def scan_nonempty_matches_oracle(self, lo, width):
        hi = min(lo + width, KEYSPACE - 1)
        bounds = np.array([[lo, hi]], dtype=np.uint64)
        truth = any(lo <= key <= hi for key in self.oracle)
        assert bool(self.store.scan_nonempty_many(bounds)[0]) == truth
        assert bool(self.shadow.scan_nonempty_many(bounds)[0]) == truth

    # ------------------------------------------------------------------
    # durability: close, reopen, compare against the never-closed shadow
    # ------------------------------------------------------------------
    @rule()
    def reopen(self):
        self.store.close()
        self.store = self._open()
        self._assert_matches_shadow()

    @rule()
    def crash_and_reopen(self):
        """Drop the store without close() or flush(): the write-ahead log
        must replay every acknowledged write, so the reopened store still
        answers bit-identically to the never-closed shadow."""
        scheduler = getattr(self.store, "_scheduler", None)
        if scheduler is not None:
            # Background merges are not state either way — an in-flight
            # merge either commits (answer-preserving) or never ran —
            # but the worker must stop before a second store opens the
            # same directory.  Mid-merge kills are covered separately by
            # the fault-injection stress suite.
            scheduler.close()
        pool = getattr(self.store, "_pool", None)
        if pool is not None:  # workers are not state; a crash loses none
            pool.close()
        self.store = self._open()
        self._assert_matches_shadow()

    def _assert_matches_shadow(self):
        """Reopened answers must be bit-identical to the live store's."""
        probes = np.array(
            sorted(set(self.oracle) | {0, 1, KEYSPACE - 1, 777}),
            dtype=np.uint64,
        )
        assert np.array_equal(
            self.store.get_many(probes), self.shadow.get_many(probes)
        )
        hi = np.minimum(probes + np.uint64(64), np.uint64(KEYSPACE - 1))
        bounds = np.stack([np.minimum(probes, hi), hi], axis=1)
        assert np.array_equal(
            self.store.scan_nonempty_many(bounds),
            self.shadow.scan_nonempty_many(bounds),
        )

    @invariant()
    def key_count_is_consistent(self):
        # Live key count from a full-domain scan equals the oracle's size
        # (scan merges runs + memtable and drops tombstones exactly).
        assert len(self.store.scan(0, KEYSPACE - 1)) == len(self.oracle)

    def teardown(self):
        self.store.close()
        self.shadow.close()
        shutil.rmtree(self.tmp, ignore_errors=True)


MACHINE_SETTINGS = settings(
    max_examples=12, stateful_step_count=20, deadline=None
)

CASES = [
    ("bloomrf", FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})),
    ("bloom", FilterSpec("bloom", {"bits_per_key": 12})),
    ("none", FilterSpec("none")),
]


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("kind,spec", CASES, ids=[kind for kind, _ in CASES])
def test_store_model(kind, spec, shards):
    machine_cls = type(
        f"StoreMachine_{kind}_{shards}",
        (StoreMachine,),
        {"spec": spec, "shards": shards},
    )
    run_state_machine_as_test(machine_cls, settings=MACHINE_SETTINGS)


# Eager triggers (min_runs/runs_per_level at their floors) so background
# merges actually interleave with the machine's reads, reopens, and
# crashes within 20-step runs.
COMPACTION_CASES = [
    ("tiered", {"policy": "size-tiered", "min_runs": 2, "max_runs": 4}),
    ("leveled", {"policy": "leveled", "runs_per_level": 1}),
]


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize(
    "name,compaction", COMPACTION_CASES, ids=[name for name, _ in COMPACTION_CASES]
)
def test_store_model_with_background_compaction(name, compaction, shards):
    machine_cls = type(
        f"StoreMachine_{name}_{shards}",
        (StoreMachine,),
        {"spec": CASES[0][1], "shards": shards, "compaction": compaction},
    )
    run_state_machine_as_test(machine_cls, settings=MACHINE_SETTINGS)


# The zero-copy read tier under the same random churn: tiny blocks so
# values span several compressed blocks, and one case with a cache budget
# far below the working set so eviction interleaves with every rule.
READ_TIER_CASES = [
    ("mmap", None, True, None),
    ("zlib", {"codec": "zlib", "block_bytes": 1 << 10}, False, None),
    ("zlib-mmap", {"codec": "zlib", "block_bytes": 1 << 10}, True, None),
    ("zlib-tiny-cache", {"codec": "zlib", "block_bytes": 1 << 10}, True, 1 << 11),
]


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize(
    "name,compression,mmap,cache",
    READ_TIER_CASES,
    ids=[name for name, _, _, _ in READ_TIER_CASES],
)
def test_store_model_read_tier(name, compression, mmap, cache, shards):
    machine_cls = type(
        f"StoreMachine_{name}_{shards}",
        (StoreMachine,),
        {
            "spec": CASES[0][1],
            "shards": shards,
            "compression": compression,
            "mmap": mmap,
            "block_cache_bytes": cache,
        },
    )
    run_state_machine_as_test(machine_cls, settings=MACHINE_SETTINGS)


def test_reopen_of_empty_store_round_trips(tmp_path):
    """The degenerate sequence: create, write nothing, close, reopen."""
    with open_store(path=tmp_path / "db", shards=4):
        pass
    with open_store(path=tmp_path / "db") as reopened:
        assert reopened.num_keys == 0
        assert not reopened.get_many(np.arange(8, dtype=np.uint64)).any()
