"""Unit tests for :class:`repro.testing.LockOrderWatcher`.

The watcher patches ``threading.Lock`` / ``threading.RLock`` while
active, builds the acquisition-order graph keyed by creation site, and
fails on cycles or unlocked run-list swaps.  These tests drive it with
synthetic locks (deterministic orderings, no races needed — the graph
records *observed* nesting, not actual contention) and with a real
store under background compaction.
"""

import threading

import numpy as np
import pytest

from repro.api import FilterSpec, open_store
from repro.testing import LockOrderError, LockOrderWatcher

SPEC = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})


def test_factories_patched_and_restored():
    real_lock = threading.Lock
    real_rlock = threading.RLock
    with LockOrderWatcher():
        assert threading.Lock is not real_lock
        assert threading.RLock is not real_rlock
        lock = threading.Lock()
        assert hasattr(lock, "site")
    assert threading.Lock is real_lock
    assert threading.RLock is real_rlock


def test_consistent_order_is_clean():
    with LockOrderWatcher() as watcher:
        a = threading.Lock()
        b = threading.Lock()
        for _ in range(3):
            with a:
                with b:
                    pass
    assert watcher.cycle() is None
    assert len(watcher.edges) == 1


def test_opposite_order_cycle_is_detected():
    watcher = LockOrderWatcher()
    with pytest.raises(LockOrderError, match="cycle"):
        with watcher:
            # Distinct source lines: sites are the cycle's nodes.
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
    assert watcher.cycle() is not None


def test_cycle_error_names_sites_and_witnesses():
    watcher = LockOrderWatcher()
    with pytest.raises(LockOrderError) as excinfo:
        with watcher:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
    message = str(excinfo.value)
    assert "test_lock_order.py" in message
    assert "->" in message
    assert "observed edges" in message


def test_same_site_nesting_is_not_an_edge():
    """Two instances from one creation site (shard fan-out) are skipped:
    site-keyed detection cannot orient them."""
    with LockOrderWatcher() as watcher:
        locks = [threading.Lock() for _ in range(2)]
        with locks[0]:
            with locks[1]:
                pass
        with locks[1]:
            with locks[0]:
                pass
    assert watcher.edges == {}


def test_rlock_reentry_is_not_an_edge():
    with LockOrderWatcher() as watcher:
        lock = threading.RLock()
        with lock:
            with lock:
                pass
    assert watcher.edges == {}


def test_rlock_proxy_supports_is_owned():
    with LockOrderWatcher():
        lock = threading.RLock()
        assert not lock._is_owned()
        with lock:
            assert lock._is_owned()
        assert not lock._is_owned()


def test_condition_works_on_instrumented_lock():
    """threading.Condition relies on RLock internals the proxy must keep
    working (acquire/release/_is_owned) — Event/Condition are used by the
    thread pool inside the watch window."""
    with LockOrderWatcher():
        event = threading.Event()
        event.set()
        assert event.wait(timeout=1)


def test_cross_thread_edges_build_one_graph():
    """Edges observed in different threads land in one shared graph, so
    an A->B in thread 1 plus B->A in thread 2 is still a cycle."""
    watcher = LockOrderWatcher()
    with pytest.raises(LockOrderError, match="cycle"):
        with watcher:
            a = threading.Lock()
            b = threading.Lock()

            def forward():
                with a:
                    with b:
                        pass

            def backward():
                with b:
                    with a:
                        pass

            t1 = threading.Thread(target=forward)
            t1.start()
            t1.join()
            t2 = threading.Thread(target=backward)
            t2.start()
            t2.join()
    assert watcher.cycle() is not None


def test_watch_engine_records_unlocked_swap(tmp_path):
    watcher = LockOrderWatcher()
    with pytest.raises(LockOrderError, match="maintenance lock"):
        with watcher:
            db = open_store(
                path=tmp_path / "db", filter=SPEC, memtable_capacity=16
            )
            watcher.watch_engine(db)
            # Bypass the maintenance lock on purpose: must be recorded.
            db.sstables = list(db.sstables)
            db.close()
    assert len(watcher.violations) == 1
    assert "without the maintenance lock" in watcher.violations[0]


def test_watch_engine_passes_locked_swap_and_restores_class(tmp_path):
    with LockOrderWatcher() as watcher:
        db = open_store(
            path=tmp_path / "db", filter=SPEC, memtable_capacity=16
        )
        original = type(db)
        watcher.watch_engine(db)
        assert type(db).__name__.startswith("Watched")
        with db._maintenance_lock:
            db.sstables = list(db.sstables)
        db.close()
        assert watcher.violations == []
    assert type(db) is original


def test_watch_engine_covers_shards(tmp_path):
    with LockOrderWatcher() as watcher:
        db = open_store(
            path=tmp_path / "db", filter=SPEC, shards=2, memtable_capacity=16
        )
        watcher.watch_engine(db)
        shard = db.shards[0]
        shard.sstables = list(shard.sstables)
        db.close()
        recorded = list(watcher.violations)
        watcher.violations.clear()  # let __exit__'s auto-check pass
    assert len(recorded) == 1


def test_healthy_store_run_is_acyclic(tmp_path):
    """A real store with background compaction under the watcher: locks
    nest (maintenance lock, scheduler bookkeeping, cache LRU) but the
    acquisition order must stay a DAG."""
    keys = np.arange(256, dtype=np.uint64)
    with LockOrderWatcher() as watcher:
        db = open_store(
            path=tmp_path / "db",
            filter=SPEC,
            memtable_capacity=32,
            store_values=True,
            compaction={"policy": "size-tiered", "min_runs": 2, "max_runs": 4},
        )
        watcher.watch_engine(db)
        for start in range(0, 256, 64):
            chunk = keys[start : start + 64]
            db.put_many(chunk, [b"v%d" % k for k in chunk])
            db.flush()
        db.compact()
        assert db.get_many(keys).all()
        db.close()
    assert watcher.edges, "expected nested acquisitions in a compacting store"
    assert watcher.cycle() is None
    assert watcher.violations == []
