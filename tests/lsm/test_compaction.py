"""Compaction policies and the background scheduler.

Three layers of coverage:

* **Policies as pure functions** — :class:`SizeTieredPolicy` and
  :class:`LeveledPolicy` pick windows over plain size lists, so triggers
  (including the exact run-count boundary), window contiguity, cheapest-
  window selection, and parameter validation are tested with no engine
  at all.
* **Scheduler lifecycle** — close() mid-merge drains (never abandons) an
  in-flight merge, back-to-back triggers coalesce into one drain loop,
  notify after close is refused, and a crashing merge lands in
  ``last_error`` instead of wedging close().
* **Answer preservation** — stores opened with a background policy give
  bit-identical ``get_many`` / ``scan_nonempty_many`` answers to manual
  stores fed the identical operations, across engines (in-memory,
  sharded, persistent), and a manual :meth:`compact` racing a background
  merge supersedes it cleanly (the background commit aborts).
"""

import threading

import numpy as np
import pytest

from repro.api import FilterSpec, open_store
from repro.lsm.compaction import (
    COMPACTION_POLICIES,
    CompactionScheduler,
    LeveledPolicy,
    SizeTieredPolicy,
    coerce_compaction,
    compaction_to_dict,
)
from repro.lsm.db import LsmDB


# ----------------------------------------------------------------------
# policies as pure pickers
# ----------------------------------------------------------------------
class TestSizeTieredPolicy:
    def test_below_min_runs_is_quiescent(self):
        policy = SizeTieredPolicy(min_runs=4)
        assert policy.pick([]) is None
        assert policy.pick([100]) is None
        assert policy.pick([100, 100, 100]) is None

    def test_trigger_exactly_at_run_count_boundary(self):
        """min_runs equal-sized runs is the boundary: it must fire."""
        policy = SizeTieredPolicy(min_runs=4)
        assert policy.pick([50, 50, 50]) is None
        assert policy.pick([50, 50, 50, 50]) == (0, 4)

    def test_size_ratio_excludes_outsized_runs(self):
        # A giant old run must not be pulled into the window of small
        # L0 runs (ratio 2.0: 1000 > 2 * 10).
        policy = SizeTieredPolicy(min_runs=3, size_ratio=2.0)
        assert policy.pick([10, 10, 10, 1000]) == (0, 3)
        assert policy.pick([1000, 10, 10, 10]) == (1, 4)

    def test_cheapest_window_wins(self):
        # Two eligible tiers; the fewest-total-keys window is picked.
        policy = SizeTieredPolicy(min_runs=2, size_ratio=2.0)
        assert policy.pick([500, 500, 10, 10]) == (2, 4)

    def test_max_runs_caps_window_width(self):
        # Equal sizes: the cheapest window is the narrowest (min_runs
        # wide); pinning min == max shows the cap binds from above.
        policy = SizeTieredPolicy(min_runs=3, max_runs=3)
        start, stop = policy.pick([10] * 8)
        assert stop - start == 3

    def test_window_is_contiguous_and_wide_enough(self):
        policy = SizeTieredPolicy(min_runs=2)
        for sizes in ([5, 5], [7, 7, 7, 7, 7], [3, 4, 6, 100, 3, 4]):
            window = policy.pick(sizes)
            if window is None:
                continue
            start, stop = window
            assert 0 <= start < stop <= len(sizes)
            assert stop - start >= 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="min_runs"):
            SizeTieredPolicy(min_runs=1)
        with pytest.raises(ValueError, match="max_runs"):
            SizeTieredPolicy(min_runs=4, max_runs=3)
        with pytest.raises(ValueError, match="size_ratio"):
            SizeTieredPolicy(size_ratio=0.5)


class TestLeveledPolicy:
    def test_overfull_level_zero_merges(self):
        policy = LeveledPolicy(runs_per_level=2)
        assert policy.pick([10, 10]) is None
        assert policy.pick([10, 10, 10]) == (0, 3)

    def test_window_spans_interleaved_deeper_runs(self):
        # Level-0 members sit at indices 0, 2, 3; the window must stay
        # contiguous, so the deep run at index 1 rides along.
        policy = LeveledPolicy(runs_per_level=2, fanout=8.0)
        assert policy.pick([10, 100000, 10, 10]) == (0, 4)

    def test_shallowest_overfull_level_wins(self):
        policy = LeveledPolicy(runs_per_level=1, fanout=4.0)
        # Levels: [0, 0, 2, 2] — both overfull; level 0 merges first.
        assert policy.pick([10, 10, 300, 300]) == (0, 2)

    def test_single_run_is_quiescent(self):
        policy = LeveledPolicy(runs_per_level=1)
        assert policy.pick([10]) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="runs_per_level"):
            LeveledPolicy(runs_per_level=0)
        with pytest.raises(ValueError, match="fanout"):
            LeveledPolicy(fanout=1.0)


class TestConfigPlumbing:
    def test_coerce_accepts_every_documented_form(self):
        assert coerce_compaction(None) is None
        assert coerce_compaction("manual") is None
        assert coerce_compaction({"policy": "manual"}) is None
        assert coerce_compaction("size-tiered") == SizeTieredPolicy()
        assert coerce_compaction("leveled") == LeveledPolicy()
        policy = SizeTieredPolicy(min_runs=6)
        assert coerce_compaction(policy) is policy
        assert coerce_compaction(
            {"policy": "size-tiered", "params": {"min_runs": 6}}
        ) == SizeTieredPolicy(min_runs=6)
        # Flat knobs beside "policy" (the CLI form) work too.
        assert coerce_compaction(
            {"policy": "leveled", "runs_per_level": 2}
        ) == LeveledPolicy(runs_per_level=2)

    def test_coerce_rejects_unknown_and_invalid(self):
        with pytest.raises(ValueError, match="known: manual"):
            coerce_compaction("lazy")
        with pytest.raises(ValueError, match="known: manual"):
            coerce_compaction({"policy": "lazy"})
        with pytest.raises(ValueError, match="invalid parameters"):
            coerce_compaction({"policy": "size-tiered", "wrong_knob": 3})
        with pytest.raises(ValueError, match="compaction must be"):
            coerce_compaction(7)

    def test_round_trip_through_dict_form(self):
        for name in COMPACTION_POLICIES:
            policy = coerce_compaction(name)
            assert coerce_compaction(policy.to_dict()) == policy
        assert compaction_to_dict(None) == {"policy": "manual", "params": {}}

    def test_describe_levels_partitions_every_run(self):
        policy = SizeTieredPolicy()
        levels = policy.describe_levels([10, 10, 80, 640])
        assert sum(entry["runs"] for entry in levels) == 4
        assert sum(entry["keys"] for entry in levels) == 740
        assert [entry["level"] for entry in levels] == sorted(
            entry["level"] for entry in levels
        )
        assert policy.describe_levels([]) == []


# ----------------------------------------------------------------------
# scheduler lifecycle
# ----------------------------------------------------------------------
class _GatedEngine:
    """An engine stub whose merge blocks until the test releases it."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.merges = 0

    def maybe_compact(self):
        if self.merges:
            return None  # quiescent after one merge
        self.started.set()
        assert self.release.wait(timeout=10), "test never released the merge"
        self.merges += 1
        return {"input_runs": 2, "input_keys": 10, "output_keys": 10}


class TestSchedulerLifecycle:
    def test_close_mid_merge_drains_then_stops(self):
        scheduler = CompactionScheduler()
        engine = _GatedEngine()
        assert scheduler.notify(engine) is True
        assert engine.started.wait(timeout=10)
        closer = threading.Thread(target=scheduler.close)
        closer.start()
        # close() must be *waiting* on the in-flight merge, not skipping it.
        closer.join(timeout=0.2)
        assert closer.is_alive()
        engine.release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert scheduler.closed
        assert engine.merges == 1  # the merge committed before close returned
        assert scheduler.info()["merges"] == 1

    def test_close_is_idempotent_and_refuses_new_work(self):
        scheduler = CompactionScheduler()
        scheduler.close()
        scheduler.close()
        engine = _GatedEngine()
        assert scheduler.notify(engine) is False
        assert not engine.started.is_set()

    def test_back_to_back_triggers_coalesce(self):
        scheduler = CompactionScheduler()
        engine = _GatedEngine()
        assert scheduler.notify(engine) is True
        assert engine.started.wait(timeout=10)
        # The drain loop is mid-merge: further triggers coalesce into it.
        assert scheduler.notify(engine) is False
        assert scheduler.notify(engine) is False
        assert scheduler.info()["pending"] == 1  # dirty set, not a queue
        engine.release.set()
        scheduler.drain()
        info = scheduler.info()
        assert info["notifications"] == 3
        assert info["merges"] == 1
        assert info["pending"] == 0
        scheduler.close()

    def test_crashing_merge_lands_in_last_error(self):
        class Exploding:
            def maybe_compact(self):
                raise SystemExit("injected")  # a BaseException, like a crash

        with CompactionScheduler() as scheduler:
            scheduler.notify(Exploding())
            scheduler.drain()
            assert "injected" in scheduler.info()["last_error"]

    def test_engine_close_drains_owned_scheduler(self):
        db = open_store(memtable_capacity=8, compaction="size-tiered")
        for i in range(8):
            db.put_many(np.arange(i * 8, i * 8 + 8, dtype=np.uint64))
        db.flush()
        db.close()
        assert db._scheduler.closed
        assert db._scheduler.info()["last_error"] is None


# ----------------------------------------------------------------------
# answer preservation: background == manual, bit for bit
# ----------------------------------------------------------------------
def _churn(db, rng):
    """A deterministic write/delete/flush script shared by both stores.

    Every iteration flushes one ~16-entry run (all-puts or all-deletes),
    so the runs are similar-sized and the default size-tiered ratio
    trigger actually fires within 24 flushes."""
    for i in range(24):
        keys = rng.integers(0, 1 << 12, size=16).astype(np.uint64)
        if i % 4 == 3:
            db.delete_many(keys)
        else:
            db.put_many(keys)
        db.flush()


POLICY_CASES = [
    "size-tiered",
    {"policy": "size-tiered", "min_runs": 2, "max_runs": 4},
    "leveled",
    {"policy": "leveled", "runs_per_level": 1},
]


@pytest.mark.parametrize(
    "compaction", POLICY_CASES, ids=["tiered", "tiered-eager", "leveled", "leveled-eager"]
)
@pytest.mark.parametrize("shards", [1, 3])
def test_background_compaction_preserves_answers(compaction, shards):
    spec = FilterSpec("bloomrf", {"bits_per_key": 12, "max_range": 1 << 10})
    auto = open_store(
        filter=spec, shards=shards, memtable_capacity=16, compaction=compaction
    )
    manual = open_store(filter=spec, shards=shards, memtable_capacity=16)
    _churn(auto, np.random.default_rng(7))
    _churn(manual, np.random.default_rng(7))
    auto.drain_compaction()
    points = np.arange(0, 1 << 12, dtype=np.uint64)
    assert np.array_equal(auto.get_many(points), manual.get_many(points))
    lo = points[:: 16]
    bounds = np.stack([lo, lo + np.uint64(255)], axis=1)
    assert np.array_equal(
        auto.scan_nonempty_many(bounds), manual.scan_nonempty_many(bounds)
    )
    # The whole point: the policy actually bounded the run set.
    info = auto.compaction_info()
    assert info["scheduler"]["merges"] > 0
    auto.close()
    manual.close()


def test_background_compaction_preserves_answers_persistent(tmp_path):
    spec = FilterSpec("bloom", {"bits_per_key": 10})
    auto = open_store(
        path=tmp_path / "auto",
        filter=spec,
        memtable_capacity=16,
        compaction={"policy": "size-tiered", "min_runs": 2},
    )
    manual = open_store(path=tmp_path / "manual", filter=spec, memtable_capacity=16)
    _churn(auto, np.random.default_rng(11))
    _churn(manual, np.random.default_rng(11))
    auto.drain_compaction()
    points = np.arange(0, 1 << 12, dtype=np.uint64)
    assert np.array_equal(auto.get_many(points), manual.get_many(points))
    assert auto.compaction_info()["scheduler"]["merges"] > 0
    auto.close()
    manual.close()
    # Reopen both cold: merged-run recovery must answer identically too.
    with open_store(path=tmp_path / "auto") as back_auto:
        with open_store(path=tmp_path / "manual") as back_manual:
            assert back_auto.compaction == SizeTieredPolicy(min_runs=2)
            assert np.array_equal(
                back_auto.get_many(points), back_manual.get_many(points)
            )


def test_tombstones_survive_interior_merges():
    """Deleted keys stay deleted across background merges (tombstones are
    only dropped when the merge window reaches the oldest run)."""
    db = open_store(
        memtable_capacity=8,
        compaction={"policy": "size-tiered", "min_runs": 2, "max_runs": 3},
    )
    dead = np.arange(0, 64, dtype=np.uint64)
    db.put_many(dead)
    db.flush()
    db.delete_many(dead)
    db.flush()
    for i in range(8):  # bury the tombstone runs under more flushes
        db.put_many(np.arange(1000 + i * 8, 1000 + i * 8 + 8, dtype=np.uint64))
        db.flush()
    db.drain_compaction()
    assert not db.get_many(dead).any()
    db.close()


# ----------------------------------------------------------------------
# manual compact() vs a background merge: supersession
# ----------------------------------------------------------------------
def test_manual_compact_supersedes_in_flight_background_merge():
    """A manual compact() that lands while a background merge is building
    wins: the background commit sees its window gone and aborts, and the
    store holds exactly the manual run with unchanged answers."""
    db = LsmDB(memtable_capacity=8)
    for i in range(4):
        db.put_many(np.arange(i * 8, i * 8 + 8, dtype=np.uint64))
        db.flush()
    db.compaction = SizeTieredPolicy(min_runs=2)  # picker only; no scheduler
    original_merge = db._merge_tables
    state = {"intercepted": False}

    def merge_then_lose_the_race(tables, *, drop_tombstones):
        merged = original_merge(tables, drop_tombstones=drop_tombstones)
        if not state["intercepted"]:
            state["intercepted"] = True
            db._merge_tables = original_merge
            db.compact()  # phase 2 holds no lock: the manual path runs now
        return merged

    db._merge_tables = merge_then_lose_the_race
    assert db.maybe_compact() is None  # commit aborted, merge discarded
    assert state["intercepted"]
    assert len(db.sstables) == 1  # the manual compact's single run
    assert db.get_many(np.arange(32, dtype=np.uint64)).all()
    db.close()


def test_manual_compact_on_background_policy_store():
    """compact() on a store with a live scheduler: both paths serialize on
    the maintenance lock and the store ends fully merged and correct."""
    db = open_store(memtable_capacity=8, compaction="size-tiered")
    keys = np.arange(0, 256, dtype=np.uint64)
    for i in range(0, 256, 8):
        db.put_many(keys[i : i + 8])
    db.flush()
    db.compact()
    db.drain_compaction()
    assert len(db.sstables) == 1
    assert db.get_many(keys).all()
    assert not db.get_many(keys + np.uint64(1000)).any()
    db.close()


def test_flush_at_trigger_boundary_starts_exactly_one_merge():
    """min_runs=4: three flushes stay quiescent, the fourth triggers."""
    db = open_store(
        memtable_capacity=8,
        compaction={"policy": "size-tiered", "min_runs": 4, "max_runs": 4},
    )
    for i in range(3):
        db.put_many(np.arange(i * 8, i * 8 + 8, dtype=np.uint64))
        db.flush()
    db.drain_compaction()
    assert db.compaction_info()["scheduler"]["merges"] == 0
    assert len(db.sstables) == 3
    db.put_many(np.arange(24, 32, dtype=np.uint64))
    db.flush()
    db.drain_compaction()
    assert db.compaction_info()["scheduler"]["merges"] == 1
    assert len(db.sstables) == 1
    db.close()


def test_compaction_info_reports_layout_and_pending():
    db = open_store(memtable_capacity=8)  # manual store still inspects
    for i in range(3):
        db.put_many(np.arange(i * 8, i * 8 + 8, dtype=np.uint64))
        db.flush()
    info = db.compaction_info()
    assert info["policy"] == {"policy": "manual", "params": {}}
    assert info["scheduler"] is None
    assert info["pending"] is False  # manual stores never auto-trigger
    assert sum(entry["runs"] for entry in info["levels"]) == 3
    db.close()
