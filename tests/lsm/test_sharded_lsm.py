"""ShardedLsmDB: sharding the engine must not change any answer.

The exactness ladder, mirroring ``tests/core/test_shard.py`` one layer up:

* ``get_many`` / ``scan_nonempty_many`` / ``scan`` answers are bit-identical
  to an unsharded :class:`LsmDB` fed the same operation stream (reads
  resolve exactly; the partitioner routes each key to exactly one shard);
* the merged :class:`IOStats` equals the per-shard sum (counter merging is
  order-free), and with one shard equals the unsharded stats *exactly*;
* filter-level *maybe* paths stay sound: never a false negative.

Plus the batched write path: ``put_many`` reproduces the scalar ``put``
loop's run layout for distinct keys, and the vectorized ``compact`` keeps
newest-wins/tombstone semantics.
"""

import numpy as np
import pytest

from repro.lsm import IOStats, LsmDB, ShardedLsmDB, SpecPolicy
from repro.lsm.memtable import TOMBSTONE, MemTable

U64 = (1 << 64) - 1
CAPACITY = 1 << 11


def make_policy():
    return SpecPolicy("bloomrf", bits_per_key=16, max_range=1 << 20)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(17)
    keys = rng.integers(0, 1 << 64, 16_000, dtype=np.uint64)
    deleted = keys[:800]
    probes = np.concatenate(
        [keys[::4], rng.integers(0, 1 << 64, 3_000, dtype=np.uint64)]
    )
    lo = rng.integers(0, 1 << 63, 1_500, dtype=np.uint64)
    width = np.uint64(1) << rng.integers(4, 26, 1_500, dtype=np.uint64)
    bounds = np.stack([lo, np.minimum(lo + width, np.uint64(U64))], axis=1)
    return keys, deleted, probes, bounds


def apply_workload(db, keys, deleted):
    db.put_many(keys)
    db.delete_many(deleted)
    return db


@pytest.fixture(scope="module")
def reference(workload):
    keys, deleted, _, _ = workload
    return apply_workload(
        LsmDB(policy=make_policy(), memtable_capacity=CAPACITY), keys, deleted
    )


@pytest.mark.parametrize("partition", ["hash", "range"])
@pytest.mark.parametrize("num_shards", [1, 4])
class TestExactnessLadder:
    @pytest.fixture
    def sharded(self, workload, num_shards, partition):
        keys, deleted, _, _ = workload
        with apply_workload(
            ShardedLsmDB(
                policy=make_policy(),
                num_shards=num_shards,
                partition=partition,
                memtable_capacity=CAPACITY,
            ),
            keys,
            deleted,
        ) as db:
            yield db

    def test_get_many_equals_unsharded(self, sharded, reference, workload):
        _, _, probes, _ = workload
        assert np.array_equal(
            sharded.get_many(probes), reference.get_many(probes)
        )

    def test_scan_nonempty_many_equals_unsharded(
        self, sharded, reference, workload
    ):
        _, _, _, bounds = workload
        assert np.array_equal(
            sharded.scan_nonempty_many(bounds),
            reference.scan_nonempty_many(bounds),
        )

    def test_scalar_reads_route_to_owning_shard(self, sharded, workload):
        keys, deleted, _, _ = workload
        live = keys[1_000]
        assert sharded.get(int(live)) == (int(live) not in set(deleted.tolist()))
        assert not sharded.get(int(deleted[0]))
        assert sharded.scan_nonempty(int(live), int(live))

    def test_scan_merges_shards_in_key_order(self, sharded, reference):
        lo, hi = 1 << 40, (1 << 40) + (1 << 56)
        assert sharded.scan(lo, hi) == reference.scan(lo, hi)
        assert sharded.scan(0, U64, limit=64) == reference.scan(0, U64, limit=64)

    def test_merged_stats_equal_per_shard_sum(self, sharded, workload):
        _, _, probes, bounds = workload
        sharded.reset_stats()
        sharded.get_many(probes)
        sharded.scan_nonempty_many(bounds)
        merged = sharded.stats
        total = IOStats.merged([shard.stats for shard in sharded.shards])
        assert merged.counters() == total.counters()
        assert merged.filter_probes > 0

    def test_may_contain_is_sound(self, sharded, workload):
        keys, _, _, bounds = workload
        # A filter cannot un-insert: every written key (even later-deleted
        # ones) must answer maybe-present.
        assert sharded.may_contain_many(keys[:2_000]).all()
        truth = sharded.scan_nonempty_many(bounds)
        maybe = sharded.scan_may_contain(bounds)
        assert not np.any(truth & ~maybe)


class TestSingleShardStatsIdentity:
    def test_one_shard_reproduces_unsharded_accounting(self, workload):
        keys, deleted, probes, bounds = workload
        reference = apply_workload(
            LsmDB(policy=make_policy(), memtable_capacity=CAPACITY), keys, deleted
        )
        reference.reset_stats()
        ref_get = reference.get_many(probes)
        ref_scan = reference.scan_nonempty_many(bounds)
        ref_stats = reference.reset_stats()
        with apply_workload(
            ShardedLsmDB(
                policy=make_policy(),
                num_shards=1,
                memtable_capacity=CAPACITY,
            ),
            keys,
            deleted,
        ) as single:
            single.reset_stats()
            assert np.array_equal(single.get_many(probes), ref_get)
            assert np.array_equal(single.scan_nonempty_many(bounds), ref_scan)
            # One shard receives the exact unsharded operation stream, so
            # even the probe-level accounting is identical, not just summed.
            assert single.stats.counters() == ref_stats.counters()


class TestShardedWrites:
    def test_keys_land_on_owning_shard_only(self, workload):
        keys, _, _, _ = workload
        with ShardedLsmDB(
            policy=make_policy(), num_shards=4, memtable_capacity=CAPACITY
        ) as db:
            db.put_many(keys)
            owner = db.shard_of_many(keys)
            unique = np.unique(keys).size
            assert db.num_keys == unique
            for s, shard in enumerate(db.shards):
                routed = np.unique(keys[owner == s]).size
                assert shard.num_keys == routed

    def test_flush_and_compact_fan_out(self, workload):
        keys, deleted, probes, _ = workload
        with apply_workload(
            ShardedLsmDB(
                policy=make_policy(), num_shards=3, memtable_capacity=CAPACITY
            ),
            keys,
            deleted,
        ) as db:
            before = db.get_many(probes)
            db.flush()
            assert all(len(s.memtable) == 0 for s in db.shards)
            db.compact()
            assert all(len(s.sstables) <= 1 for s in db.shards)
            # Compaction drops deleted versions but changes no answer.
            assert np.array_equal(db.get_many(probes), before)
            assert not db.get(int(deleted[0]))

    def test_values_round_trip_through_shards(self):
        with ShardedLsmDB(
            policy=make_policy(),
            num_shards=3,
            memtable_capacity=64,
            store_values=True,
        ) as db:
            keys = np.arange(0, 500, dtype=np.uint64) * np.uint64(1 << 50)
            values = [f"v{i}".encode() for i in range(keys.size)]
            db.put_many(keys, values)
            for i in (0, 123, 499):
                assert db.get_value(int(keys[i])) == values[i]
            db.put(int(keys[7]), b"overwritten")
            assert db.get_value(int(keys[7])) == b"overwritten"
            assert db.scan(int(keys[3]), int(keys[3]))[0][1] == values[3]

    def test_misaligned_values_rejected(self):
        with ShardedLsmDB(policy=make_policy(), num_shards=2) as db:
            with pytest.raises(ValueError, match="align"):
                db.put_many(np.arange(3, dtype=np.uint64), [b"x"])

    def test_empty_batches_are_noops(self):
        with ShardedLsmDB(policy=make_policy(), num_shards=2) as db:
            db.put_many(np.array([], dtype=np.uint64))
            db.delete_many(np.array([], dtype=np.uint64))
            assert db.get_many(np.array([], dtype=np.uint64)).size == 0
            assert (
                db.scan_nonempty_many(np.empty((0, 2), dtype=np.uint64)).size == 0
            )
            assert db.num_keys == 0

    def test_validation_matches_unsharded(self):
        with ShardedLsmDB(policy=make_policy(), num_shards=2) as db:
            with pytest.raises(ValueError):
                db.put_many(np.array([-1], dtype=np.int64))
            with pytest.raises(ValueError):
                db.scan_nonempty_many(np.array([[5, 4]], dtype=np.uint64))
            with pytest.raises(ValueError):
                db.scan_nonempty(9, 3)

    def test_close_is_idempotent_and_reopens(self):
        db = ShardedLsmDB(policy=make_policy(), num_shards=3)
        db.put_many(np.arange(5_000, dtype=np.uint64))
        db.close()
        db.close()
        assert db.get_many(np.arange(100, dtype=np.uint64)).all()
        db.close()


class TestBatchedWritePath:
    def test_put_many_layout_identical_to_scalar_loop(self):
        rng = np.random.default_rng(23)
        keys = rng.integers(0, 1 << 64, 9_000, dtype=np.uint64)
        scalar = LsmDB(policy=make_policy(), memtable_capacity=1024)
        for key in keys:
            scalar.put(int(key))
        batched = LsmDB(policy=make_policy(), memtable_capacity=1024)
        batched.put_many(keys)
        assert len(scalar.sstables) == len(batched.sstables)
        for a, b in zip(scalar.sstables, batched.sstables, strict=True):
            assert np.array_equal(a.keys, b.keys)
            assert a.filter_block == b.filter_block  # filters bit-identical

    def test_put_many_duplicates_newest_wins(self):
        db = LsmDB(
            policy=make_policy(), memtable_capacity=8, store_values=True
        )
        keys = np.array([1, 2, 1, 3, 1], dtype=np.uint64)
        db.put_many(keys, [b"a", b"b", b"c", b"d", b"e"])
        assert db.get_value(1) == b"e"
        assert db.get_value(2) == b"b"

    def test_delete_many_tombstones(self):
        db = LsmDB(policy=make_policy(), memtable_capacity=512)
        db.put_many(np.arange(2_000, dtype=np.uint64))
        db.delete_many(np.arange(0, 2_000, 2, dtype=np.uint64))
        assert not db.get(100)
        assert db.get(101)

    def test_memtable_put_many_matches_scalar(self):
        scalar, batched = MemTable(100), MemTable(100)
        keys = np.array([5, 1, 5, 9], dtype=np.uint64)
        values = [b"a", b"b", b"c", b"d"]
        for k, v in zip(keys, values, strict=True):
            scalar.put(int(k), v)
        batched.put_many(keys, values)
        assert scalar.drain_sorted()[0].tolist() == [1, 5, 9]
        assert batched.get(5) == b"c"
        batched.delete_many(np.array([1], dtype=np.uint64))
        assert batched.get(1) is TOMBSTONE
        with pytest.raises(ValueError, match="align"):
            batched.put_many(keys, [b"x"])

    def test_compact_merges_values_and_drops_tombstones(self):
        db = LsmDB(
            policy=make_policy(), memtable_capacity=4, store_values=True
        )
        db.put_many(
            np.array([10, 20, 30, 40], dtype=np.uint64),
            [b"old10", b"old20", b"old30", b"old40"],
        )
        db.put(20, b"new20")
        db.delete(30)
        db.compact()
        assert len(db.sstables) == 1
        assert db.get_value(20) == b"new20"
        assert db.get_value(10) == b"old10"
        assert db.get_value(30) is None
        assert db.num_keys == 3

    def test_compact_to_empty(self):
        db = LsmDB(policy=make_policy(), memtable_capacity=4)
        db.put_many(np.arange(8, dtype=np.uint64))
        db.delete_many(np.arange(8, dtype=np.uint64))
        db.compact()
        assert db.sstables == []
        assert not db.get(3)


class TestOnDiskLadder:
    """The persistence rung: a saved-and-reopened on-disk store (sharded or
    not) answers bit-identically to the in-memory unsharded reference —
    closing and reopening must not change a single answer."""

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_reopened_store_matches_in_memory_reference(
        self, tmp_path, workload, reference, num_shards
    ):
        from repro.api import FilterSpec, open_store

        keys, deleted, probes, bounds = workload
        spec = FilterSpec("bloomrf", {"bits_per_key": 16, "max_range": 1 << 20})
        db = open_store(
            path=tmp_path / "db",
            filter=spec,
            shards=num_shards,
            partition="hash",
            memtable_capacity=CAPACITY,
        )
        apply_workload(db, keys, deleted)
        db.close()
        with open_store(path=tmp_path / "db") as reopened:
            assert np.array_equal(
                reopened.get_many(probes), reference.get_many(probes)
            )
            assert np.array_equal(
                reopened.scan_nonempty_many(bounds),
                reference.scan_nonempty_many(bounds),
            )
            lo, hi = 1 << 40, (1 << 40) + (1 << 56)
            assert reopened.scan(lo, hi) == reference.scan(lo, hi)


class TestIOStatsMerge:
    def test_iadd_and_merged(self):
        a = IOStats(filter_probes=3, blocks_read=2, io_wait_s=0.5)
        b = IOStats(filter_probes=5, filter_positives=1, io_wait_s=0.25)
        a += b
        assert a.filter_probes == 8
        assert a.blocks_read == 2
        assert a.io_wait_s == 0.75
        total = IOStats.merged([a, b])
        assert total.filter_probes == 13
        assert b.filter_probes == 5  # inputs untouched
        assert total.counters()["filter_probes"] == 13
