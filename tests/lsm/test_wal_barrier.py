"""The WAL ack barrier: ``commit_barrier()`` and seq-based accounting.

Under ``wal_sync="batch"``, ``commit()`` only fsyncs when the group-commit
threshold trips — an acknowledgement sent after a bare ``commit()`` can
ride ahead of durability.  ``commit_barrier()`` is the fence: it returns
only once an fsync covers every record appended before the call, from any
thread (the leader's fsync covers followers), and is free when coverage
already exists.  The multi-writer tests pin the exact accounting the old
single-writer ``_pending_ops`` counter got wrong under contention.
"""

import threading

import numpy as np
import pytest

from repro.api import FilterSpec, open_store
from repro.lsm.wal import WAL_NAME, WriteAheadLog, read_wal
from repro.testing import FaultInjector, InjectedCrash

SPEC = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})


def fresh_wal(tmp_path, **kw):
    return WriteAheadLog.create(tmp_path / WAL_NAME, seal="cafebabe", **kw)


class TestBarrier:
    def test_batch_barrier_forces_covering_fsync(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="batch", group_commit=100)
        seq = 0
        for i in range(5):
            seq = wal.append_put(np.array([i], dtype=np.uint64))
        assert wal.fsyncs == 0 and wal.pending_ops == 5
        wal.commit_barrier(seq)
        assert wal.fsyncs == 1
        assert wal.pending_ops == 0
        assert wal.synced_seq >= seq == 5
        wal.close()
        assert wal.fsyncs == 1  # close found nothing left to sync

    def test_barrier_defaults_to_latest_append(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="batch", group_commit=100)
        wal.append_put(np.arange(3, dtype=np.uint64))
        wal.commit_barrier()
        assert wal.synced_seq == wal.last_seq == 3
        wal.close()

    def test_satisfied_barrier_is_free(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="batch", group_commit=100)
        seq = wal.append_put(np.arange(4, dtype=np.uint64))
        wal.commit_barrier(seq)
        for _ in range(5):
            wal.commit_barrier(seq)  # already covered: no extra fsync
        assert wal.fsyncs == 1
        wal.close()

    def test_off_mode_is_a_noop_by_contract(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="off")
        seq = wal.append_put(np.arange(8, dtype=np.uint64))
        wal.commit_barrier(seq)
        wal.close()
        assert wal.fsyncs == 0

    def test_always_mode_barrier_covers_uncommitted_tail(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="always")
        seq = wal.append_put(np.array([1], dtype=np.uint64))
        wal.commit_barrier(seq)  # append alone is not yet synced
        assert wal.fsyncs == 1 and wal.pending_ops == 0
        wal.close()

    def test_group_commit_threshold_unchanged_by_seq_accounting(
        self, tmp_path
    ):
        # The historical contract: 25 single-op commits at group_commit=10
        # fsync at ops 10 and 20, close picks up the 5-op tail.
        wal = fresh_wal(tmp_path, sync="batch", group_commit=10)
        for i in range(25):
            wal.append_put(np.array([i], dtype=np.uint64))
            wal.commit()
        assert wal.fsyncs == 2
        wal.close()
        assert wal.fsyncs == 3

    def test_rotation_satisfies_outstanding_barriers(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="batch", group_commit=100)
        seq = wal.append_put(np.arange(6, dtype=np.uint64))
        wal.reset(epoch=1)  # records now live in durable runs
        before = wal.fsyncs
        wal.commit_barrier(seq)  # rotation already covered this seq
        assert wal.fsyncs == before
        assert wal.pending_ops == 0
        # seqs stay monotonic across rotation: new appends extend them
        assert wal.append_put(np.array([9], dtype=np.uint64)) == seq + 1
        wal.close()

    def test_info_reports_pending_ops(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="batch", group_commit=100)
        wal.append_put(np.arange(3, dtype=np.uint64))
        assert wal.info()["pending_ops"] == 3
        wal.commit_barrier()
        assert wal.info()["pending_ops"] == 0
        wal.close()


class TestBarrierThreads:
    def test_concurrent_append_barrier_hammer_is_exact(self, tmp_path):
        """Many writers appending and fencing concurrently: accounting
        stays exact (the old reset-to-zero pending counter lost updates
        appended between an fsync and its counter reset) and every record
        lands intact."""
        wal = fresh_wal(tmp_path, sync="batch", group_commit=8)
        n_threads, per_thread = 6, 50
        gate = threading.Barrier(n_threads)
        failures = []

        def writer(tid):
            try:
                gate.wait()
                for i in range(per_thread):
                    seq = wal.append_put(
                        np.array([tid * 1000 + i], dtype=np.uint64)
                    )
                    wal.commit_barrier(seq)
                    assert wal.synced_seq >= seq
            except Exception as exc:  # surfaced below
                failures.append((tid, exc))

        threads = [
            threading.Thread(target=writer, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not failures, failures
        total = n_threads * per_thread
        assert wal.num_records == total
        assert wal.last_seq == total
        assert wal.pending_ops == 0
        assert wal.synced_seq == total
        wal.close()
        _, records, _, torn = read_wal(tmp_path / WAL_NAME)
        assert not torn and len(records) == total
        seen = sorted(int(r.keys[0]) for r in records)
        assert seen == sorted(
            tid * 1000 + i
            for tid in range(n_threads)
            for i in range(per_thread)
        )

    def test_leader_fsync_covers_followers(self, tmp_path):
        """Concurrent barriers piggyback: far fewer fsyncs than barriers
        when writers contend (the group-commit leader pattern)."""
        wal = fresh_wal(tmp_path, sync="batch", group_commit=1)
        n_threads, per_thread = 8, 40
        gate = threading.Barrier(n_threads)

        def writer(tid):
            gate.wait()
            for i in range(per_thread):
                seq = wal.append_put(
                    np.array([tid * 100 + i], dtype=np.uint64)
                )
                wal.commit_barrier(seq)

        threads = [
            threading.Thread(target=writer, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert wal.pending_ops == 0
        # Exact count is scheduling-dependent; piggybacking must beat
        # one-fsync-per-barrier whenever any two barriers overlapped, and
        # can never exceed it.
        assert wal.fsyncs <= n_threads * per_thread
        wal.close()


class TestStoreBarrier:
    def test_memory_store_barrier_is_noop(self):
        with open_store() as db:
            db.put(1)
            db.commit_barrier()  # durability is out of scope: must not raise
            assert db.get(1)

    def test_persistent_batch_barrier_syncs_once(self, tmp_path):
        with open_store(
            path=tmp_path / "db", filter=SPEC,
            wal_sync="batch", wal_group_commit=1000,
        ) as db:
            db.put(1)
            before = db.wal_info()["fsyncs"]
            assert db.wal_info()["pending_ops"] == 1
            db.commit_barrier()
            assert db.wal_info()["fsyncs"] == before + 1
            assert db.wal_info()["pending_ops"] == 0
            db.commit_barrier()  # already covered
            assert db.wal_info()["fsyncs"] == before + 1

    def test_sharded_barrier_covers_every_shard(self, tmp_path):
        with open_store(
            path=tmp_path / "db", filter=SPEC, shards=3,
            wal_sync="batch", wal_group_commit=1000,
        ) as db:
            db.put_many(np.arange(64, dtype=np.uint64))
            db.commit_barrier()
            for shard in db.shards:
                assert shard.wal_info()["pending_ops"] == 0


def test_batch_acked_then_killed_write_survives(tmp_path):
    """The satellite's crash-point contract: with a huge group commit, a
    write acked after ``commit_barrier()`` survives a kill at ANY later
    syscall — without the barrier, up to group_commit-1 acked ops could
    sit unsynced when the process dies."""
    for crash_at in (3, 7, 12, 21, 34):
        root = tmp_path / f"crash-{crash_at}"
        db = open_store(
            path=root, filter=SPEC, wal_sync="batch",
            wal_group_commit=10_000, memtable_capacity=1 << 12,
        )
        acked = []
        try:
            with FaultInjector(root, crash_at=crash_at):
                for k in range(300):
                    db.put(k)
                    db.commit_barrier()  # the ack point
                    acked.append(k)
                db.close()
        except InjectedCrash:
            pass  # simulated kill: no flush, no close
        if not acked:
            continue  # crash fired before the first ack
        with open_store(path=root) as db2:
            answers = db2.get_many(np.array(acked, dtype=np.uint64))
            assert answers.all(), (
                f"acked-then-killed write lost at crash point {crash_at}"
            )
