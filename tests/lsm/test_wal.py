"""Unit tests for the write-ahead log (``repro.lsm.wal``).

Record framing round-trips, torn-tail recovery, corruption detection with
file + offset in the message, sync-mode fsync accounting, rotation, and
the store-level replay semantics (group commit, epoch protocol, log-first
acknowledgement ordering).
"""

import os

import numpy as np
import pytest

from repro.api import FilterSpec, open_store
from repro.lsm.wal import (
    WAL_NAME,
    WriteAheadLog,
    read_wal,
)
from repro.serial import SerialError

SPEC = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})


def fresh_wal(tmp_path, **kw):
    return WriteAheadLog.create(
        tmp_path / WAL_NAME, seal="cafebabe", **kw
    )


class TestRecordFraming:
    def test_round_trip_puts_deletes_values(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="off")
        wal.append_put(np.array([1, 2, 3], dtype=np.uint64))
        wal.append_put(
            np.array([7, 8], dtype=np.uint64), [b"seven", b""]
        )
        wal.append_delete(np.array([2], dtype=np.uint64))
        wal.close()
        header, records, _, torn = read_wal(tmp_path / WAL_NAME)
        assert header == {"seal": "cafebabe", "epoch": 0}
        assert not torn
        assert [r.op for r in records] == [3, 1, 2]
        assert records[0].keys.tolist() == [1, 2, 3]
        assert records[0].values is None  # empty values are not stored
        assert records[1].values == [b"seven", b""]
        assert records[2].keys.tolist() == [2]

    def test_all_empty_values_collapse_to_valueless_record(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="off")
        wal.append_put(np.array([4, 5], dtype=np.uint64), [b"", b""])
        wal.close()
        _, records, _, _ = read_wal(tmp_path / WAL_NAME)
        assert records[0].op == 3 and records[0].values is None

    def test_empty_log_reads_empty(self, tmp_path):
        wal = fresh_wal(tmp_path)
        wal.close()
        header, records, valid_end, torn = read_wal(tmp_path / WAL_NAME)
        assert records == [] and not torn
        assert valid_end == (tmp_path / WAL_NAME).stat().st_size


class TestTornTail:
    def make_log(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="off")
        wal.append_put(np.array([10, 11], dtype=np.uint64), [b"a", b"bb"])
        wal.append_delete(np.array([11], dtype=np.uint64))
        wal.close()
        return tmp_path / WAL_NAME

    def test_torn_tail_recovers_prefix_silently(self, tmp_path):
        path = self.make_log(tmp_path)
        blob = path.read_bytes()
        _, full, complete_end, _ = read_wal(path)
        assert len(full) == 2
        # Cut anywhere inside the last record: every prefix that still
        # holds the first complete record must recover exactly it.
        for cut in range(complete_end - 1, complete_end - 9, -1):
            path.write_bytes(blob[:cut])
            header, records, valid_end, torn = read_wal(path)
            assert torn
            assert len(records) == 1
            assert records[0].keys.tolist() == [10, 11]

    def test_attach_truncates_torn_tail(self, tmp_path):
        path = self.make_log(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        header, records, valid_end, torn = read_wal(path)
        assert torn
        WriteAheadLog.attach(
            path,
            seal="cafebabe",
            epoch=0,
            valid_end=valid_end,
            num_records=len(records),
            torn=torn,
        ).close()
        assert path.stat().st_size == valid_end
        _, records2, _, torn2 = read_wal(path)
        assert not torn2 and len(records2) == len(records)

    def test_bit_flip_in_record_names_file_and_offset(self, tmp_path):
        path = self.make_log(tmp_path)
        blob = bytearray(path.read_bytes())
        # Locate the first record: an identical empty log is pure header.
        (tmp_path / "other").mkdir()
        empty = fresh_wal(tmp_path / "other")
        hdr_len = (tmp_path / "other" / WAL_NAME).stat().st_size
        empty.close()
        blob[hdr_len + 12] ^= 0x40  # inside the first record's body
        path.write_bytes(bytes(blob))
        # Non-tail corruption is loud and names both file and offset.
        with pytest.raises(SerialError, match="WAL.brf"):
            read_wal(path)
        with pytest.raises(SerialError, match=f"byte offset {hdr_len}"):
            read_wal(path)

    def test_torn_header_frame_raises(self, tmp_path):
        path = self.make_log(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:8])  # inside the (atomic) header frame
        with pytest.raises(SerialError, match="truncated"):
            read_wal(path)

    def test_garbage_file_raises_bad_magic(self, tmp_path):
        path = tmp_path / WAL_NAME
        path.write_bytes(b"not a log at all")
        with pytest.raises(SerialError, match="bad magic"):
            read_wal(path)


class TestSyncModes:
    def test_always_fsyncs_every_commit(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="always")
        for i in range(5):
            wal.append_put(np.array([i], dtype=np.uint64))
            wal.commit()
        assert wal.fsyncs == 5
        wal.close()

    def test_batch_fsyncs_per_group_commit(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="batch", group_commit=10)
        for i in range(25):
            wal.append_put(np.array([i], dtype=np.uint64))
            wal.commit()
        assert wal.fsyncs == 2  # at ops 10 and 20; 5 pending
        wal.close()  # close syncs the pending tail
        assert wal.fsyncs == 3

    def test_off_never_fsyncs(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="off")
        for i in range(50):
            wal.append_put(np.array([i], dtype=np.uint64))
            wal.commit()
        wal.close()
        assert wal.fsyncs == 0

    def test_invalid_mode_and_group_commit_raise(self, tmp_path):
        with pytest.raises(ValueError, match="wal_sync"):
            fresh_wal(tmp_path, sync="sometimes")
        with pytest.raises(ValueError, match="wal_group_commit"):
            fresh_wal(tmp_path, group_commit=0)


class TestRotation:
    def test_reset_truncates_and_bumps_epoch(self, tmp_path):
        wal = fresh_wal(tmp_path, sync="off")
        wal.append_put(np.arange(100, dtype=np.uint64))
        assert wal.num_records == 1
        wal.reset(7)
        assert wal.num_records == 0 and wal.epoch == 7
        header, records, _, _ = read_wal(tmp_path / WAL_NAME)
        assert header["epoch"] == 7 and records == []
        # appends continue against the rotated file
        wal.append_delete(np.array([1], dtype=np.uint64))
        wal.close()
        _, records, _, _ = read_wal(tmp_path / WAL_NAME)
        assert len(records) == 1


class TestStoreIntegration:
    def test_scalar_put_is_logged_before_the_memtable(self, tmp_path):
        with open_store(
            path=tmp_path / "db", filter=SPEC, store_values=True
        ) as db:
            db.put(42, b"answer")
            _, records, _, _ = read_wal(tmp_path / "db" / WAL_NAME)
            assert records[-1].keys.tolist() == [42]
            assert records[-1].values == [b"answer"]

    def test_wal_sync_always_fsyncs_per_call(self, tmp_path):
        with open_store(
            path=tmp_path / "db", filter=SPEC, wal_sync="always"
        ) as db:
            for i in range(4):
                db.put(i)
            assert db.wal_info()["fsyncs"] == 4

    def test_wal_sync_off_is_persisted_and_checked(self, tmp_path):
        with open_store(
            path=tmp_path / "db", filter=SPEC, wal_sync="off"
        ) as db:
            db.put(1)
        with open_store(path=tmp_path / "db") as db:  # default = persisted
            assert db.wal_info()["sync"] == "off"
        with pytest.raises(ValueError, match="wal_sync"):
            open_store(path=tmp_path / "db", wal_sync="always")

    def test_bad_wal_sync_value_rejected_up_front(self, tmp_path):
        with pytest.raises(ValueError, match="wal_sync"):
            open_store(path=tmp_path / "db", wal_sync="banana")
        with pytest.raises(ValueError, match="wal_group_commit"):
            open_store(path=tmp_path / "db", wal_group_commit=0)

    def test_flush_rotates_every_shard_log(self, tmp_path):
        with open_store(
            path=tmp_path / "db", filter=SPEC, shards=4,
            memtable_capacity=64,
        ) as db:
            db.put_many(np.arange(500, dtype=np.uint64))
            db.flush()
            assert db.wal_info()["records"] == 0
            for shard in db.shards:
                assert shard.wal_info()["records"] == 0

    def test_replay_matches_oracle_after_hard_drop(self, tmp_path):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 1 << 20, 300, dtype=np.uint64)
        db = open_store(
            path=tmp_path / "db", filter=SPEC, memtable_capacity=128,
            store_values=True,
        )
        values = [b"v%d" % int(k) for k in keys]
        db.put_many(keys, values)
        dead = keys[:50]
        db.delete_many(dead)
        oracle = {int(k): b"v%d" % int(k) for k in keys}
        for k in dead:
            oracle.pop(int(k), None)
        del db  # simulated kill: no close, no flush
        with open_store(path=tmp_path / "db") as db2:
            for k in set(keys.tolist()):
                assert db2.get_value(int(k)) == oracle.get(int(k))

    def test_replay_overflowing_memtable_flushes_on_reopen(self, tmp_path):
        db = open_store(
            path=tmp_path / "db", filter=SPEC, memtable_capacity=32
        )
        # land exactly at capacity without tripping the interior flush
        db.put_many(np.arange(31, dtype=np.uint64))
        db.put(31)
        del db
        with open_store(path=tmp_path / "db") as db2:
            assert db2.get_many(np.arange(32, dtype=np.uint64)).all()

    def test_missing_wal_on_reopen_raises(self, tmp_path):
        with open_store(path=tmp_path / "db", filter=SPEC) as db:
            db.put(1)
        os.unlink(tmp_path / "db" / WAL_NAME)
        with pytest.raises(SerialError, match="missing its write-ahead log"):
            open_store(path=tmp_path / "db")

    def test_second_reopen_is_deterministic(self, tmp_path):
        """Replay is idempotent: reopening twice (replay, drop, replay)
        yields identical answers and identical probe accounting."""
        db = open_store(
            path=tmp_path / "db", filter=SPEC, memtable_capacity=64,
            store_values=True,
        )
        db.put_many(
            np.arange(0, 400, 3, dtype=np.uint64),
            [b"x%d" % i for i in range(134)],
        )
        db.delete_many(np.arange(0, 90, 9, dtype=np.uint64))
        del db

        probes = np.arange(0, 420, dtype=np.uint64)
        snapshots = []
        for _ in range(2):
            store = open_store(path=tmp_path / "db")
            answers = store.get_many(probes)
            counters = {  # drop timings + the private lock; counters only
                k: v
                for k, v in vars(store.stats).items()
                if not k.endswith("_s") and not k.startswith("_")
            }
            snapshots.append((answers, counters))
            # drop without close: the second open replays the same log
            del store
        assert (snapshots[0][0] == snapshots[1][0]).all()
        assert snapshots[0][1] == snapshots[1][1]
