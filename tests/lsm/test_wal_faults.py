"""Crash-point fault injection: zero acknowledged-write loss.

The suite drives a deterministic mixed workload (batched puts with values,
batched deletes, scalar ops, explicit flush and compact) against a fresh
persistent store while :class:`repro.testing.FaultInjector` arms a crash
on the N-th durability-relevant syscall (``os.write`` / ``os.fsync`` /
``os.replace`` under the store root).  After the simulated kill the store
is reopened and checked against an oracle built from the acknowledged
operations only:

* every key whose last acknowledged op was a put answers positively (with
  its exact value when values are stored);
* every key whose last acknowledged op was a delete answers negatively;
* keys touched by the single in-flight operation may land on either side
  (the op was never acknowledged), but must match either the pre-op or
  the post-op state — never garbage;
* a second reopen returns bit-identical answers and probe counters
  (recovery is idempotent, not destructive).

Crash points are sampled per configuration from the dry-run syscall count
so coverage spreads over WAL appends, fsyncs, SST writes, manifest delta
appends, and manifest/WAL rotation replaces.  ``REPRO_CRASH_POINTS``
(default 34 → 6 configs × 34 = 204 points ≥ the 200-point acceptance
floor) and ``REPRO_CRASH_SEED`` (default 0; CI randomizes nightly)
control volume and placement.
"""

import os
import random
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.api import FilterSpec, open_store
from repro.testing import FaultInjector, InjectedCrash

N_POINTS = int(os.environ.get("REPRO_CRASH_POINTS", "34"))
SEED = int(os.environ.get("REPRO_CRASH_SEED", "0"))

SPECS = {
    "bloomrf": FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12}),
    "bloom": FilterSpec("bloom", {"bits_per_key": 10}),
    "none": FilterSpec("none", {}),
}

CONFIGS = [
    (kind, shards) for kind in ("bloomrf", "bloom", "none") for shards in (1, 4)
]


def _workload(rng):
    """A deterministic ~30-op mixed script over a small keyspace.

    Yields ``(op, keys, values)`` tuples; small batches keep individual
    ops cheap while still crossing memtable-flush and compaction
    boundaries (memtable_capacity=32)."""
    live = set()
    ops = []
    for step in range(30):
        roll = rng.random()
        if roll < 0.45:
            n = rng.randrange(1, 9)
            keys = np.array(
                sorted(rng.sample(range(512), n)), dtype=np.uint64
            )
            values = [b"v%d.%d" % (step, int(k)) for k in keys]
            ops.append(("put_many", keys, values))
            live.update(keys.tolist())
        elif roll < 0.65 and live:
            n = rng.randrange(1, min(6, len(live)) + 1)
            keys = np.array(
                sorted(rng.sample(sorted(live), n)), dtype=np.uint64
            )
            ops.append(("delete_many", keys, None))
            live.difference_update(keys.tolist())
        elif roll < 0.80:
            key = rng.randrange(512)
            ops.append(("put", np.array([key], dtype=np.uint64),
                        [b"s%d.%d" % (step, key)]))
            live.add(key)
        elif roll < 0.90 and live:
            key = rng.choice(sorted(live))
            ops.append(("delete", np.array([key], dtype=np.uint64), None))
            live.discard(key)
        elif roll < 0.96:
            ops.append(("flush", None, None))
        else:
            ops.append(("compact", None, None))
    return ops


def _apply(db, op, keys, values, store_values):
    if op == "put_many":
        db.put_many(keys, values if store_values else None)
    elif op == "delete_many":
        db.delete_many(keys)
    elif op == "put":
        db.put(int(keys[0]), values[0] if store_values else b"")
    elif op == "delete":
        db.delete(int(keys[0]))
    elif op == "flush":
        db.flush()
    elif op == "compact":
        db.compact()


def _oracle_update(oracle, op, keys, values, store_values):
    if op in ("put_many", "put"):
        for i, k in enumerate(keys.tolist()):
            oracle[k] = values[i] if store_values else b""
    elif op in ("delete_many", "delete"):
        for k in keys.tolist():
            oracle.pop(k, None)


def _abandon(db):
    """Drop a store the way a killed process would: release worker
    threads (they are not state) but skip every flush/close path."""
    pool = getattr(db, "_pool", None)
    if pool is not None:
        pool.close()


def _open(root, kind, shards, store_values):
    return open_store(
        path=root,
        filter=SPECS[kind],
        shards=shards,
        memtable_capacity=32,
        store_values=store_values,
        wal_sync="batch",
        wal_group_commit=4,
    )


def _run_until_crash(root, kind, shards, store_values, ops, crash_at, rng):
    """Run the workload (and the final close) with a crash armed at
    syscall ``crash_at``, counted from after store creation.

    Returns ``(acked_ops, in_flight)`` where ``in_flight`` is the op that
    was executing when the crash fired (None if it fired inside close(),
    where every op was already acknowledged).
    """
    db = _open(root, kind, shards, store_values)
    acked = []
    current = None
    try:
        with FaultInjector(root, crash_at=crash_at, rng=rng):
            for op in ops:
                current = op
                _apply(db, *op, store_values)
                acked.append(op)
            current = None
            db.close()
    except InjectedCrash:
        _abandon(db)
        return acked, current
    return acked, None


def _check_recovered(root, acked, in_flight, store_values):
    """Reopen and assert the acknowledged-write oracle, twice."""
    oracle = {}
    for op in acked:
        _oracle_update(oracle, *op, store_values)
    # Keys the un-acked op touched may be pre- or post-op.
    loose = set()
    post = dict(oracle)
    if in_flight is not None:
        _oracle_update(post, *in_flight, store_values)
        if in_flight[1] is not None:
            loose = set(in_flight[1].tolist())

    probes = np.arange(512, dtype=np.uint64)
    snapshots = []
    for attempt in range(2):
        db = open_store(path=root)
        answers = db.get_many(probes)
        for k in range(512):
            if k in loose:
                # Either side of the in-flight op is acceptable, but the
                # answer must be one of the two — a filter may still
                # false-positive, so only assert the no-false-negative
                # direction for keys present in either state.
                if k in oracle or k in post:
                    if not (k in oracle and k in post):
                        continue  # present in one state: either answer ok
                    assert answers[k], f"lost acked key {k}"
                continue
            if k in oracle:
                assert answers[k], f"lost acknowledged key {k}"
                if store_values:
                    assert db.get_value(k) == oracle[k], (
                        f"acknowledged value for key {k} corrupted"
                    )
        counters = {
            key: val
            for key, val in vars(db.stats).items()
            if not key.endswith("_s") and not key.startswith("_")
        }
        snapshots.append((answers, counters))
        if attempt == 0:
            _abandon(db)  # second pass replays the same state again
        else:
            db.close()
    assert (snapshots[0][0] == snapshots[1][0]).all(), (
        "recovery is not idempotent: answers changed between reopens"
    )
    assert snapshots[0][1] == snapshots[1][1], (
        "recovery is not idempotent: probe counters changed between reopens"
    )


@pytest.mark.parametrize("kind,shards", CONFIGS)
def test_zero_acked_write_loss_across_crash_points(kind, shards, tmp_path):
    store_values = shards == 1  # value checks on the unsharded engine
    rng = random.Random(SEED * 1009 + hash((kind, shards)) % 100003)
    ops = _workload(random.Random(SEED * 31 + shards))

    # Dry run: count the durability-relevant syscalls of creation, the
    # workload, and close separately, so crash points can be sampled
    # exclusively from the armed (post-creation) window — every sampled
    # point then actually fires.
    dry_root = tmp_path / "dry"
    with FaultInjector(dry_root) as counter:
        db = _open(dry_root, kind, shards, store_values)
        created = counter.count
        for op in ops:
            _apply(db, *op, store_values)
        db.close()
    armed = counter.count - created
    assert armed > 40, f"workload too small to probe ({armed} syscalls)"

    points = sorted(rng.sample(range(1, armed + 1), min(N_POINTS, armed)))
    for crash_at in points:
        root = tmp_path / f"crash-{crash_at}"
        torn = random.Random(rng.randrange(1 << 30))
        acked, in_flight = _run_until_crash(
            root, kind, shards, store_values, ops, crash_at, torn
        )
        if in_flight is None:
            # Crash point landed in close(); everything was acked.
            assert len(acked) == len(ops)
        _check_recovered(root, acked, in_flight, store_values)


def test_real_process_kill_preserves_acked_writes(tmp_path):
    """End-to-end: a child process appends keys, logging each ack OUTSIDE
    the store root, then dies via ``os._exit(137)`` mid-workload.  The
    parent reopens the store and asserts every logged ack survived."""
    root = tmp_path / "db"
    ack_log = tmp_path / "acks.log"  # outside root: its writes pass through
    script = textwrap.dedent(
        f"""
        import os, numpy as np
        from repro.api import FilterSpec, open_store
        from repro.testing import FaultInjector

        db = open_store(
            path={str(root)!r},
            filter=FilterSpec("bloomrf", {{"bits_per_key": 14, "max_range": 4096}}),
            memtable_capacity=16,
            wal_sync="always",
        )
        log = open({str(ack_log)!r}, "a")
        with FaultInjector({str(root)!r}, crash_at=60, mode="exit"):
            for k in range(500):
                db.put(k)
                log.write(f"{{k}}\\n")
                log.flush()
        """
    )
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 137, proc.stderr
    acked = [int(line) for line in ack_log.read_text().split()]
    assert acked, "child crashed before acknowledging anything"
    with open_store(path=root) as db:
        answers = db.get_many(np.array(acked, dtype=np.uint64))
        assert answers.all(), "a write acknowledged before kill -9 was lost"
