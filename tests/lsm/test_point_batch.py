"""Batched point reads through the LSM stack: get_many / may_contain_many.

The batch paths must be *indistinguishable* from the scalar ones: identical
answers, identical filter-probe counts and outcome classification, identical
block-read/I/O-wait charges — asserted here across every filter policy and
against a hypothesis-driven reference model.  Union-based compaction
(``merge_handles`` + prebuilt filter blocks) is covered at the bottom.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm import (
    IOStats,
    LsmDB,
    SimulatedDevice,
    SpecPolicy,
    SSTable,
    policy_by_name,
)

U64 = (1 << 64) - 1


def build_db(policy, n_keys=6_000, num_sstables=4, seed=17):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 1 << 48, n_keys, dtype=np.uint64))
    db = LsmDB(policy=policy)
    db.bulk_load(rng.permutation(keys), num_sstables=num_sstables)
    return db, keys


def mixed_lookups(keys, seed=3, n_present=200, n_absent=400):
    rng = np.random.default_rng(seed)
    present = keys[rng.integers(0, keys.size, n_present)]
    absent = rng.integers(0, 1 << 64, n_absent, dtype=np.uint64)
    lookups = np.concatenate([present, absent])
    return lookups[rng.permutation(lookups.size)]


class TestGetManyMatchesScalar:
    @pytest.mark.parametrize(
        "policy_name", ["bloomrf", "bloomrf-basic", "bloom", "rosetta", "surf", "none"]
    )
    def test_answers_and_accounting_identical(self, policy_name):
        db, keys = build_db(policy_by_name(policy_name, 16, 1 << 16))
        lookups = mixed_lookups(keys)
        db.reset_stats()
        scalar = np.array([db.get(int(key)) for key in lookups])
        scalar_stats = db.reset_stats()
        batch = db.get_many(lookups)
        batch_stats = db.reset_stats()
        assert np.array_equal(batch, scalar)
        assert batch_stats.filter_probes == scalar_stats.filter_probes
        assert (
            batch_stats.filter_false_positives
            == scalar_stats.filter_false_positives
        )
        assert (
            batch_stats.filter_true_positives
            == scalar_stats.filter_true_positives
        )
        assert batch_stats.blocks_read == scalar_stats.blocks_read
        assert batch_stats.io_wait_s == pytest.approx(scalar_stats.io_wait_s)

    def test_memtable_and_tombstones_settle_before_runs(self):
        db = LsmDB(
            policy=SpecPolicy("bloomrf", bits_per_key=14),
            memtable_capacity=1 << 10,
            store_values=True,
        )
        for key in range(100):
            db.put(key, b"v")
        db.flush()
        db.delete(7)          # tombstone buffered in the memtable
        db.put(3, b"fresh")   # live overwrite buffered in the memtable
        lookups = np.array([3, 7, 50, 100, 101], dtype=np.uint64)
        batch = db.get_many(lookups)
        scalar = np.array([db.get(int(key)) for key in lookups])
        assert np.array_equal(batch, scalar)
        assert batch.tolist() == [True, False, True, False, False]
        # Keys settled by the memtable never probe the runs.
        db.reset_stats()
        db.get_many(np.array([3, 7], dtype=np.uint64))
        assert db.stats.filter_probes == 0

    def test_flushed_tombstone_shadows_older_run(self):
        db = LsmDB(policy=SpecPolicy("bloomrf", bits_per_key=14), store_values=True)
        db.put(42, b"x")
        db.flush()
        db.delete(42)
        db.flush()
        assert db.get_many(np.array([42], dtype=np.uint64)).tolist() == [False]

    def test_empty_batch_and_empty_db(self):
        db = LsmDB(policy=SpecPolicy("none"))
        assert db.get_many(np.array([], dtype=np.uint64)).shape == (0,)
        assert db.get_many(np.array([5], dtype=np.uint64)).tolist() == [False]

    def test_rejects_negative_and_misshaped_keys(self):
        db = LsmDB(policy=SpecPolicy("none"))
        with pytest.raises(ValueError):
            db.get_many(np.array([-3], dtype=np.int64))
        with pytest.raises(ValueError):
            db.get_many(np.array([[1, 2]], dtype=np.uint64))
        with pytest.raises(TypeError):
            db.get_many(np.array([1.5]))

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "flush"]),
                st.integers(min_value=0, max_value=40),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_reference_model_property(self, operations):
        """get_many == looped get across arbitrary put/delete/flush runs."""
        db = LsmDB(
            policy=SpecPolicy("bloomrf", bits_per_key=12),
            memtable_capacity=16,
            store_values=True,
        )
        model: dict[int, bytes] = {}
        for op, key in operations:
            if op == "put":
                db.put(key, b"v")
                model[key] = b"v"
            elif op == "delete":
                db.delete(key)
                model.pop(key, None)
            else:
                db.flush()
        probes = np.arange(41, dtype=np.uint64)
        batch = db.get_many(probes)
        assert batch.tolist() == [key in model for key in range(41)]
        assert np.array_equal(
            batch, np.array([db.get(int(key)) for key in probes])
        )


class TestMayContainMany:
    def test_sound_superset_of_get_many(self):
        db, keys = build_db(SpecPolicy("bloomrf", bits_per_key=16))
        lookups = mixed_lookups(keys)
        may = db.may_contain_many(lookups)
        truth = db.get_many(lookups)
        assert np.all(may[truth]), "may-contain must never miss a present key"

    def test_charges_no_io(self):
        db, keys = build_db(SpecPolicy("bloomrf", bits_per_key=16))
        db.reset_stats()
        db.may_contain_many(mixed_lookups(keys))
        stats = db.reset_stats()
        assert stats.blocks_read == 0 and stats.io_wait_s == 0.0
        assert stats.filter_probes > 0

    def test_probes_every_run_for_every_key(self):
        db, keys = build_db(SpecPolicy("bloomrf", bits_per_key=16), num_sstables=5)
        db.reset_stats()
        db.may_contain_many(keys[:100])
        assert db.stats.filter_probes == 100 * 5

    def test_sees_memtable_including_tombstones(self):
        db = LsmDB(policy=SpecPolicy("bloomrf", bits_per_key=16), memtable_capacity=64)
        db.put(1_000)
        db.delete(2_000)  # a filter cannot un-insert: tombstones still "may"
        got = db.may_contain_many(np.array([1_000, 2_000, 3_000], dtype=np.uint64))
        assert got.tolist() == [True, True, False]


class TestSSTablePointBatch:
    def make_sst(self, policy=None):
        keys = np.arange(0, 40_000, 7, dtype=np.uint64)
        return SSTable(keys, policy=policy or SpecPolicy("bloomrf", bits_per_key=16)), keys

    def test_get_many_matches_scalar_get(self):
        sst, keys = self.make_sst()
        rng = np.random.default_rng(2)
        lookups = np.concatenate(
            [keys[:200], rng.integers(0, 1 << 64, 300, dtype=np.uint64)]
        )
        device = SimulatedDevice()
        scalar_stats = IOStats()
        expected = [sst.get(int(key), scalar_stats, device)[:1] for key in lookups]
        batch_stats = IOStats()
        found, tombstone = sst.get_many(lookups, batch_stats, device)
        assert found.tolist() == [e[0] for e in expected]
        assert not tombstone.any()
        assert batch_stats.filter_probes == scalar_stats.filter_probes
        assert batch_stats.blocks_read == scalar_stats.blocks_read
        assert (
            batch_stats.filter_false_positives
            == scalar_stats.filter_false_positives
        )

    def test_get_many_reports_tombstones(self):
        keys = np.array([10, 20, 30], dtype=np.uint64)
        sst = SSTable(
            keys,
            policy=SpecPolicy("bloomrf", bits_per_key=14),
            tombstones=np.array([False, True, False]),
        )
        found, tombstone = sst.get_many(
            keys, IOStats(), SimulatedDevice()
        )
        assert found.all()
        assert tombstone.tolist() == [False, True, False]

    def test_probe_filter_points_many_accounting(self):
        sst, keys = self.make_sst()
        stats = IOStats()
        positive = sst.probe_filter_points_many(keys[:50], stats)
        assert positive.all()  # inserted keys can never be missed
        assert stats.filter_probes == 50
        assert stats.filter_true_positives == 50
        assert stats.blocks_read == 0

    def test_empty_key_batch(self):
        sst, _ = self.make_sst()
        stats = IOStats()
        found, tombstone = sst.get_many(
            np.array([], dtype=np.uint64), stats, SimulatedDevice()
        )
        assert found.shape == (0,) and tombstone.shape == (0,)
        assert stats.filter_probes == 0


class TestUnionCompaction:
    def equal_run_db(self, policy, runs=4, per_run=1_500):
        """Equal-sized flushes produce same-config filter blocks."""
        db = LsmDB(policy=policy, store_values=True)
        rng = np.random.default_rng(41)
        keys = rng.permutation(
            np.unique(rng.integers(0, 1 << 52, runs * per_run + 4_000, dtype=np.uint64))
        )[: runs * per_run]
        for r in range(runs):
            for key in keys[r * per_run : (r + 1) * per_run].tolist():
                db.put(key, b"v")
            db.flush()
        return db, np.sort(keys)

    @pytest.mark.parametrize(
        "policy",
        [SpecPolicy("bloomrf", bits_per_key=16), SpecPolicy("bloom", bits_per_key=14)],
        ids=["bloomrf", "bloom"],
    )
    def test_compact_unions_same_config_blocks(self, policy):
        db, keys = self.equal_run_db(policy)
        handles = [sst.filter for sst in db.sstables]
        merged = policy.merge_handles(handles)
        assert merged is not None
        db.compact()
        assert len(db.sstables) == 1
        # The compacted run carries the union: same storage words as
        # merging the pre-compaction blocks.
        assert np.array_equal(
            db.sstables[0].filter._filter._bits.words,
            merged._filter._bits.words,
        )
        # And stays sound for every live key.
        assert db.get_many(keys[:2_000]).all()

    def test_merge_handles_refuses_mixed_configs(self):
        policy = SpecPolicy("bloomrf", bits_per_key=16)
        a = policy.build(np.arange(1_000, dtype=np.uint64))
        b = policy.build(np.arange(2_000, dtype=np.uint64))  # different n -> config
        assert policy.merge_handles([a, b]) is None

    def test_compact_falls_back_to_rebuild_on_mixed_runs(self):
        db = LsmDB(policy=SpecPolicy("bloomrf", bits_per_key=16), store_values=True)
        rng = np.random.default_rng(43)
        # Unequal run sizes -> differently tuned configs -> rebuild path.
        for size in (500, 1_500):
            for key in np.unique(
                rng.integers(0, 1 << 40, size, dtype=np.uint64)
            ).tolist():
                db.put(key, b"v")
            db.flush()
        live = sorted(
            {
                int(k)
                for sst in db.sstables
                for k in sst.keys.tolist()
            }
        )
        db.compact()
        assert len(db.sstables) == 1
        probes = np.array(live[:1_000], dtype=np.uint64)
        assert db.get_many(probes).all()

    def test_prebuilt_filter_is_adopted_verbatim(self):
        policy = SpecPolicy("bloomrf", bits_per_key=16)
        keys = np.arange(0, 3_000, 3, dtype=np.uint64)
        handle = policy.build(keys)
        sst = SSTable(keys, policy=policy, prebuilt_filter=handle)
        assert sst.filter is handle
