"""Tests for the LSM substrate: memtable, SSTables, DB, stats accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm import (
    IOStats,
    LsmDB,
    MemTable,
    SimulatedDevice,
    SpecPolicy,
    SSTable,
    policy_by_name,
)

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
U64 = (1 << 64) - 1


class TestMemTable:
    def test_put_and_contains(self):
        mt = MemTable(capacity=4)
        mt.put(10)
        assert mt.contains_point(10)
        assert not mt.contains_point(11)

    def test_is_full(self):
        mt = MemTable(capacity=2)
        mt.put(1)
        assert not mt.is_full
        mt.put(2)
        assert mt.is_full

    @given(st.sets(u64, max_size=100), u64, u64)
    @settings(max_examples=100)
    def test_range_matches_naive(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        mt = MemTable(capacity=1000)
        for key in keys:
            mt.put(key)
        assert mt.contains_range(lo, hi) == any(lo <= k <= hi for k in keys)

    def test_drain_sorted(self):
        mt = MemTable(capacity=10)
        for key in (5, 1, 9, 1):
            mt.put(key)
        keys, values, tombstones = mt.drain_sorted()
        assert list(keys) == [1, 5, 9]
        assert values == [b"", b"", b""]
        assert not tombstones.any()
        assert len(mt) == 0

    def test_values_and_tombstones(self):
        mt = MemTable(capacity=10)
        mt.put(1, b"one")
        mt.put(2, b"two")
        mt.delete(1)
        assert not mt.contains_point(1)
        assert mt.contains_point(2)
        assert mt.get(2) == b"two"
        keys, values, tombstones = mt.drain_sorted()
        assert list(keys) == [1, 2]
        assert list(tombstones) == [True, False]
        assert values[1] == b"two"

    def test_range_skips_tombstones(self):
        mt = MemTable(capacity=10)
        mt.put(5, b"x")
        mt.delete(5)
        assert not mt.contains_range(0, 10)
        mt.put(7, b"y")
        assert mt.contains_range(0, 10)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MemTable(0)


class TestSSTable:
    def make(self, keys=None, policy=None):
        if keys is None:
            keys = np.arange(0, 100_000, 37, dtype=np.uint64)
        return SSTable(keys, policy=policy or SpecPolicy("bloomrf", bits_per_key=14))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SSTable(np.array([3, 1], dtype=np.uint64), policy=SpecPolicy("none"))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SSTable(np.array([], dtype=np.uint64), policy=SpecPolicy("none"))

    def test_block_layout(self):
        sst = self.make()
        # 512-byte values + 8-byte keys in 4096-byte blocks -> 7 per block.
        assert sst.entries_per_block == 4096 // 520
        assert sst.fences.num_blocks == -(-sst.num_keys // sst.entries_per_block)

    def test_get_present_key(self):
        sst = self.make()
        stats, device = IOStats(), SimulatedDevice()
        found, value, dead = sst.get(37, stats, device)
        assert found and not dead
        assert stats.filter_true_positives == 1
        assert stats.blocks_read >= 1
        assert stats.io_wait_s > 0

    def test_get_absent_key_counts_outcome(self):
        sst = self.make()
        stats, device = IOStats(), SimulatedDevice()
        found, value, dead = sst.get(38, stats, device)
        assert not found and value is None
        assert stats.filter_probes == 1
        assert stats.filter_true_negatives + stats.filter_false_positives == 1

    def test_values_and_tombstones(self):
        keys = np.array([10, 20, 30], dtype=np.uint64)
        sst = SSTable(
            keys,
            policy=SpecPolicy("bloomrf", bits_per_key=14),
            values=[b"a", b"b", b"c"],
            tombstones=np.array([False, True, False]),
        )
        stats, device = IOStats(), SimulatedDevice()
        assert sst.get(10, stats, device) == (True, b"a", False)
        assert sst.get(20, stats, device) == (True, None, True)
        assert sst.num_live_keys == 2
        entries = list(sst.entries_in_range(0, 100))
        assert entries == [(10, b"a", False), (20, b"b", True), (30, b"c", False)]

    def test_rejects_misaligned_values(self):
        keys = np.array([1, 2], dtype=np.uint64)
        with pytest.raises(ValueError):
            SSTable(keys, policy=SpecPolicy("none"), values=[b"only-one"])

    def test_scan(self):
        sst = self.make()
        stats, device = IOStats(), SimulatedDevice()
        assert sst.scan(30, 40, stats, device)  # contains 37
        assert not sst.scan(38, 40, stats, device) or True  # FP possible
        assert stats.filter_probes == 2

    def test_build_times_recorded(self):
        sst = self.make()
        assert sst.build_time_s > 0
        assert sst.serialize_time_s >= 0


class TestLsmDB:
    def build_db(self, policy=None, keys=None, num_sstables=4):
        rng = np.random.default_rng(9)
        if keys is None:
            keys = rng.permutation(
                np.unique(rng.integers(0, 1 << 64, 20_000, dtype=np.uint64))
            )
        db = LsmDB(policy=policy or SpecPolicy("bloomrf", bits_per_key=16))
        db.bulk_load(keys, num_sstables=num_sstables)
        return db, np.sort(keys)

    def test_get_reference_model(self):
        db, keys = self.build_db()
        key_set = set(keys.tolist())
        for key in keys[:500]:
            assert db.get(int(key))
        rng = np.random.default_rng(1)
        for probe in rng.integers(0, 1 << 64, 500, dtype=np.uint64):
            assert db.get(int(probe)) == (int(probe) in key_set)

    def test_scan_reference_model(self):
        db, keys = self.build_db()
        rng = np.random.default_rng(2)
        for _ in range(300):
            lo = int(rng.integers(0, 1 << 64, dtype=np.uint64))
            hi = min(lo + int(rng.integers(1, 1 << 40)), U64)
            idx = int(np.searchsorted(keys, np.uint64(lo)))
            truly = idx < keys.size and int(keys[idx]) <= hi
            assert db.scan_nonempty(lo, hi) == truly

    def test_memtable_path(self):
        db = LsmDB(policy=SpecPolicy("bloomrf", bits_per_key=12), memtable_capacity=100)
        for key in range(50):
            db.put(key)
        assert db.get(25)
        assert db.scan_nonempty(20, 30)
        assert not db.sstables  # below flush threshold
        for key in range(50, 150):
            db.put(key)
        assert db.sstables  # flush happened
        assert db.get(25)

    def test_probe_accounting_identity(self):
        db, keys = self.build_db(num_sstables=5)
        db.reset_stats()
        from repro.workloads import empty_range_queries

        queries = empty_range_queries(keys, 200, range_size=64, seed=3)
        for lo, hi in queries:
            assert not db.scan_nonempty(lo, hi)
        # Every query probes every SST's filter exactly once.
        assert db.stats.filter_probes == 200 * 5
        assert db.stats.filter_true_positives == 0
        assert db.stats.fpr <= 0.2

    def test_no_filter_policy_reads_more_blocks(self):
        rng = np.random.default_rng(5)
        keys = np.unique(rng.integers(0, 1 << 64, 10_000, dtype=np.uint64))
        from repro.workloads import empty_point_queries

        probes = empty_point_queries(keys, 300, seed=4)
        blocks = {}
        for name, policy in (
            ("none", SpecPolicy("none")),
            ("bloomrf", SpecPolicy("bloomrf", bits_per_key=16)),
        ):
            db = LsmDB(policy=policy)
            db.bulk_load(keys, num_sstables=4)
            db.reset_stats()
            for probe in probes:
                db.get(int(probe))
            blocks[name] = db.stats.blocks_read
        assert blocks["bloomrf"] < blocks["none"] / 5

    def test_construction_times(self):
        db, _ = self.build_db()
        build, serialize = db.construction_times()
        assert build > 0 and serialize >= 0

    def test_filter_bits_per_key(self):
        db, keys = self.build_db()
        assert db.filter_bits_per_key() == pytest.approx(16, rel=0.2)

    def test_policy_factory(self):
        for name in ("bloomrf", "bloomrf-basic", "bloom", "rosetta", "surf",
                     "prefix-bloom", "none"):
            policy = policy_by_name(name, bits_per_key=12, max_range=1 << 16)
            assert policy.name
        with pytest.raises(ValueError):
            policy_by_name("bogus", 12, 64)

    def test_bulk_load_rejects_zero_sstables(self):
        db = LsmDB()
        with pytest.raises(ValueError):
            db.bulk_load(np.arange(5, dtype=np.uint64), num_sstables=0)


class TestIOStats:
    def test_fpr_definition(self):
        stats = IOStats()
        stats.record_probe(True, False)
        stats.record_probe(False, False)
        stats.record_probe(True, True)
        assert stats.fpr == pytest.approx(0.5)

    def test_merge(self):
        a, b = IOStats(), IOStats()
        a.record_probe(True, False)
        b.record_probe(False, False)
        b.io_wait_s = 1.0
        a.merge(b)
        assert a.filter_probes == 2
        assert a.io_wait_s == 1.0

    def test_breakdown_keys(self):
        assert set(IOStats().breakdown()) == {
            "filter_probe_s",
            "residual_cpu_s",
            "deserialization_s",
            "io_wait_s",
        }

    def test_total_time(self):
        stats = IOStats()
        stats.filter_cpu_s = 1.0
        stats.io_wait_s = 2.0
        assert stats.total_time_s == pytest.approx(3.0)


class TestPolicies:
    @pytest.mark.parametrize(
        "policy",
        [
            SpecPolicy("bloomrf", bits_per_key=14),
            SpecPolicy("bloomrf-basic", bits_per_key=14),
            SpecPolicy("bloom", bits_per_key=14),
            SpecPolicy("rosetta", bits_per_key=14, max_range=1 << 10),
            SpecPolicy("surf", bits_per_key=14),
        ],
        ids=lambda p: p.name,
    )
    def test_policy_soundness(self, policy):
        rng = np.random.default_rng(11)
        keys = np.unique(rng.integers(0, 1 << 64, 3_000, dtype=np.uint64))
        handle = policy.build(keys)
        for key in keys[:300]:
            key = int(key)
            assert handle.probe_point(key)
            assert handle.probe_range(max(0, key - 3), min(U64, key + 3))
        assert handle.size_bits >= 0

    def test_bloomrf_policy_serialization(self):
        policy = SpecPolicy("bloomrf", bits_per_key=14)
        keys = np.arange(0, 5_000, 7, dtype=np.uint64)
        handle = policy.build(keys)
        restored = policy.deserialize(handle.serialize())
        for key in keys[:200]:
            assert restored.probe_point(int(key))


class TestKvSemantics:
    """Values, tombstone deletes, merging scans, compaction — checked
    against a plain-dict reference model."""

    def make_db(self):
        return LsmDB(
            policy=SpecPolicy("bloomrf", bits_per_key=14),
            memtable_capacity=64,
            store_values=True,
        )

    def test_put_get_value(self):
        db = self.make_db()
        db.put(1, b"one")
        db.put(2, b"two")
        assert db.get_value(1) == b"one"
        assert db.get_value(2) == b"two"
        assert db.get_value(3) is None

    def test_overwrite_newest_wins_across_flushes(self):
        db = self.make_db()
        db.put(7, b"old")
        db.flush()
        db.put(7, b"new")
        assert db.get_value(7) == b"new"
        db.flush()
        assert db.get_value(7) == b"new"

    def test_delete_shadows_older_versions(self):
        db = self.make_db()
        db.put(9, b"x")
        db.flush()
        db.delete(9)
        assert db.get_value(9) is None
        assert not db.get(9)
        db.flush()
        assert db.get_value(9) is None

    def test_scan_merges_and_skips_tombstones(self):
        db = self.make_db()
        for key in (10, 20, 30):
            db.put(key, f"v{key}".encode())
        db.flush()
        db.delete(20)
        db.put(25, b"v25")
        got = db.scan(0, 100)
        assert got == [(10, b"v10"), (25, b"v25"), (30, b"v30")]

    def test_scan_limit(self):
        db = self.make_db()
        for key in range(50):
            db.put(key, b"v")
        assert len(db.scan(0, 100, limit=5)) == 5

    def test_scan_nonempty_respects_deletes(self):
        db = self.make_db()
        db.put(42, b"x")
        db.flush()
        assert db.scan_nonempty(40, 45)
        db.delete(42)
        assert not db.scan_nonempty(40, 45)

    def test_compact_drops_tombstones_and_duplicates(self):
        db = self.make_db()
        for key in range(200):
            db.put(key, b"a")
        db.flush()
        for key in range(0, 200, 2):
            db.delete(key)
        for key in range(100, 150):
            db.put(key, b"b")
        db.compact()
        assert len(db.sstables) == 1
        assert db.sstables[0].num_live_keys == db.sstables[0].num_keys
        assert db.get_value(2) is None
        assert db.get_value(101) == b"b"
        assert db.get_value(3) == b"a"

    def test_compact_empty_db(self):
        db = self.make_db()
        db.compact()
        assert db.sstables == []
        db.put(1, b"x")
        db.delete(1)
        db.compact()
        assert db.get_value(1) is None

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "flush"]),
                st.integers(min_value=0, max_value=40),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_reference_model(self, operations):
        db = LsmDB(
            policy=SpecPolicy("bloomrf", bits_per_key=12),
            memtable_capacity=16,
            store_values=True,
        )
        model: dict[int, bytes] = {}
        for op, key in operations:
            if op == "put":
                value = f"v{key}".encode()
                db.put(key, value)
                model[key] = value
            elif op == "delete":
                db.delete(key)
                model.pop(key, None)
            else:
                db.flush()
        for key in range(41):
            assert db.get_value(key) == model.get(key), key
        assert db.scan(0, 40) == sorted(model.items())
        assert db.scan_nonempty(0, 40) == bool(model)


class TestBatchedScans:
    """scan_nonempty_many / scan_may_contain mirror the scalar scan path:
    identical answers and identical filter-stats accounting."""

    def build_db(self, policy, n_keys=6_000, num_sstables=3, seed=21):
        rng = np.random.default_rng(seed)
        keys = np.unique(rng.integers(0, 1 << 48, n_keys, dtype=np.uint64))
        db = LsmDB(policy=policy)
        db.bulk_load(rng.permutation(keys), num_sstables=num_sstables)
        return db, keys

    def mixed_bounds(self, keys, seed=5, n_empty=150, n_pos=50):
        rng = np.random.default_rng(seed)
        lo = rng.integers(0, 1 << 48, n_empty, dtype=np.uint64)
        hi = lo + rng.integers(1, 1 << 16, n_empty, dtype=np.uint64)
        anchors = keys[rng.integers(0, keys.size, n_pos)]
        pad = np.uint64(3)
        pos = np.stack(
            [anchors - np.minimum(anchors, pad), anchors + pad], axis=1
        )
        return np.concatenate([np.stack([lo, hi], axis=1), pos])

    @pytest.mark.parametrize(
        "policy_name", ["bloomrf", "rosetta", "surf", "bloom", "none"]
    )
    def test_batch_matches_scalar_scan(self, policy_name):
        db, keys = self.build_db(policy_by_name(policy_name, 16, 1 << 16))
        bounds = self.mixed_bounds(keys)
        db.reset_stats()
        scalar = np.array(
            [db.scan_nonempty(int(lo), int(hi)) for lo, hi in bounds]
        )
        scalar_stats = db.reset_stats()
        batch = db.scan_nonempty_many(bounds)
        batch_stats = db.reset_stats()
        assert np.array_equal(batch, scalar)
        assert batch_stats.filter_probes == scalar_stats.filter_probes
        assert (
            batch_stats.filter_false_positives
            == scalar_stats.filter_false_positives
        )
        assert batch_stats.blocks_read == scalar_stats.blocks_read

    def test_scan_may_contain_is_sound(self):
        db, keys = self.build_db(SpecPolicy("bloomrf", bits_per_key=16))
        bounds = self.mixed_bounds(keys)
        may = db.scan_may_contain(bounds)
        truth = db.scan_nonempty_many(bounds)
        assert np.all(may[truth]), "may-contain must never miss a non-empty range"

    def test_scan_may_contain_sees_memtable(self):
        db = LsmDB(policy=SpecPolicy("bloomrf", bits_per_key=16), memtable_capacity=64)
        db.put(1000)
        got = db.scan_may_contain(
            np.array([[990, 1010], [2000, 2100]], dtype=np.uint64)
        )
        assert got.tolist() == [True, False]

    def test_empty_batch(self):
        db, _ = self.build_db(SpecPolicy("none"))
        got = db.scan_nonempty_many(np.empty((0, 2), dtype=np.uint64))
        assert got.shape == (0,)
        assert db.scan_may_contain(np.empty((0, 2), dtype=np.uint64)).shape == (0,)

    def test_sstable_scan_many_accounting(self):
        keys = np.arange(0, 4_000, 4, dtype=np.uint64)
        sst = SSTable(keys, policy=SpecPolicy("bloomrf", bits_per_key=16))
        stats = IOStats()
        device = SimulatedDevice()
        bounds = np.array(
            [[0, 10], [1, 3], [4001, 4100], [3996, 3996]], dtype=np.uint64
        )
        got = sst.scan_many(bounds, stats, device)
        expected = [
            sst.scan(int(lo), int(hi), IOStats(), device) for lo, hi in bounds
        ]
        assert got.tolist() == expected
        assert stats.filter_probes == 4

    def test_batch_rejects_inverted_and_negative_bounds(self):
        db, _ = self.build_db(SpecPolicy("none"))
        with pytest.raises(ValueError):
            db.scan_nonempty_many(np.array([[5, 4]], dtype=np.uint64))
        with pytest.raises(ValueError):
            db.scan_may_contain(np.array([[-1, 4]], dtype=np.int64))
        with pytest.raises(ValueError):
            db.scan_nonempty_many(np.array([1, 2, 3], dtype=np.uint64))

    def test_scan_may_contain_charges_no_io(self):
        db, keys = self.build_db(SpecPolicy("bloomrf", bits_per_key=16))
        db.reset_stats()
        db.scan_may_contain(self.mixed_bounds(keys))
        stats = db.reset_stats()
        assert stats.blocks_read == 0 and stats.io_wait_s == 0.0
        assert stats.filter_probes > 0
