"""Crash-point stress for background compaction: merges never lose state.

The same failpoint harness as ``test_wal_faults.py`` — a deterministic
mixed workload under :class:`repro.testing.FaultInjector` — but run
against stores opened with an *eager background compaction policy*, so a
large fraction of the armed syscalls are background merge commits (temp
manifest writes, fsyncs, the atomic ``os.replace``) rather than workload
WAL appends.  A crash can therefore land:

* in the **main thread** mid-op (the WAL durability case, re-checked here
  with merges racing underneath), or
* in a **worker thread** mid-merge-commit — the compaction crash-safety
  contract: reopening must find the *pre*- or *post*-merge run set,
  never a mix, and answer exactly like a store that never merged.

Worker crashes cannot unwind the main thread, so the driver polls the
scheduler's ``last_error`` after every op and treats an
:class:`InjectedCrash` there as the whole-process kill it models: the
workload stops, the store is abandoned without close, and recovery is
checked against the acknowledged-op oracle (background merges move no
logical state, so they never add "loose" keys).

``REPRO_STRESS_POINTS`` / ``REPRO_STRESS_SEED`` control volume and
placement (CI pins the seed on push and randomizes + multiplies nightly).

Every test additionally runs under :class:`repro.testing.LockOrderWatcher`
(the ``lock_watcher`` fixture): all locks the stores create are
instrumented, and the fixture fails the test if the observed acquisition
order ever contains a cycle (a potential deadlock the workload happened
to survive) or if a run list is swapped without the maintenance lock.
"""

import os
import random

import numpy as np
import pytest

from repro.api import FilterSpec, open_store
from repro.testing import FaultInjector, InjectedCrash, LockOrderWatcher


@pytest.fixture
def lock_watcher():
    """Instrument every lock created during the test; assert an acyclic
    acquisition-order graph (and no unlocked run-list swaps) on exit."""
    with LockOrderWatcher() as watcher:
        yield watcher


N_POINTS = int(os.environ.get("REPRO_STRESS_POINTS", "18"))
SEED = int(os.environ.get("REPRO_STRESS_SEED", "0"))

SPEC = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})

# Trigger floors so merges fire every couple of flushes; small windows so
# many distinct merge commits land inside one 30-op workload.
POLICIES = {
    "size-tiered": {"policy": "size-tiered", "min_runs": 2, "max_runs": 4},
    "leveled": {"policy": "leveled", "runs_per_level": 1},
}

CONFIGS = [
    (policy, shards) for policy in ("size-tiered", "leveled") for shards in (1, 4)
]


def _workload(rng):
    """~30 mixed ops over a 512-key space; flush-heavy so merges trigger."""
    live = set()
    ops = []
    for step in range(30):
        roll = rng.random()
        if roll < 0.40:
            n = rng.randrange(4, 12)
            keys = np.array(sorted(rng.sample(range(512), n)), dtype=np.uint64)
            values = [b"v%d.%d" % (step, int(k)) for k in keys]
            ops.append(("put_many", keys, values))
            live.update(keys.tolist())
        elif roll < 0.55 and live:
            n = rng.randrange(1, min(6, len(live)) + 1)
            keys = np.array(sorted(rng.sample(sorted(live), n)), dtype=np.uint64)
            ops.append(("delete_many", keys, None))
            live.difference_update(keys.tolist())
        elif roll < 0.90:
            ops.append(("flush", None, None))
        else:
            ops.append(("compact", None, None))  # manual racing background
    return ops


def _apply(db, op, keys, values):
    if op == "put_many":
        db.put_many(keys, values)
    elif op == "delete_many":
        db.delete_many(keys)
    elif op == "flush":
        db.flush()
    elif op == "compact":
        db.compact()


def _oracle_update(oracle, op, keys, values):
    if op == "put_many":
        for i, k in enumerate(keys.tolist()):
            oracle[k] = values[i]
    elif op == "delete_many":
        for k in keys.tolist():
            oracle.pop(k, None)


def _scheduler_crash(db):
    """The InjectedCrash a background merge died on, if any."""
    scheduler = getattr(db, "_scheduler", None)
    if scheduler is not None and isinstance(scheduler.last_error, InjectedCrash):
        return scheduler.last_error
    return None


def _abandon(db):
    """Drop the store the way a killed process would.

    Worker threads are not state; stopping the scheduler first keeps a
    straggling merge from writing into the directory while the recovery
    store reopens it (its commit, if one completes, is answer-preserving
    either way)."""
    scheduler = getattr(db, "_scheduler", None)
    if scheduler is not None:
        scheduler.close()
    pool = getattr(db, "_pool", None)
    if pool is not None:
        pool.close()


def _open(root, policy, shards, watcher=None):
    db = open_store(
        path=root,
        filter=SPEC,
        shards=shards,
        memtable_capacity=32,
        store_values=True,
        wal_sync="batch",
        wal_group_commit=4,
        compaction=POLICIES[policy],
    )
    if watcher is not None:
        watcher.watch_engine(db)
    return db


def _run_until_crash(root, policy, shards, ops, crash_at, rng, watcher=None):
    """Run the workload with a crash armed at syscall ``crash_at``.

    Returns ``(acked_ops, in_flight)``.  ``in_flight`` is the op running
    when the crash fired in the main thread; a crash that fired inside a
    background merge (or close()) has no in-flight op — merges carry no
    unacknowledged logical state."""
    db = _open(root, policy, shards, watcher)
    acked = []
    current = None
    try:
        with FaultInjector(root, crash_at=crash_at, rng=rng):
            for op in ops:
                current = op
                _apply(db, *op)
                acked.append(op)
                current = None
                crash = _scheduler_crash(db)
                if crash is not None:
                    raise crash  # a worker died mid-merge: stop the world
            db.close()
            crash = _scheduler_crash(db)
            if crash is not None:
                raise crash
    except InjectedCrash:
        _abandon(db)
        return acked, current
    return acked, None


def _check_recovered(root, acked, in_flight):
    """Reopen (twice) and assert the acknowledged-op oracle.

    The reopened store keeps the persisted background policy, so recovery
    itself runs with live compaction — the second reopen doubles as an
    idempotence check on answers with merges enabled."""
    oracle = {}
    for op in acked:
        _oracle_update(oracle, *op)
    loose = set()
    if in_flight is not None and in_flight[1] is not None:
        loose = set(in_flight[1].tolist())

    probes = np.arange(512, dtype=np.uint64)
    snapshots = []
    for attempt in range(2):
        db = open_store(path=root)
        answers = db.get_many(probes)
        for k in range(512):
            if k in loose:
                continue  # the un-acked op: either side is acceptable
            if k in oracle:
                assert answers[k], f"lost acknowledged key {k}"
                assert db.get_value(k) == oracle[k], (
                    f"acknowledged value for key {k} corrupted"
                )
        # The run set must be a consistent pre- or post-merge state: the
        # manifest parsed (open succeeded) and a full merge of whatever
        # runs survived yields exactly the oracle's live key set.
        scan_keys = {int(k) for k, _ in db.scan(0, 511)}
        unacked = scan_keys.symmetric_difference(oracle)
        assert unacked <= loose, (
            f"recovered key set diverges from acked oracle beyond the "
            f"in-flight op: {sorted(unacked - loose)[:8]}"
        )
        snapshots.append(answers)
        _abandon(db) if attempt == 0 else db.close()
    assert (snapshots[0] == snapshots[1]).all(), (
        "recovery is not idempotent: answers changed between reopens"
    )


@pytest.mark.parametrize("policy,shards", CONFIGS)
def test_crash_mid_merge_preserves_acked_state(policy, shards, tmp_path, lock_watcher):
    rng = random.Random(SEED * 2003 + hash((policy, shards)) % 100003)
    ops = _workload(random.Random(SEED * 37 + shards))

    # Dry run: count post-creation syscalls (workload + merges + close) so
    # sampled crash points land in the armed window.  Merge timing makes
    # the count run-to-run noisy; points past a replay's actual count
    # simply never fire, which degrades to a clean-completion check.
    dry_root = tmp_path / "dry"
    with FaultInjector(dry_root) as counter:
        db = _open(dry_root, policy, shards, lock_watcher)
        created = counter.count
        for op in ops:
            _apply(db, *op)
        db.close()
    armed = counter.count - created
    assert armed > 40, f"workload too small to probe ({armed} syscalls)"

    points = sorted(rng.sample(range(1, armed + 1), min(N_POINTS, armed)))
    for crash_at in points:
        root = tmp_path / f"crash-{crash_at}"
        torn = random.Random(rng.randrange(1 << 30))
        acked, in_flight = _run_until_crash(
            root, policy, shards, ops, crash_at, torn, lock_watcher
        )
        _check_recovered(root, acked, in_flight)


def test_merge_commit_crash_is_pre_or_post(tmp_path, lock_watcher):
    """Pin crashes onto the merge-commit window itself: build a store
    whose only remaining work is one background merge, then crash at
    every syscall boundary of that commit.  Each outcome must reopen to
    either the un-merged or the fully-merged run set — identical answers,
    parseable manifest — never a half-committed mix."""
    keys = np.arange(0, 192, dtype=np.uint64)

    # Count the merge's own syscalls: create quiescent runs with manual
    # compaction, then trigger one merge under a counting injector.
    def build(root):
        db = open_store(
            path=root, filter=SPEC, memtable_capacity=64, store_values=True
        )
        for i in range(0, 192, 64):
            db.put_many(keys[i : i + 64], [b"x%d" % k for k in keys[i : i + 64]])
            db.flush()
        return db

    from repro.lsm.compaction import SizeTieredPolicy

    dry = build(tmp_path / "dry")
    assert dry.maybe_compact() is None  # manual store: no policy, no merge
    dry.compaction = SizeTieredPolicy(min_runs=2)  # picker only; no scheduler
    with FaultInjector(tmp_path / "dry") as counter:
        assert dry.maybe_compact() is not None
    merge_syscalls = counter.count
    dry.close()
    assert merge_syscalls > 0

    for crash_at in range(1, merge_syscalls + 1):
        root = tmp_path / f"commit-{crash_at}"
        db = build(root)
        db.compaction = SizeTieredPolicy(min_runs=2)
        pre_runs = len(db.sstables)
        try:
            with FaultInjector(root, crash_at=crash_at):
                db.maybe_compact()
        except InjectedCrash:
            pass
        _abandon(db)
        with open_store(path=root) as back:
            # A width-2 window collapsed to one run, or never committed.
            assert len(back.sstables) in (pre_runs, pre_runs - 1), (
                f"crash at {crash_at} left a mixed run set "
                f"({len(back.sstables)} runs from {pre_runs})"
            )
            assert back.get_many(keys).all()
            assert not back.get_many(keys + np.uint64(4096)).any()
