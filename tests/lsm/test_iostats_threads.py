"""Race-free IOStats hot-path bumps.

``BlockedPayload.block()`` bumps the decompressed-block-cache counters
from whatever thread touches a block — server executor, compaction
worker, shard pool — while the stats object itself is shared through
mmap'd frames.  A bare ``+=`` is a read-modify-write that loses updates
under contention; the locked ``add_cache_hit`` / ``add_cache_miss`` /
``bump`` paths must make many-thread hammering land on EXACT counts.
"""

import threading

from repro.lsm.iostats import IOStats

N_THREADS = 8
PER_THREAD = 5_000


def _hammer(stats, work):
    gate = threading.Barrier(N_THREADS)

    def run():
        gate.wait()
        for _ in range(PER_THREAD):
            work(stats)

    threads = [threading.Thread(target=run) for _ in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
        assert not t.is_alive()


def test_concurrent_cache_bumps_are_exact():
    stats = IOStats()

    def work(s):
        s.add_cache_hit()
        s.add_cache_miss(2)

    _hammer(stats, work)
    total = N_THREADS * PER_THREAD
    assert stats.block_cache_hits == total
    assert stats.block_cache_misses == 2 * total


def test_concurrent_generic_bump_is_exact():
    stats = IOStats()

    def work(s):
        s.bump(blocks_read=1, filter_probes=3)

    _hammer(stats, work)
    total = N_THREADS * PER_THREAD
    assert stats.blocks_read == total
    assert stats.filter_probes == 3 * total


def test_mixed_hot_paths_are_exact():
    """hits, misses, and generic bumps all contend on the same lock."""
    stats = IOStats()

    def work(s):
        s.add_cache_hit(3)
        s.bump(blocks_read=2)
        s.add_cache_miss()

    _hammer(stats, work)
    total = N_THREADS * PER_THREAD
    assert stats.block_cache_hits == 3 * total
    assert stats.block_cache_misses == total
    assert stats.blocks_read == 2 * total


def test_single_threaded_semantics_unchanged():
    """The locked paths are drop-in: same arithmetic, reset() still zeros
    in place, merge() still sums, and the lock never leaks into field
    iteration (counters/vars snapshots)."""
    stats = IOStats()
    stats.add_cache_hit()
    stats.add_cache_miss(4)
    stats.bump(blocks_read=7)
    assert stats.block_cache_hits == 1
    assert stats.block_cache_misses == 4
    assert stats.blocks_read == 7

    other = IOStats()
    other.add_cache_hit(10)
    stats.merge(other)
    assert stats.block_cache_hits == 11

    snapshot = stats.reset()
    assert snapshot.block_cache_hits == 11 and stats.block_cache_hits == 0
    stats.add_cache_hit()  # the lock survives reset
    assert stats.block_cache_hits == 1
    assert "_hot_lock" not in stats.counters()


def test_bumps_continue_through_concurrent_reset():
    """reset() racing hot bumps never corrupts: every update lands either
    before the snapshot or after the zeroing, so snapshot + residual
    equals the exact total."""
    stats = IOStats()
    snapshots = []
    done = threading.Event()

    def resetter():
        while not done.is_set():
            snapshots.append(stats.reset())

    r = threading.Thread(target=resetter)
    r.start()
    try:
        _hammer(stats, lambda s: s.add_cache_hit())
    finally:
        done.set()
        r.join(30)
    total = sum(s.block_cache_hits for s in snapshots) + stats.block_cache_hits
    assert total == N_THREADS * PER_THREAD
