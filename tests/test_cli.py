"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scientific_notation(self):
        args = build_parser().parse_args(
            ["tune", "--keys", "1e6", "--bits-per-key", "14", "--max-range", "1e9"]
        )
        assert args.keys == 1_000_000
        assert args.max_range == 10**9


class TestCommands:
    def test_tune(self, capsys):
        assert main(
            ["tune", "--keys", "100000", "--bits-per-key", "16",
             "--max-range", "1e6"]
        ) == 0
        out = capsys.readouterr().out
        assert "BloomRFConfig" in out
        assert "estimated point FPR" in out

    def test_model(self, capsys):
        assert main(
            ["model", "--keys", "50000", "--bits-per-key", "14",
             "--max-range", "1e4", "--domain-bits", "32"]
        ) == 0
        out = capsys.readouterr().out
        assert "level 32" in out and "level  0" in out

    def test_measure_range(self, capsys):
        assert main(
            ["measure", "--keys", "20000", "--bits-per-key", "16",
             "--range-size", "1e4", "--queries", "300", "--filter", "bloomrf"]
        ) == 0
        out = capsys.readouterr().out
        assert "FPR over 300 empty queries" in out

    def test_measure_point(self, capsys):
        assert main(
            ["measure", "--keys", "20000", "--range-size", "1",
             "--queries", "200", "--filter", "bloom"]
        ) == 0
        assert "point FPR" in capsys.readouterr().out

    def test_build_and_inspect(self, tmp_path, capsys):
        keyfile = tmp_path / "keys.txt"
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 1 << 64, 500, dtype=np.uint64)
        keyfile.write_text("\n".join(str(int(k)) for k in keys))
        output = tmp_path / "filter.bin"
        assert main(["build", str(keyfile), str(output),
                     "--bits-per-key", "14"]) == 0
        assert output.exists()
        assert main(["inspect", str(output)]) == 0
        out = capsys.readouterr().out
        assert "keys inserted: 500" in out

    def test_build_and_inspect_sharded(self, tmp_path, capsys):
        keyfile = tmp_path / "keys.txt"
        keyfile.write_text("\n".join(str(k) for k in range(0, 120_000, 40)))
        output = tmp_path / "sharded.brf"
        assert main(
            ["build", str(keyfile), str(output), "--shards", "4",
             "--partition", "range"]
        ) == 0
        assert main(["inspect", str(output)]) == 0
        out = capsys.readouterr().out
        assert "kind: sharded-bloomrf" in out
        assert "shards: 4 (range partition)" in out
        assert "keys inserted: 3000" in out

    def test_build_and_inspect_bloom(self, tmp_path, capsys):
        keyfile = tmp_path / "keys.txt"
        keyfile.write_text("\n".join(str(k) for k in range(700)))
        output = tmp_path / "bloom.brf"
        assert main(
            ["build", str(keyfile), str(output), "--filter", "bloom"]
        ) == 0
        assert main(["inspect", str(output)]) == 0
        out = capsys.readouterr().out
        assert "kind: bloom" in out
        assert "keys inserted: 700" in out

    def test_build_surf_empty_keyfile_fails_cleanly(self, tmp_path, capsys):
        keyfile = tmp_path / "empty.txt"
        keyfile.write_text("")
        assert main(
            ["build", str(keyfile), str(tmp_path / "s.brf"), "--filter", "surf"]
        ) == 2
        assert "cannot serialize" in capsys.readouterr().out

    def test_build_rejects_bad_shard_combinations(self, tmp_path):
        keyfile = tmp_path / "keys.txt"
        keyfile.write_text("1\n2\n")
        out = tmp_path / "f.brf"
        assert main(["build", str(keyfile), str(out), "--shards", "0"]) == 2
        assert main(
            ["build", str(keyfile), str(out), "--filter", "bloom",
             "--shards", "2"]
        ) == 2

    def test_inspect_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"\x00" * 64)
        assert main(["inspect", str(bad)]) == 2
        assert "bad magic" in capsys.readouterr().out

    def test_measure_all_filters(self, capsys):
        for name in ("rosetta", "surf", "cuckoo"):
            assert main(
                ["measure", "--keys", "5000", "--range-size",
                 "64" if name == "rosetta" else "1",
                 "--queries", "100", "--filter", name]
            ) == 0


class TestStoreCommands:
    def test_init_ingest_query_inspect_round_trip(self, tmp_path, capsys):
        store = tmp_path / "db"
        keyfile = tmp_path / "keys.txt"
        keyfile.write_text("\n".join(str(k) for k in range(0, 3_000, 3)))
        assert main(
            ["store", "init", str(store), "--filter", "bloomrf",
             "--shards", "2", "--partition", "hash",
             "--memtable-capacity", "256"]
        ) == 0
        assert "initialized" in capsys.readouterr().out
        assert main(["store", "ingest", str(store), str(keyfile)]) == 0
        assert "ingested 1000 keys" in capsys.readouterr().out
        assert main(
            ["store", "query", str(store), "--point", "9", "10",
             "--range", "1000", "1001"]
        ) == 0
        out = capsys.readouterr().out
        assert "point 9: present" in out
        assert "point 10: absent" in out
        assert "range [1000, 1001]: empty" in out
        assert "filter probes:" in out
        assert main(["store", "inspect", str(store)]) == 0
        out = capsys.readouterr().out
        assert "engine: sharded-lsm" in out
        assert "shards: 2 (hash partition)" in out
        assert "keys: 1000" in out

    def test_init_unsharded_and_query_nonempty_range(self, tmp_path, capsys):
        store = tmp_path / "flat"
        keyfile = tmp_path / "keys.txt"
        keyfile.write_text("5\n6\n7\n")
        assert main(["store", "init", str(store), "--filter", "bloom"]) == 0
        assert main(["store", "ingest", str(store), str(keyfile)]) == 0
        assert main(
            ["store", "query", str(store), "--range", "0", "100"]
        ) == 0
        assert "non-empty" in capsys.readouterr().out
        assert main(["store", "inspect", str(store)]) == 0
        out = capsys.readouterr().out
        assert "engine: lsm" in out
        assert "FilterSpec('bloom'" in out

    def test_init_compressed_store_round_trip(self, tmp_path, capsys):
        store = tmp_path / "zdb"
        keyfile = tmp_path / "keys.txt"
        keyfile.write_text("\n".join(str(k) for k in range(0, 2_000, 2)))
        assert main(
            ["store", "init", str(store), "--compression", "zlib",
             "--block-bytes", "4096", "--memtable-capacity", "256"]
        ) == 0
        assert "zlib-compressed" in capsys.readouterr().out
        assert main(["store", "ingest", str(store), str(keyfile)]) == 0
        capsys.readouterr()
        assert main(
            ["store", "query", str(store), "--point", "4", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "point 4: present" in out
        assert "point 5: absent" in out
        assert main(["store", "inspect", str(store)]) == 0
        assert "compression: zlib (block_bytes=4096)" in capsys.readouterr().out

    def test_init_block_bytes_requires_compression(self, tmp_path, capsys):
        assert main(
            ["store", "init", str(tmp_path / "db"), "--block-bytes", "1024"]
        ) == 2
        assert "requires --compression" in capsys.readouterr().out

    def test_init_zstd_without_extra_fails_cleanly(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.lsm.blocks as blocks_mod

        monkeypatch.setattr(blocks_mod, "_zstd_module", lambda: None)
        assert main(
            ["store", "init", str(tmp_path / "db"), "--compression", "zstd"]
        ) == 2
        assert "zstandard" in capsys.readouterr().out

    def test_init_twice_fails(self, tmp_path, capsys):
        store = tmp_path / "db"
        assert main(["store", "init", str(store)]) == 0
        capsys.readouterr()
        assert main(["store", "init", str(store)]) == 2
        assert "refusing" in capsys.readouterr().out

    def test_query_without_predicates_fails(self, tmp_path, capsys):
        store = tmp_path / "db"
        assert main(["store", "init", str(store)]) == 0
        assert main(["store", "query", str(store)]) == 2
        assert "nothing to query" in capsys.readouterr().out

    def test_store_commands_surface_serial_errors(self, tmp_path, capsys):
        store = tmp_path / "db"
        assert main(["store", "init", str(store)]) == 0
        manifest = store / "STORE.brf"
        manifest.write_bytes(manifest.read_bytes()[:8])
        for argv in (
            ["store", "inspect", str(store)],
            ["store", "query", str(store), "--point", "1"],
        ):
            capsys.readouterr()
            assert main(argv) == 2
            assert "truncated" in capsys.readouterr().out

    def test_query_keys_parse_exactly_above_2_53(self, tmp_path, capsys):
        """Keys are exact uint64s: the float round-trip of _int_ish would
        silently shift 2**53+1 onto its neighbour."""
        big = (1 << 53) + 1
        store = tmp_path / "db"
        keyfile = tmp_path / "keys.txt"
        keyfile.write_text(f"{big}\n")
        assert main(["store", "init", str(store)]) == 0
        assert main(["store", "ingest", str(store), str(keyfile)]) == 0
        capsys.readouterr()
        assert main(
            ["store", "query", str(store), "--point", str(big), str(big - 1)]
        ) == 0
        out = capsys.readouterr().out
        assert f"point {big}: present" in out
        assert f"point {big - 1}: absent" in out
        # The uint64 domain edge answers cleanly too (no traceback).
        assert main(
            ["store", "query", str(store), "--point", str((1 << 64) - 1)]
        ) == 0
        assert "absent" in capsys.readouterr().out

    def test_query_beyond_uint64_fails_cleanly(self, tmp_path, capsys):
        store = tmp_path / "db"
        assert main(["store", "init", str(store)]) == 0
        capsys.readouterr()
        assert main(["store", "query", str(store), "--point", str(1 << 64)]) == 2
        assert "bad query" in capsys.readouterr().out

    def test_store_ingest_empty_keyfile_is_a_noop(self, tmp_path, capsys):
        store = tmp_path / "db"
        keyfile = tmp_path / "empty.txt"
        keyfile.write_text("")
        assert main(["store", "init", str(store), "--shards", "2"]) == 0
        capsys.readouterr()
        assert main(["store", "ingest", str(store), str(keyfile)]) == 0
        assert "ingested 0 keys" in capsys.readouterr().out

    def test_store_ingest_missing_store_fails(self, tmp_path, capsys):
        keyfile = tmp_path / "keys.txt"
        keyfile.write_text("1\n")
        # An uninitialized path would silently create a store; ingest
        # requires an existing one.
        assert main(
            ["store", "ingest", str(tmp_path / "nope" / "db"), str(keyfile)]
        ) == 2

    def test_store_inspect_reports_wal_state(self, tmp_path, capsys):
        store = tmp_path / "db"
        assert main(
            ["store", "init", str(store), "--wal-sync", "always"]
        ) == 0
        capsys.readouterr()
        assert main(["store", "inspect", str(store)]) == 0
        out = capsys.readouterr().out
        assert "wal: sync=always" in out
        assert "pending records: 0" in out

    def test_store_recover_replays_and_flushes_the_log(self, tmp_path, capsys):
        import numpy as np

        from repro.api import open_store

        store = tmp_path / "db"
        assert main(["store", "init", str(store)]) == 0
        db = open_store(path=store)
        db.put_many(np.arange(200, dtype=np.uint64))
        del db  # crash-drop: the writes live only in the WAL
        capsys.readouterr()
        assert main(["store", "recover", str(store)]) == 0
        out = capsys.readouterr().out
        assert "replayed 1 log records / 200 ops" in out
        assert "200 keys live" in out
        assert "write-ahead log empty" in out
        # recovery persisted the replayed writes into runs
        with open_store(path=store) as db2:
            assert db2.wal_info()["replayed_records"] == 0
            assert db2.get_many(np.arange(200, dtype=np.uint64)).all()

    def test_store_recover_missing_store_fails(self, tmp_path, capsys):
        assert main(["store", "recover", str(tmp_path / "nope")]) == 2
        assert "no store" in capsys.readouterr().out

    def test_store_recover_surfaces_corruption(self, tmp_path, capsys):
        from repro.lsm.wal import WAL_NAME

        store = tmp_path / "db"
        assert main(["store", "init", str(store)]) == 0
        (store / WAL_NAME).write_bytes(b"garbage not a log")
        capsys.readouterr()
        assert main(["store", "recover", str(store)]) == 2
        assert "cannot recover store" in capsys.readouterr().out


class TestStoreCompactionCli:
    """`store compact`, `store init --compaction`, and the per-level
    inspect output (incl. pre-compaction manifest compatibility)."""

    def _ingest_runs(self, tmp_path, store, n_keys=256, extra=()):
        keyfile = tmp_path / "keys.txt"
        keyfile.write_text("\n".join(str(k) for k in range(n_keys)))
        assert main(
            ["store", "init", str(store), "--memtable-capacity", "64", *extra]
        ) == 0
        assert main(["store", "ingest", str(store), str(keyfile)]) == 0

    def test_compact_full_merges_to_one_run(self, tmp_path, capsys):
        store = tmp_path / "db"
        self._ingest_runs(tmp_path, store)
        capsys.readouterr()
        assert main(["store", "compact", str(store)]) == 0
        out = capsys.readouterr().out
        assert "-> 1 runs" in out
        assert main(
            ["store", "query", str(store), "--point", "7", "999"]
        ) == 0
        out = capsys.readouterr().out
        assert "point 7: present" in out and "point 999: absent" in out

    def test_one_shot_policy_pass_leaves_stored_policy_manual(
        self, tmp_path, capsys
    ):
        from repro.lsm.store import read_store_manifest

        store = tmp_path / "db"
        # 256 sequential keys / capacity 64 -> four uniform runs: exactly
        # a default size-tiered window (min_runs=4, equal sizes).
        self._ingest_runs(tmp_path, store)
        capsys.readouterr()
        assert main(
            ["store", "compact", str(store), "--policy", "size-tiered"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 merge(s)" in out and "-> 1 runs" in out
        # The pass was one-shot: the merge commit rewrote the manifest,
        # and it must still carry the *stored* (manual) policy.
        manifest = read_store_manifest(store)
        assert manifest["geometry"]["compaction"] == {
            "policy": "manual", "params": {},
        }
        assert main(["store", "inspect", str(store)]) == 0
        assert "compaction: manual" in capsys.readouterr().out

    def test_stored_policy_pass_on_manual_store_hints(self, tmp_path, capsys):
        store = tmp_path / "db"
        self._ingest_runs(tmp_path, store)
        capsys.readouterr()
        assert main(
            ["store", "compact", str(store), "--policy", "stored"]
        ) == 0
        assert "stored policy is manual" in capsys.readouterr().out

    def test_init_with_background_policy_and_inspect_levels(
        self, tmp_path, capsys
    ):
        store = tmp_path / "db"
        self._ingest_runs(
            tmp_path, store, extra=["--compaction", "size-tiered"]
        )
        capsys.readouterr()
        assert main(["store", "inspect", str(store)]) == 0
        out = capsys.readouterr().out
        assert "compaction: size-tiered" in out
        assert "min_runs=4" in out
        assert "level " in out
        assert "scheduler: 1 worker(s)" in out
        # stored-policy pass over the reopened store drains any leftover
        # eligible window without changing the persisted policy
        assert main(
            ["store", "compact", str(store), "--policy", "stored"]
        ) == 0
        assert main(["store", "inspect", str(store)]) == 0
        assert "compaction: size-tiered" in capsys.readouterr().out

    def test_compact_missing_store_fails(self, tmp_path, capsys):
        assert main(["store", "compact", str(tmp_path / "nope")]) == 2
        assert "no store" in capsys.readouterr().out

    def test_inspect_handles_pre_compaction_manifest(self, tmp_path, capsys):
        """Manifests written before the compaction subsystem lack the
        geometry field entirely; inspect must read them as manual, not
        fail with a KeyError."""
        from repro.serial import KIND_STORE, pack_frame, unpack_frame

        store = tmp_path / "db"
        assert main(["store", "init", str(store)]) == 0
        manifest = store / "STORE.brf"
        header, _ = unpack_frame(manifest.read_bytes(), expect_kind=KIND_STORE)
        assert header["geometry"].pop("compaction") is not None
        manifest.write_bytes(pack_frame(KIND_STORE, header))
        capsys.readouterr()
        assert main(["store", "inspect", str(store)]) == 0
        out = capsys.readouterr().out
        assert "compaction: manual" in out
        # and the same old store still accepts a foreground pass
        assert main(["store", "compact", str(store)]) == 0
