"""Shared fixtures: deterministic key sets and query helpers."""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.workloads import empty_point_queries, empty_range_queries, uniform_keys

U64_MAX = (1 << 64) - 1


def pytest_addoption(parser):
    """Keep the pyproject timeout keys valid when pytest-timeout is absent.

    CI installs the plugin (it is in the ``[test]`` extra) and enforces
    the per-test timeout; a bare local environment without it would
    otherwise warn about the unknown ``timeout`` / ``timeout_method``
    ini options on every run.  Registering them here (only when the
    plugin is missing — double registration errors) makes the config
    portable: same pyproject, enforcement wherever the plugin exists.
    """
    if importlib.util.find_spec("pytest_timeout") is None:
        parser.addini("timeout", "per-test timeout in seconds (no-op fallback)")
        parser.addini("timeout_method", "timeout method (no-op fallback)")


@pytest.fixture(scope="session")
def small_keys() -> np.ndarray:
    """5k distinct uniform 64-bit keys, sorted."""
    return uniform_keys(5_000, seed=101)


@pytest.fixture(scope="session")
def medium_keys() -> np.ndarray:
    """40k distinct uniform 64-bit keys, sorted."""
    return uniform_keys(40_000, seed=202)


@pytest.fixture(scope="session")
def absent_points(medium_keys) -> np.ndarray:
    """2k keys guaranteed absent from ``medium_keys``."""
    return empty_point_queries(medium_keys, 2_000, seed=303)


@pytest.fixture(scope="session")
def empty_ranges_small(medium_keys):
    """1k empty ranges of size 64."""
    return empty_range_queries(medium_keys, 1_000, range_size=64, seed=404)


@pytest.fixture(scope="session")
def empty_ranges_large(medium_keys):
    """1k empty ranges of size 10^6."""
    return empty_range_queries(medium_keys, 1_000, range_size=10**6, seed=505)


def assert_no_false_negatives_point(filt_contains, keys, limit: int = 2_000) -> None:
    """Every inserted key must test positive."""
    for key in keys[:limit]:
        assert filt_contains(int(key)), f"false negative for key {int(key)}"


def assert_no_false_negatives_range(
    filt_range, keys, width_left: int, width_right: int, limit: int = 1_000
) -> None:
    """Every range containing an inserted key must test positive."""
    for key in keys[:limit]:
        key = int(key)
        lo = max(0, key - width_left)
        hi = min(U64_MAX, key + width_right)
        assert filt_range(lo, hi), f"false negative for range around {key}"
