"""The shared partition/dispatch layer both sharded structures ride on."""

import threading

import numpy as np
import pytest

from repro.parallel import (
    HashPartitioner,
    RangePartitioner,
    ShardPool,
    group_by_owner,
    make_partitioner,
)

U64 = (1 << 64) - 1


class TestMakePartitioner:
    def test_factory_dispatch(self):
        assert isinstance(make_partitioner("hash", 4), HashPartitioner)
        assert isinstance(make_partitioner("range", 4), RangePartitioner)

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError, match="partition"):
            make_partitioner("modulo", 4)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            make_partitioner("hash", 0)
        with pytest.raises(ValueError):
            make_partitioner("range", 512, domain_bits=8)


class TestHashPartitioner:
    def test_owners_in_range_and_deterministic(self):
        part = HashPartitioner(7)
        keys = np.random.default_rng(3).integers(0, 1 << 64, 5_000, dtype=np.uint64)
        owner = part.owner_of_many(keys)
        assert owner.min() >= 0 and owner.max() < 7
        assert np.array_equal(owner, part.owner_of_many(keys))
        assert part.owner_of(int(keys[0])) == int(owner[0])

    def test_single_partition_short_circuits(self):
        part = HashPartitioner(1)
        keys = np.arange(100, dtype=np.uint64)
        assert not part.owner_of_many(keys).any()

    def test_split_bounds_fans_out_to_every_shard(self):
        part = HashPartitioner(3)
        bounds = np.array([[0, 10], [20, 30]], dtype=np.uint64)
        jobs = part.split_bounds(bounds)
        assert [s for s, _, _ in jobs] == [0, 1, 2]
        for _, idx, clipped in jobs:
            assert np.array_equal(idx, np.arange(2))
            assert np.array_equal(clipped, bounds)

    def test_roughly_balanced(self):
        part = HashPartitioner(4)
        keys = np.random.default_rng(5).integers(0, 1 << 64, 40_000, dtype=np.uint64)
        counts = np.bincount(part.owner_of_many(keys), minlength=4)
        assert counts.min() > 0.8 * counts.max()


class TestRangePartitioner:
    def test_boundaries_cover_domain(self):
        part = RangePartitioner(5)
        owner = part.owner_of_many(
            np.array([0, 1, U64 // 2, U64 - 1, U64], dtype=np.uint64)
        )
        assert owner.min() >= 0 and owner.max() <= 4
        assert part.owner_of(0) == 0
        assert part.owner_of(U64) == 4

    def test_partition_ranges_tile_the_domain(self):
        part = RangePartitioner(4, domain_bits=16)
        edges = [part.partition_range(s) for s in range(4)]
        assert edges[0][0] == 0
        assert edges[-1][1] == (1 << 16) - 1
        for (_, hi), (lo, _) in zip(edges, edges[1:], strict=False):
            assert lo == hi + 1

    def test_owner_matches_partition_range(self):
        part = RangePartitioner(3, domain_bits=10)
        for s in range(3):
            lo, hi = part.partition_range(s)
            assert part.owner_of(lo) == s
            assert part.owner_of(hi) == s

    def test_split_bounds_clips_to_overlapping_shards(self):
        part = RangePartitioner(4, domain_bits=16)
        lo1, hi1 = part.partition_range(1)
        # A query strictly inside shard 1 plus one spanning shards 1-2.
        bounds = np.array(
            [[lo1 + 5, lo1 + 10], [hi1 - 3, hi1 + 3]], dtype=np.uint64
        )
        jobs = {s: (idx, clipped) for s, idx, clipped in part.split_bounds(bounds)}
        assert set(jobs) == {1, 2}
        idx1, clipped1 = jobs[1]
        assert np.array_equal(idx1, np.array([0, 1]))
        assert int(clipped1[1, 1]) == hi1  # clipped at shard 1's upper edge
        idx2, clipped2 = jobs[2]
        assert np.array_equal(idx2, np.array([1]))
        assert int(clipped2[0, 0]) == hi1 + 1


class TestGroupByOwner:
    def test_groups_preserve_input_order(self):
        owner = np.array([2, 0, 2, 1, 0], dtype=np.int64)
        groups = dict(group_by_owner(owner))
        assert np.array_equal(groups[0], np.array([1, 4]))
        assert np.array_equal(groups[1], np.array([3]))
        assert np.array_equal(groups[2], np.array([0, 2]))

    def test_scatter_back_reconstructs_batch(self):
        rng = np.random.default_rng(11)
        owner = rng.integers(0, 4, 1_000)
        payload = rng.integers(0, 1 << 32, 1_000, dtype=np.uint64)
        out = np.zeros_like(payload)
        for _s, idx in group_by_owner(owner):
            out[idx] = payload[idx]
        assert np.array_equal(out, payload)


class TestShardPool:
    def test_results_in_job_order(self):
        with ShardPool(max_workers=4) as pool:
            jobs = [(s, s * 10) for s in range(8)]
            out = pool.run(jobs, lambda s, payload: (s, payload))
            assert out == [(s, s * 10) for s in range(8)]

    def test_single_job_runs_inline(self):
        pool = ShardPool(max_workers=2)
        thread_ids = []
        pool.run([(0, None)], lambda s, _: thread_ids.append(threading.get_ident()))
        assert thread_ids == [threading.get_ident()]
        assert not pool.is_open  # no executor was ever created
        pool.close()

    def test_close_is_idempotent_and_reopens(self):
        pool = ShardPool(max_workers=2)
        pool.run([(0, 1), (1, 2)], lambda s, p: p)
        assert pool.is_open
        pool.close()
        pool.close()
        assert not pool.is_open
        assert pool.run([(0, 1), (1, 2)], lambda s, p: p) == [1, 2]
        pool.close()

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ShardPool(max_workers=0)

    def test_worker_exception_propagates(self):
        def boom(s, _):
            raise RuntimeError("shard failed")

        with ShardPool(max_workers=2) as pool:
            with pytest.raises(RuntimeError, match="shard failed"):
                pool.run([(0, None), (1, None)], boom)
