"""Tests for the BloomRF filter: soundness, equivalences, serialization.

The central invariant — approximate membership structures may err only
towards "present" — is tested property-based for both point and range
queries, on basic and advisor-tuned configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloomrf import BloomRF
from repro.core.config import BloomRFConfig

U64 = (1 << 64) - 1
u64 = st.integers(min_value=0, max_value=U64)
u16 = st.integers(min_value=0, max_value=(1 << 16) - 1)


def small_filter(keys, domain_bits=16, delta=4, bits_per_key=12):
    filt = BloomRF.basic(
        n_keys=max(len(keys), 1),
        bits_per_key=bits_per_key,
        domain_bits=domain_bits,
        delta=delta,
    )
    for key in keys:
        filt.insert(key)
    return filt


class TestPointNoFalseNegatives:
    @given(st.sets(u16, min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_small_domain(self, keys):
        filt = small_filter(keys)
        for key in keys:
            assert filt.contains_point(key)

    @given(st.sets(u64, min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_full_domain_basic(self, keys):
        filt = BloomRF.basic(n_keys=len(keys), bits_per_key=10)
        for key in keys:
            filt.insert(key)
        for key in keys:
            assert filt.contains_point(key)

    @given(st.sets(u64, min_size=1, max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_full_domain_tuned(self, keys):
        filt = BloomRF.tuned(n_keys=1000, bits_per_key=16, max_range=1 << 20)
        for key in keys:
            filt.insert(key)
        for key in keys:
            assert filt.contains_point(key)


class TestRangeNoFalseNegatives:
    @given(
        st.sets(u16, min_size=1, max_size=100),
        st.integers(min_value=0, max_value=1 << 12),
        st.integers(min_value=0, max_value=1 << 12),
    )
    @settings(max_examples=200)
    def test_ranges_containing_keys(self, keys, pad_left, pad_right):
        filt = small_filter(keys)
        for key in list(keys)[:20]:
            lo = max(0, key - pad_left)
            hi = min((1 << 16) - 1, key + pad_right)
            assert filt.contains_range(lo, hi)

    @given(st.sets(u16, min_size=1, max_size=150), u16, u16)
    @settings(max_examples=300)
    def test_range_consistent_with_truth(self, keys, a, b):
        """filter says empty => truly empty (the contrapositive of no-FN)."""
        lo, hi = min(a, b), max(a, b)
        filt = small_filter(keys)
        if not filt.contains_range(lo, hi):
            assert not any(lo <= k <= hi for k in keys)

    @given(st.sets(u64, min_size=1, max_size=60), st.integers(0, 1 << 40))
    @settings(max_examples=30, deadline=None)
    def test_tuned_ranges(self, keys, width):
        filt = BloomRF.tuned(n_keys=500, bits_per_key=18, max_range=1 << 30)
        for key in keys:
            filt.insert(key)
        for key in list(keys)[:10]:
            lo = max(0, key - width // 2)
            hi = min(U64, key + width // 2)
            assert filt.contains_range(lo, hi)

    def test_single_point_range(self):
        filt = small_filter({42})
        assert filt.contains_range(42, 42)
        assert not filt.contains_range(50_000, 50_001) or True  # may FP

    def test_whole_domain_range(self):
        filt = small_filter({42})
        assert filt.contains_range(0, (1 << 16) - 1)


class TestVectorizedEquivalence:
    @given(st.lists(u64, min_size=1, max_size=300, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_insert_many_matches_scalar(self, keys):
        a = BloomRF.basic(n_keys=len(keys), bits_per_key=12)
        b = BloomRF.basic(n_keys=len(keys), bits_per_key=12)
        a.insert_many(np.array(keys, dtype=np.uint64))
        for key in keys:
            b.insert(key)
        assert np.array_equal(a.pmhf_bits.words, b.pmhf_bits.words)

    @given(st.lists(u64, min_size=1, max_size=100, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_contains_point_many_matches_scalar(self, keys):
        filt = BloomRF.basic(n_keys=len(keys), bits_per_key=10)
        filt.insert_many(np.array(keys[: len(keys) // 2 + 1], dtype=np.uint64))
        probe = np.array(keys, dtype=np.uint64)
        got = filt.contains_point_many(probe)
        expected = [filt.contains_point(int(k)) for k in probe]
        assert list(got) == expected

    def test_tuned_vectorized_equivalence(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 1 << 64, 2000, dtype=np.uint64)
        a = BloomRF.tuned(n_keys=2000, bits_per_key=16, max_range=1 << 20)
        b = BloomRF.tuned(n_keys=2000, bits_per_key=16, max_range=1 << 20)
        a.insert_many(keys)
        for key in keys:
            b.insert(int(key))
        assert np.array_equal(a.pmhf_bits.words, b.pmhf_bits.words)
        assert list(a.contains_point_many(keys[:50])) == [True] * 50


class TestExactLayer:
    def make(self):
        config = BloomRFConfig(
            domain_bits=16,
            deltas=(4, 4),
            replicas=(1, 1),
            segment_of=(0, 0),
            segment_bits=(2048,),
            exact_level=8,
        )
        return BloomRF(config)

    def test_exact_layer_blocks_foreign_regions(self):
        filt = self.make()
        filt.insert(42)
        # Any key whose level-8 prefix differs is rejected exactly.
        for probe in (256, 1000, 65535):
            assert not filt.contains_point(probe)
        assert not filt.contains_range(4096, 8191)

    def test_exact_layer_no_false_negatives(self):
        filt = self.make()
        for key in (0, 255, 256, 65535):
            filt.insert(key)
            assert filt.contains_point(key)
            assert filt.contains_range(max(0, key - 3), min(65535, key + 3))


class TestDegenerateGuard:
    def test_guard_preserves_soundness(self):
        config = BloomRFConfig.basic(200, 12, domain_bits=16, delta=4)
        config = BloomRFConfig.from_dict({**config.to_dict(), "degenerate_guard": True})
        filt = BloomRF(config)
        keys = list(range(0, 4000, 17))
        for key in keys:
            filt.insert(key)
        for key in keys:
            assert filt.contains_point(key)
            assert filt.contains_range(max(0, key - 5), min(65535, key + 5))

    def test_guard_breaks_degenerate_pileup(self):
        """Sect. 3.2: a degenerate distribution whose keys share the in-word
        offset bits lambda on every layer makes every PMHF set bit lambda of
        its word; the guard's per-group word reversal spreads the offsets."""
        delta = 4
        lam = 0b101
        # Keys with offset bits == lam on every layer, varying group bits.
        keys = []
        for i in range(256):
            key = 0
            for layer in range(4):
                group_bit = (i >> layer) & 1
                key |= ((group_bit << 3) | lam) << (layer * delta)
            keys.append(key)
        keys = sorted(set(keys))

        def offsets(filt):
            word = 1 << (delta - 1)
            out = set()
            for key in keys:
                for pos in filt._iter_positions(key):
                    out.add(pos % word)
            return out

        plain_cfg = BloomRFConfig.basic(len(keys), 8, domain_bits=16, delta=delta)
        plain = BloomRF(plain_cfg)
        guard_cfg = BloomRFConfig.from_dict(
            {**plain_cfg.to_dict(), "degenerate_guard": True}
        )
        guarded = BloomRF(guard_cfg)
        for key in keys:
            plain.insert(key)
            guarded.insert(key)
        for key in keys:
            assert guarded.contains_point(key)
            assert guarded.contains_range(max(0, key - 2), min(65535, key + 2))
        assert offsets(plain) == {lam}, "degenerate keys pile on one offset"
        assert offsets(guarded) == {lam, 7 - lam}, "guard reverses half the words"


class TestSerialization:
    def test_round_trip_basic(self):
        filt = BloomRF.basic(n_keys=500, bits_per_key=10)
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 1 << 64, 500, dtype=np.uint64)
        filt.insert_many(keys)
        restored = BloomRF.from_bytes(filt.to_bytes())
        assert restored.config == filt.config
        assert restored.num_keys == filt.num_keys
        for key in keys[:100]:
            assert restored.contains_point(int(key))

    def test_round_trip_tuned_with_exact_layer(self):
        filt = BloomRF.tuned(n_keys=2000, bits_per_key=16, max_range=1 << 24)
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 1 << 64, 2000, dtype=np.uint64)
        filt.insert_many(keys)
        restored = BloomRF.from_bytes(filt.to_bytes())
        for key in keys[:100]:
            key = int(key)
            assert restored.contains_point(key)
            assert restored.contains_range(max(0, key - 9), min(U64, key + 9))
        probe = [(i * 977 + 13) & U64 for i in range(200)]
        assert [restored.contains_point(p) for p in probe] == [
            filt.contains_point(p) for p in probe
        ]


class TestApiContracts:
    def test_rejects_out_of_domain_keys(self):
        filt = small_filter({1}, domain_bits=16)
        with pytest.raises(ValueError):
            filt.insert(1 << 16)
        with pytest.raises(ValueError):
            filt.contains_point(-1)

    def test_rejects_inverted_range(self):
        filt = small_filter({1})
        with pytest.raises(ValueError):
            filt.contains_range(10, 9)

    def test_len_and_bits_per_key(self):
        filt = BloomRF.basic(n_keys=100, bits_per_key=10)
        assert len(filt) == 0
        assert filt.bits_per_key == float("inf")
        filt.insert(7)
        assert len(filt) == 1
        assert filt.bits_per_key == filt.size_bits

    def test_contains_dunder(self):
        filt = small_filter({99})
        assert 99 in filt

    def test_contains_range_many(self):
        filt = small_filter({100, 5000})
        bounds = np.array([[90, 110], [400, 450], [4999, 5001]], dtype=np.uint64)
        got = filt.contains_range_many(bounds)
        assert got[0] and got[2]


class TestFprSanity:
    def test_point_fpr_tracks_model(self):
        """Measured point FPR within 3x of the analytic estimate."""
        from repro.core.model import basic_point_fpr

        rng = np.random.default_rng(11)
        keys = rng.integers(0, 1 << 64, 20_000, dtype=np.uint64)
        filt = BloomRF.basic(n_keys=20_000, bits_per_key=12)
        filt.insert_many(keys)
        probes = rng.integers(0, 1 << 64, 40_000, dtype=np.uint64)
        measured = float(np.mean(filt.contains_point_many(probes)))
        modeled = basic_point_fpr(
            20_000, filt.size_bits, filt.config.num_layers
        )
        assert measured <= max(3 * modeled, 0.01)

    def test_more_bits_lower_fpr(self):
        rng = np.random.default_rng(12)
        keys = rng.integers(0, 1 << 64, 10_000, dtype=np.uint64)
        probes = rng.integers(0, 1 << 64, 20_000, dtype=np.uint64)
        rates = []
        for bpk in (8, 16):
            filt = BloomRF.basic(n_keys=10_000, bits_per_key=bpk)
            filt.insert_many(keys)
            rates.append(float(np.mean(filt.contains_point_many(probes))))
        assert rates[1] < rates[0]
