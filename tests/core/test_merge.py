"""Filter merging: word-level union == rebuild from the union of inserts.

The contract behind union-based compaction (``LsmDB.compact``) and shard
merging (``ShardedBloomRF.merge``): inserts are deterministic ORs, so
unioning same-config filters is bit-identical to replaying every operand's
insert stream into a fresh filter.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bloom import BloomFilter
from repro.bitarray import BitArray
from repro.core.bloomrf import BloomRF
from repro.core.config import BloomRFConfig


def tuned_config(seed=0x5EED):
    return BloomRF.tuned(
        n_keys=4_000, bits_per_key=16, max_range=1 << 20, seed=seed
    ).config


def basic_config():
    return BloomRFConfig.basic(n_keys=4_000, bits_per_key=14)


CONFIGS = [
    pytest.param(tuned_config, id="tuned-with-exact-level"),
    pytest.param(basic_config, id="basic"),
]


class TestBitArrayUnion:
    def test_union_is_bitwise_or(self):
        a, b = BitArray(256), BitArray(256)
        a.set_bits(np.array([0, 64, 100], dtype=np.uint64))
        b.set_bits(np.array([1, 100, 255], dtype=np.uint64))
        b.union_with(a)
        assert [b.test_bit(i) for i in (0, 1, 64, 100, 255)] == [True] * 5
        assert b.count_ones() == 5
        # The source operand is untouched.
        assert a.count_ones() == 3

    def test_union_rejects_size_mismatch(self):
        with pytest.raises(ValueError):
            BitArray(128).union_with(BitArray(192))


class TestBloomRFMerge:
    @pytest.mark.parametrize("make_config", CONFIGS)
    def test_merge_equals_rebuild_from_union(self, make_config):
        config = make_config()
        rng = np.random.default_rng(7)
        streams = [
            rng.integers(0, 1 << 64, 1_500, dtype=np.uint64) for _ in range(3)
        ]
        parts = []
        for stream in streams:
            filt = BloomRF(config)
            filt.insert_many(stream)
            parts.append(filt)
        merged = BloomRF.merge(parts)
        rebuilt = BloomRF(config)
        rebuilt.insert_many(np.concatenate(streams))
        assert merged._bits == rebuilt._bits
        if config.exact_level is not None:
            assert merged._exact == rebuilt._exact
        assert merged.num_keys == rebuilt.num_keys
        probes = rng.integers(0, 1 << 64, 2_000, dtype=np.uint64)
        assert np.array_equal(
            merged.contains_point_many(probes),
            rebuilt.contains_point_many(probes),
        )

    def test_union_into_accumulates_in_place(self):
        config = basic_config()
        a, b = BloomRF(config), BloomRF(config)
        a.insert_many(np.arange(100, dtype=np.uint64))
        b.insert_many(np.arange(100, 200, dtype=np.uint64))
        out = a.union_into(b)
        assert out is b
        assert b.num_keys == 200
        assert b.contains_point_many(np.arange(200, dtype=np.uint64)).all()

    def test_merge_rejects_config_mismatch(self):
        a = BloomRF(tuned_config())
        b = BloomRF(tuned_config(seed=0xBAD))
        with pytest.raises(ValueError):
            a.union_into(b)
        with pytest.raises(ValueError):
            BloomRF.merge([a, b])

    def test_merge_rejects_empty_list(self):
        with pytest.raises(ValueError):
            BloomRF.merge([])

    def test_merge_of_one_is_a_copy(self):
        filt = BloomRF(basic_config())
        filt.insert_many(np.arange(50, dtype=np.uint64))
        snapshot = filt._bits.words.copy()
        merged = BloomRF.merge([filt])
        assert merged._bits == filt._bits
        merged.insert_many(np.arange(10_000, 10_200, dtype=np.uint64))
        # The merge owns its storage: mutating it leaves the operand alone.
        assert np.array_equal(filt._bits.words, snapshot)

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=(1 << 64) - 1),
                max_size=60,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_rebuild_property(self, streams):
        config = BloomRFConfig.basic(n_keys=64, bits_per_key=12)
        parts = []
        for stream in streams:
            filt = BloomRF(config)
            filt.insert_many(np.array(stream, dtype=np.uint64))
            parts.append(filt)
        merged = BloomRF.merge(parts)
        rebuilt = BloomRF(config)
        rebuilt.insert_many(
            np.array([k for s in streams for k in s], dtype=np.uint64)
        )
        assert merged._bits == rebuilt._bits
        assert merged.num_keys == rebuilt.num_keys


class TestBloomFilterUnion:
    def test_union_equals_rebuild(self):
        a = BloomFilter(n_keys=1_000, bits_per_key=12, seed=3)
        b = BloomFilter(n_keys=1_000, bits_per_key=12, seed=3)
        rebuilt = BloomFilter(n_keys=1_000, bits_per_key=12, seed=3)
        ka = np.arange(0, 500, dtype=np.uint64)
        kb = np.arange(500, 1_000, dtype=np.uint64)
        a.insert_many(ka)
        b.insert_many(kb)
        rebuilt.insert_many(np.concatenate([ka, kb]))
        a.union_into(b)
        assert b._bits == rebuilt._bits
        assert len(b) == len(rebuilt)

    def test_union_rejects_geometry_mismatch(self):
        a = BloomFilter(n_keys=1_000, bits_per_key=12, seed=3)
        b = BloomFilter(n_keys=1_000, bits_per_key=12, seed=4)
        with pytest.raises(ValueError):
            a.union_into(b)
