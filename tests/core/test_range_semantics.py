"""Exhaustive and adversarial range-query semantics tests.

Small domains allow *exhaustive* verification: every query interval against
every filter answer, leaving nothing to sampling.  These tests pin down the
soundness contract far more tightly than the statistical suites.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloomrf import BloomRF
from repro.core.config import BloomRFConfig
from repro.serial import SerialError


class TestExhaustiveSmallDomain:
    """d = 10: all 2^10 keys, every aligned query width, zero sampling."""

    @pytest.fixture(scope="class")
    def filt_and_keys(self):
        rng = np.random.default_rng(77)
        keys = sorted(set(rng.integers(0, 1 << 10, 60).tolist()))
        config = BloomRFConfig(
            domain_bits=10,
            deltas=(4, 3, 3),
            replicas=(1, 1, 2),
            segment_of=(0, 0, 0),
            segment_bits=(1024,),
            exact_level=10,
        )
        filt = BloomRF(config)
        for key in keys:
            filt.insert(key)
        return filt, set(keys)

    def test_every_point(self, filt_and_keys):
        filt, keys = filt_and_keys
        for y in range(1 << 10):
            if y in keys:
                assert filt.contains_point(y), f"false negative at {y}"

    @pytest.mark.parametrize("width", [1, 2, 3, 7, 16, 64, 256, 1024])
    def test_every_range_of_width(self, filt_and_keys, width):
        filt, keys = filt_and_keys
        domain_max = (1 << 10) - 1
        false_positives = empties = 0
        for lo in range(0, (1 << 10) - width + 1, max(1, width // 3)):
            hi = min(lo + width - 1, domain_max)
            answer = filt.contains_range(lo, hi)
            truly = any(lo <= k <= hi for k in keys)
            assert answer or not truly, f"false negative on [{lo},{hi}]"
            if not truly:
                empties += 1
                false_positives += answer
        if empties:
            assert false_positives / empties < 0.6

    def test_exhaustive_fpr_within_band(self, filt_and_keys):
        """Point FPR over the whole domain stays within a sane band."""
        filt, keys = filt_and_keys
        fp = sum(
            filt.contains_point(y) for y in range(1 << 10) if y not in keys
        )
        assert fp / ((1 << 10) - len(keys)) < 0.4


class TestAdjacentBoundaries:
    """Queries ending/starting exactly at keys: the off-by-one hot spots."""

    @given(st.sets(st.integers(min_value=2, max_value=(1 << 16) - 3),
                   min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_one_off_boundaries(self, keys):
        filt = BloomRF.basic(n_keys=len(keys), bits_per_key=14,
                             domain_bits=16, delta=4)
        for key in keys:
            filt.insert(key)
        for key in list(keys)[:25]:
            assert filt.contains_range(key, key)
            assert filt.contains_range(key - 1, key)
            assert filt.contains_range(key, key + 1)
            assert filt.contains_range(key - 1, key + 1)

    def test_domain_extremes(self):
        filt = BloomRF.basic(n_keys=4, bits_per_key=16, domain_bits=16, delta=4)
        for key in (0, 1, (1 << 16) - 2, (1 << 16) - 1):
            filt.insert(key)
        assert filt.contains_point(0)
        assert filt.contains_point((1 << 16) - 1)
        assert filt.contains_range(0, 0)
        assert filt.contains_range((1 << 16) - 1, (1 << 16) - 1)
        assert filt.contains_range(0, (1 << 16) - 1)


class TestDyadicAlignedQueries:
    """Queries that exactly coincide with DIs at each level: the planner's
    single-mask fast path must stay sound."""

    @given(
        st.sets(st.integers(min_value=0, max_value=(1 << 16) - 1),
                min_size=1, max_size=40),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=200)
    def test_aligned_query_consistency(self, keys, level, anchor):
        filt = BloomRF.basic(n_keys=len(keys), bits_per_key=14,
                             domain_bits=16, delta=4)
        for key in keys:
            filt.insert(key)
        prefix = anchor >> level
        lo = prefix << level
        hi = lo + (1 << level) - 1
        answer = filt.contains_range(lo, hi)
        truly = any(lo <= k <= hi for k in keys)
        assert answer or not truly


class TestSerializationFailureInjection:
    """Corrupted filter blocks must fail loudly, never silently mis-answer."""

    def make_blob(self):
        filt = BloomRF.tuned(n_keys=500, bits_per_key=16, max_range=1 << 20)
        rng = np.random.default_rng(3)
        filt.insert_many(rng.integers(0, 1 << 64, 500, dtype=np.uint64))
        return filt.to_bytes()

    def test_truncated_blob_raises(self):
        blob = self.make_blob()
        with pytest.raises(SerialError):
            BloomRF.from_bytes(blob[: len(blob) // 2])

    def test_garbage_header_raises(self):
        blob = self.make_blob()
        with pytest.raises(SerialError):
            BloomRF.from_bytes(b"\xff" * 16 + blob[16:])

    def test_bitflip_in_body_keeps_no_crash(self):
        """A flipped payload bit yields a *different but functioning* filter
        (the format has no checksum, like RocksDB filter blocks)."""
        blob = bytearray(self.make_blob())
        blob[-10] ^= 0x40
        filt = BloomRF.from_bytes(bytes(blob))
        filt.contains_point(12345)
        filt.contains_range(0, 1 << 30)

    def test_empty_filter_round_trip(self):
        filt = BloomRF.basic(n_keys=10, bits_per_key=16)
        restored = BloomRF.from_bytes(filt.to_bytes())
        assert restored.num_keys == 0
        assert not restored.contains_point(42)


class TestCrossFilterAgreementOnTruth:
    """All three PRFs must agree with ground truth on definitive negatives:
    whenever any filter says 'no', reality says 'no'."""

    @given(
        st.sets(st.integers(min_value=0, max_value=(1 << 32) - 1),
                min_size=1, max_size=80),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=1 << 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_filter_contradicts_reality(self, keys, lo, width):
        from repro.baselines import Rosetta, SuRF

        hi = min(lo + width, (1 << 32) - 1)
        if lo > hi:
            lo, hi = hi, lo
        key_arr = np.array(sorted(keys), dtype=np.uint64)
        truly = any(lo <= k <= hi for k in keys)

        brf = BloomRF.basic(n_keys=len(keys), bits_per_key=14,
                            domain_bits=32, delta=7)
        brf.insert_many(key_arr)
        rosetta = Rosetta.tuned(n_keys=len(keys), bits_per_key=14,
                                max_range=max(width, 2), domain_bits=32)
        rosetta.insert_many(key_arr)
        surf = SuRF.from_uint64(key_arr, suffix_mode="real", suffix_bits=8)

        answers = {
            "bloomrf": brf.contains_range(lo, hi),
            "rosetta": rosetta.contains_range(lo, hi),
            "surf": surf.contains_range(lo, hi),
        }
        for name, answer in answers.items():
            assert answer or not truly, (name, lo, hi)
