"""Tests for datatype support (Sect. 8): floats, strings, multi-attribute."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloomrf import BloomRF
from repro.core.types import (
    AttributeSpec,
    FloatBloomRF,
    MultiAttributeBloomRF,
    StringBloomRF,
    float_keys,
    float_to_key,
    key_to_float,
    string_range_keys,
    string_to_point_key,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False)


class TestFloatCodec:
    @given(finite_floats, finite_floats)
    @settings(max_examples=500)
    def test_monotone(self, a, b):
        """phi(x) < phi(y) <=> x < y (the paper's monotone coding)."""
        if a < b:
            assert float_to_key(a) < float_to_key(b)
        elif a > b:
            assert float_to_key(a) > float_to_key(b)
        else:
            assert float_to_key(a) == float_to_key(b)

    @given(finite_floats)
    def test_round_trip(self, value):
        assert key_to_float(float_to_key(value)) == value

    def test_specific_order(self):
        values = [-math.inf, -1e300, -1.5, -0.0, 0.0, 1e-300, 2.5, math.inf]
        keys = [float_to_key(v) for v in values]
        # -0.0 and 0.0 compare equal as floats but have distinct codes;
        # everything else must be strictly increasing.
        assert keys == sorted(keys)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_vectorized_matches_scalar(self, values):
        got = float_keys(np.array(values, dtype=np.float64))
        expected = [float_to_key(v) for v in values]
        assert list(got) == expected

    def test_range_of_one_is_wide_in_code_space(self):
        """Paper Sect. 1: for doubles a range of 1 can be ~2^61 codes."""
        span = float_to_key(1.0) - float_to_key(0.0)
        assert span > 1 << 60


class TestFloatFilter:
    def test_no_false_negatives(self):
        filt = FloatBloomRF.tuned(n_keys=2000, bits_per_key=16)
        rng = np.random.default_rng(4)
        values = rng.normal(0, 100, 2000)
        filt.insert_many(values)
        for v in values[:300]:
            assert filt.contains_point(float(v))
            assert filt.contains_range(float(v) - 1e-3, float(v) + 1e-3)

    def test_negative_and_positive_ranges(self):
        filt = FloatBloomRF.tuned(n_keys=100, bits_per_key=16)
        for v in (-5.0, -1.0, 3.5):
            filt.insert(v)
        assert filt.contains_range(-1.5, -0.5)
        assert filt.contains_range(3.0, 4.0)
        assert filt.contains_range(-10.0, 10.0)

    def test_rejects_inverted_range(self):
        filt = FloatBloomRF.tuned(n_keys=10, bits_per_key=16)
        with pytest.raises(ValueError):
            filt.contains_range(2.0, 1.0)


class TestStringCodec:
    def test_prefix_in_high_bytes(self):
        key = string_to_point_key("AB")
        assert key >> 56 == ord("A")
        assert (key >> 48) & 0xFF == ord("B")

    def test_last_byte_is_hash(self):
        a = string_to_point_key("same-prefix-x")
        b = string_to_point_key("same-prefix-y")
        assert a >> 8 == b >> 8  # 7-byte prefix identical
        # hash byte may or may not collide; length is included in the hash:
        c = string_to_point_key("same-pr")
        assert c >> 8 == a >> 8

    @given(st.text(max_size=30), st.text(max_size=30))
    @settings(max_examples=300)
    def test_range_encoding_brackets_point_encoding(self, a, b):
        lo, hi = sorted([a, b])
        lo_key, hi_key = string_range_keys(lo, hi)
        for probe in (lo, hi):
            point = string_to_point_key(probe)
            # Prefix resolution: the point code of any string in [lo, hi]
            # must be inside the range code interval.
            if lo[:7] <= probe[:7] <= hi[:7]:
                assert lo_key <= point <= hi_key

    def test_bytes_and_str_agree(self):
        assert string_to_point_key("abc") == string_to_point_key(b"abc")


class TestStringFilter:
    def test_no_false_negatives(self):
        words = [f"user{i:04d}@example.com" for i in range(500)]
        filt = StringBloomRF.tuned(n_keys=len(words), bits_per_key=18)
        for word in words:
            filt.insert(word)
        for word in words:
            assert filt.contains_point(word)
        for word in words[:100]:
            assert filt.contains_range(word, word + "~")

    def test_range_lookup_by_prefix(self):
        filt = StringBloomRF.tuned(n_keys=10, bits_per_key=18)
        filt.insert("banana")
        assert filt.contains_range("bana", "banz")


class TestAttributeSpec:
    def test_reduce_keeps_high_bits(self):
        spec = AttributeSpec("a", source_bits=64, target_bits=32)
        assert spec.reduce(0xFFFF_FFFF_0000_0000) == 0xFFFF_FFFF

    def test_reduce_preserves_order(self):
        spec = AttributeSpec("a", source_bits=64, target_bits=16)
        assert spec.reduce(1 << 50) <= spec.reduce(1 << 51)

    def test_reduce_range(self):
        spec = AttributeSpec("a", source_bits=32, target_bits=16)
        lo, hi = spec.reduce_range(0x0001_0000, 0x0003_FFFF)
        assert (lo, hi) == (1, 3)


class TestMultiAttribute:
    def make(self, n=500, seed=0):
        rng = np.random.default_rng(seed)
        run = rng.integers(1, 1000, n, dtype=np.uint64)
        obj = rng.integers(1, 1 << 63, n, dtype=np.uint64)
        spec_a = AttributeSpec("run", source_bits=64, target_bits=32)
        spec_b = AttributeSpec("objectid", source_bits=64, target_bits=32)
        filt = MultiAttributeBloomRF.tuned(
            n_keys=n, bits_per_key=20, spec_a=spec_a, spec_b=spec_b
        )
        filt.insert_many(run, obj)
        return filt, run, obj

    def test_point_no_false_negatives(self):
        filt, run, obj = self.make()
        for a, b in zip(run[:200], obj[:200], strict=True):
            assert filt.contains_point(int(a), int(b))

    def test_a_eq_b_range_no_false_negatives(self):
        filt, run, obj = self.make()
        for a, b in zip(run[:200], obj[:200], strict=True):
            assert filt.contains_a_eq_b_range(int(a), max(0, int(b) - 10), int(b) + 10)

    def test_b_eq_a_range_no_false_negatives(self):
        """The paper's Run<300 AND ObjectID=Const probe shape."""
        filt, run, obj = self.make()
        for a, b in zip(run[:200], obj[:200], strict=True):
            assert filt.contains_b_eq_a_range(int(b), 0, int(a) + 1)

    def test_rejects_oversized_specs(self):
        base = BloomRF.basic(n_keys=10, bits_per_key=10)
        with pytest.raises(ValueError):
            MultiAttributeBloomRF(
                base,
                AttributeSpec("a", target_bits=40),
                AttributeSpec("b", target_bits=40),
            )

    def test_scalar_and_vector_inserts_agree(self):
        spec = AttributeSpec("x", source_bits=64, target_bits=16)
        a = MultiAttributeBloomRF.tuned(50, 20, spec, spec, seed=7)
        b = MultiAttributeBloomRF.tuned(50, 20, spec, spec, seed=7)
        runs = np.arange(50, dtype=np.uint64) << np.uint64(48)
        objs = (np.arange(50, dtype=np.uint64) * 977) << np.uint64(40)
        a.insert_many(runs, objs)
        for r, o in zip(runs, objs, strict=True):
            b.insert(int(r), int(o))
        assert np.array_equal(a.filter.pmhf_bits.words, b.filter.pmhf_bits.words)
