"""ShardedBloomRF: partitioned parallel execution must not change answers.

The exactness ladder the sharding subsystem guarantees, from strongest to
weakest (see the module docstring of :mod:`repro.shard`):

* ``merge()`` reconstructs the unsharded filter *bit for bit*;
* with one shard, every answer equals the unsharded filter's exactly;
* with N shards, batches equal the scalar per-query dispatch exactly,
  positives are a subset of the unsharded filter's, and false negatives
  remain impossible.
"""

import numpy as np
import pytest

from repro.core.bloomrf import BloomRF
from repro.shard import ShardedBloomRF

U64 = (1 << 64) - 1


@pytest.fixture(scope="module")
def shard_keys():
    rng = np.random.default_rng(31)
    return np.unique(rng.integers(0, 1 << 64, 12_000, dtype=np.uint64))


@pytest.fixture(scope="module")
def reference(shard_keys):
    filt = BloomRF.tuned(
        n_keys=shard_keys.size, bits_per_key=16, max_range=1 << 20
    )
    filt.insert_many(shard_keys)
    return filt


def probe_workload(seed=5, n=3_000):
    rng = np.random.default_rng(seed)
    points = rng.integers(0, 1 << 64, n, dtype=np.uint64)
    lo = rng.integers(0, 1 << 63, n, dtype=np.uint64)
    width = np.uint64(1) << rng.integers(1, 24, n, dtype=np.uint64)
    bounds = np.stack([lo, np.minimum(lo + width, np.uint64(U64))], axis=1)
    return points, bounds


def build_sharded(reference, shard_keys, num_shards, partition):
    sharded = ShardedBloomRF(reference.config, num_shards, partition=partition)
    sharded.insert_many(shard_keys)
    return sharded


@pytest.mark.parametrize("partition", ["hash", "range"])
@pytest.mark.parametrize("num_shards", [1, 3, 4])
class TestShardedEquivalence:
    def test_no_false_negatives(self, reference, shard_keys, num_shards, partition):
        with build_sharded(reference, shard_keys, num_shards, partition) as sh:
            assert sh.contains_point_many(shard_keys[:2_000]).all()
            anchors = shard_keys[:1_000]
            pad = np.uint64(7)
            bounds = np.stack(
                [
                    anchors - np.minimum(anchors, pad),
                    np.minimum(anchors + pad, np.uint64(U64)),
                ],
                axis=1,
            )
            assert sh.contains_range_many(bounds).all()

    def test_batch_equals_scalar_dispatch(
        self, reference, shard_keys, num_shards, partition
    ):
        points, bounds = probe_workload()
        with build_sharded(reference, shard_keys, num_shards, partition) as sh:
            batch_points = sh.contains_point_many(points)
            assert np.array_equal(
                batch_points,
                np.array([sh.contains_point(int(k)) for k in points]),
            )
            batch_ranges = sh.contains_range_many(bounds)
            assert np.array_equal(
                batch_ranges,
                np.array([sh.contains_range(int(a), int(b)) for a, b in bounds]),
            )

    def test_positives_subset_of_unsharded(
        self, reference, shard_keys, num_shards, partition
    ):
        points, bounds = probe_workload()
        with build_sharded(reference, shard_keys, num_shards, partition) as sh:
            assert not np.any(
                sh.contains_point_many(points)
                & ~reference.contains_point_many(points)
            )
            assert not np.any(
                sh.contains_range_many(bounds)
                & ~reference.contains_range_many(bounds)
            )

    def test_merge_reconstructs_unsharded_bit_for_bit(
        self, reference, shard_keys, num_shards, partition
    ):
        with build_sharded(reference, shard_keys, num_shards, partition) as sh:
            merged = sh.merge()
        assert merged._bits == reference._bits
        if reference.config.exact_level is not None:
            assert merged._exact == reference._exact
        assert merged.num_keys == reference.num_keys

    def test_keys_land_on_their_owning_shard_only(
        self, reference, shard_keys, num_shards, partition
    ):
        with build_sharded(reference, shard_keys, num_shards, partition) as sh:
            owner = sh.shard_of_many(shard_keys)
            assert sh.num_keys == shard_keys.size
            for s, shard in enumerate(sh.shards):
                assert shard.num_keys == int(np.count_nonzero(owner == s))


class TestSingleShardExactness:
    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_single_shard_answers_equal_unsharded(
        self, reference, shard_keys, partition
    ):
        points, bounds = probe_workload(seed=9)
        with build_sharded(reference, shard_keys, 1, partition) as sh:
            assert np.array_equal(
                sh.contains_point_many(points),
                reference.contains_point_many(points),
            )
            assert np.array_equal(
                sh.contains_range_many(bounds),
                reference.contains_range_many(bounds),
            )


class TestRangePartitionDispatch:
    def test_narrow_queries_touch_one_shard(self, reference, shard_keys):
        with build_sharded(reference, shard_keys, 4, "range") as sh:
            # A query strictly inside shard 2's sub-domain involves only it.
            lo = int(sh._boundaries[2]) + 100
            assert sh.shard_of(lo) == 2
            assert sh.shard_of(lo + 1_000) == 2
            # Equivalent to probing shard 2 directly with the same bounds.
            expected = sh.shards[2].contains_range(lo, lo + 1_000)
            assert sh.contains_range(lo, lo + 1_000) == expected

    def test_domain_wide_scan_fans_out_and_hits(self, reference, shard_keys):
        with build_sharded(reference, shard_keys, 4, "range") as sh:
            assert sh.contains_range(0, U64)

    def test_range_boundaries_cover_domain(self, reference, shard_keys):
        with build_sharded(reference, shard_keys, 5, "range") as sh:
            owner = sh.shard_of_many(
                np.array([0, 1, U64 // 2, U64 - 1, U64], dtype=np.uint64)
            )
            assert owner.min() >= 0 and owner.max() <= 4
            assert sh.shard_of(0) == 0
            assert sh.shard_of(U64) == 4


class TestShardedValidation:
    def test_rejects_bad_shard_count(self, reference):
        with pytest.raises(ValueError):
            ShardedBloomRF(reference.config, 0)

    def test_rejects_unknown_partition(self, reference):
        with pytest.raises(ValueError):
            ShardedBloomRF(reference.config, 2, partition="modulo")

    def test_rejects_more_shards_than_domain_keys(self):
        from repro.core.config import BloomRFConfig

        small = BloomRFConfig.basic(n_keys=16, bits_per_key=12, domain_bits=8)
        with pytest.raises(ValueError):
            ShardedBloomRF(small, 512, partition="range")
        # At the limit every shard owns exactly one key and ranges still work.
        with ShardedBloomRF(small, 256, partition="range") as sh:
            sh.insert_many(np.arange(0, 256, 3, dtype=np.uint64))
            assert sh.contains_range(0, 255)
            assert sh.contains_point_many(
                np.arange(0, 256, 3, dtype=np.uint64)
            ).all()

    def test_rejects_out_of_domain_keys(self, reference):
        with ShardedBloomRF(reference.config, 2) as sh:
            with pytest.raises(ValueError):
                sh.insert_many(np.array([-1], dtype=np.int64))
            with pytest.raises(ValueError):
                sh.contains_range_many(np.array([[5, 4]], dtype=np.uint64))

    def test_empty_batches(self, reference):
        with ShardedBloomRF(reference.config, 2) as sh:
            assert sh.contains_point_many(np.array([], dtype=np.uint64)).size == 0
            assert (
                sh.contains_range_many(np.empty((0, 2), dtype=np.uint64)).size == 0
            )
            sh.insert_many(np.array([], dtype=np.uint64))
            assert sh.num_keys == 0

    def test_close_is_idempotent_and_reopens(self, reference):
        sh = ShardedBloomRF(reference.config, 3)
        sh.insert_many(np.arange(1_000, dtype=np.uint64))
        sh.close()
        sh.close()
        # Probing after close lazily recreates the pool.
        assert sh.contains_point_many(np.arange(1_000, dtype=np.uint64)).all()
        sh.close()

    def test_from_keys_roundtrip(self, shard_keys):
        sharded = ShardedBloomRF.from_keys(
            shard_keys, num_shards=3, bits_per_key=16, max_range=1 << 20
        )
        with sharded:
            assert sharded.num_keys == shard_keys.size
            assert sharded.contains_point_many(shard_keys[:500]).all()
            unsharded = BloomRF.tuned(
                n_keys=shard_keys.size, bits_per_key=16, max_range=1 << 20
            )
            unsharded.insert_many(shard_keys)
            assert sharded.merge()._bits == unsharded._bits
