"""Bit-exact unit tests for every worked example in the paper.

These pin the implementation to the published arithmetic: Sect. 3.1's
prefix-hashing example (Fig. 3), Sect. 3.2's PMHF example (Fig. 4), the
Fig. 7 two-path decomposition, Sect. 7's extended-model example, and the
tuning-advisor example (n=50M, 14 bits/key, d=64).
"""


import pytest

from repro.core.advisor import TuningAdvisor, build_delta_vector
from repro.core.config import BloomRFConfig, basic_layer_count
from repro.core.model import extended_fpr_profile
from repro.dyadic import di_bounds, dyadic_decompose
from repro.hashing import pmhf_position

# Fig. 3/4 hash parameters: h_i(x) = a_i + b_i * x, layers i = 3, 2, 1, 0.
_A = {3: 2, 2: 3, 1: 5, 0: 7}
_B = {3: 29, 2: 31, 1: 37, 0: 41}


def _h(i):
    return lambda value: _A[i] + _B[i] * value


class TestFig3PrefixHashing:
    """code(y) = (h3(y>>12), h2(y>>8), h1(y>>4), h0(y)) mod 30 (Fig. 3.A/B)."""

    M = 30

    def code(self, key):
        return tuple(_h(i)(key >> (4 * i)) % self.M for i in (3, 2, 1, 0))

    def test_codes_of_example_keys(self):
        assert self.code(42) == (2, 3, 19, 19)
        assert self.code(1414) == (2, 8, 21, 21)
        assert self.code(50000) == (20, 18, 10, 17)
        assert self.code(43) == (2, 3, 19, 0)
        assert self.code(48) == (2, 3, 26, 25)

    def test_bit_array_after_insertion(self):
        bits = set()
        for key in (42, 1414, 50000):
            bits.update(self.code(key))
        assert bits == {2, 3, 8, 10, 17, 18, 19, 20, 21}

    def test_prefix_hashing_equation_4(self):
        """Keys 42 and 43 share prefixes on layers 1..3 (code prefix (2,3,19))."""
        assert self.code(42)[:3] == self.code(43)[:3] == (2, 3, 19)

    def test_range_32_47_shares_layer1_prefix(self):
        codes = {self.code(y)[:3] for y in range(32, 48)}
        assert codes == {(2, 3, 19)}

    def test_range_48_63_is_excluded(self):
        codes = {self.code(y)[:3] for y in range(48, 64)}
        assert codes == {(2, 3, 26)}
        # Position 26 is never set by the three keys -> negative answer.
        inserted = set()
        for key in (42, 1414, 50000):
            inserted.update(self.code(key))
        assert 26 not in inserted


class TestFig4Pmhf:
    """MH_i with Delta=4, m=32 bits -> 4 words of 8 bits (Fig. 4)."""

    WORDS = 4

    def mh(self, i, key):
        return pmhf_position(_h(i), key, level=4 * i, delta=4, num_words=self.WORDS)

    @pytest.mark.parametrize(
        "key,expected",
        [
            (42, (16, 24, 10, 2)),
            (1414, (16, 29, 0, 30)),
            (50000, (28, 27, 29, 8)),
            (43, (16, 24, 10, 3)),
            (48, (16, 24, 11, 8)),
        ],
    )
    def test_codes(self, key, expected):
        assert tuple(self.mh(i, key) for i in (3, 2, 1, 0)) == expected

    def test_bit_array_after_insertion(self):
        bits = set()
        for key in (42, 1414, 50000):
            bits.update(self.mh(i, key) for i in (3, 2, 1, 0))
        assert bits == {0, 2, 8, 10, 16, 24, 27, 28, 29, 30}

    def test_di_42_43_single_word(self):
        """[42,43]: positions 2 and 3 lie side by side -> one word access."""
        assert self.mh(0, 42) == 2 and self.mh(0, 43) == 3
        # word = first byte of the bit array = {0, 2} set -> 0b00000101
        word = 0
        for key in (42, 1414, 50000):
            pos = self.mh(0, key)
            if pos < 8:
                word |= 1 << pos
        mask_42_43 = (1 << 2) | (1 << 3)
        assert word & mask_42_43  # positive answer, as in the paper

    def test_di_44_47_negative(self):
        word = 0
        for key in (42, 1414, 50000):
            pos = self.mh(0, key)
            if pos < 8:
                word |= 1 << pos
        mask_44_47 = 0b11110000
        assert not (word & mask_44_47)  # negative answer, as in the paper

    def test_error_correction_interval_416_431(self):
        """Sect. 3.2: [416,431] has prefix (16, 25, 2); MH1 errs (bit 2 set),
        MH2 corrects (bit 25 unset)."""
        key = 416
        assert self.mh(3, key) == 16
        assert self.mh(2, key) == 25
        assert self.mh(1, key) == 2
        inserted = set()
        for x in (42, 1414, 50000):
            inserted.update(self.mh(i, x) for i in (3, 2, 1, 0))
        assert 2 in inserted  # MH1's false positive
        assert 25 not in inserted  # corrected on layer 2


class TestFig7Decomposition:
    def test_pieces(self):
        pieces = [di_bounds(p, lvl) for lvl, p in dyadic_decompose(45, 60)]
        assert pieces == [(45, 45), (46, 47), (48, 55), (56, 59), (60, 60)]


class TestSect7ModelExample:
    """d=16, n=3, Delta=(4,4,4,4), one hash/layer, m=32 bits (Sect. 7)."""

    def make_config(self):
        return BloomRFConfig(
            domain_bits=16,
            deltas=(4, 4, 4, 4),
            replicas=(1, 1, 1, 1),
            segment_of=(0, 0, 0, 0),
            segment_bits=(32,),
            exact_level=16,
        )

    def test_p_estimate(self):
        profile = extended_fpr_profile(self.make_config(), n_keys=3)
        # Paper: p ~ 0.683 ((1 - 1/32)^12).
        assert profile.p_zero_by_segment[0] == pytest.approx((1 - 1 / 32) ** 12)
        assert profile.p_zero_by_segment[0] == pytest.approx(0.683, abs=0.01)

    def test_level_fpr_vector_head(self):
        """Paper: fpr = (0, 0.95, 0.78, 0.53, 0.32, ...) from level 16 down."""
        profile = extended_fpr_profile(self.make_config(), n_keys=3)
        assert profile.fpr[16] == 0.0
        assert profile.fpr[15] == pytest.approx(0.95, abs=0.02)
        assert profile.fpr[14] == pytest.approx(0.78, abs=0.02)
        assert profile.fpr[13] == pytest.approx(0.53, abs=0.02)
        assert profile.fpr[12] == pytest.approx(0.32, abs=0.02)

    def test_point_fpr_tail(self):
        """Paper: point-query FPR ~ 0.01 (1%)."""
        profile = extended_fpr_profile(self.make_config(), n_keys=3)
        assert profile.point_fpr == pytest.approx(0.01, abs=0.01)

    def test_fpr_decreases_towards_level_zero(self):
        profile = extended_fpr_profile(self.make_config(), n_keys=3)
        assert profile.fpr[0] < profile.fpr[4] < profile.fpr[8] < profile.fpr[12]


class TestLayerCountRule:
    """k = ceil((d - log2 n)/Delta) as printed, validated on both worked
    examples (which jointly force nearest-integer rounding; DESIGN.md)."""

    def test_sect31_example(self):
        # d=16, n=3, Delta=4 -> k=4
        assert basic_layer_count(3, 16, 4) == 4

    def test_random_scatter_example(self):
        # d=64, n=2M, Delta=7 -> k=6 (paper, "Random Scatter")
        assert basic_layer_count(2_000_000, 64, 7) == 6


class TestAdvisorExample:
    """n=50M keys, 14 bits/key, d=64 (Sect. 7, Tuning Advisor)."""

    def test_exact_level_is_36(self):
        advisor = TuningAdvisor(domain_bits=64)
        assert advisor.exact_level_floor(50_000_000 * 14) == 36

    def test_delta_vector(self):
        # Paper: Delta = (2, 2, 4, 7, 7, 7, 7) top-down.
        assert tuple(reversed(build_delta_vector(36))) == (2, 2, 4, 7, 7, 7, 7)

    def test_full_configuration(self):
        advisor = TuningAdvisor(domain_bits=64)
        config = advisor.configure(
            n_keys=50_000_000, total_bits=50_000_000 * 14, max_range=1 << 14
        )
        assert config.exact_level in (36, 37)
        assert config.deltas[0] == 7  # bottom layers use 64-bit words
        assert config.replicas[-1] == 2  # replicated hashes on the top layer
        assert config.replicas[0] == 1
        # Mid layers (delta < 7) and bottom layers live in separate segments.
        segments = {config.segment_of[i] for i in range(config.num_layers)}
        assert len(segments) == 2
        assert config.total_bits <= 50_000_000 * 14 * 1.01

    def test_second_example_levels(self):
        """n=50M, 16 bits/key, |R|=1e10: candidates are levels 36/37
        (the paper's Fig. ??.C quotes them as 28/27 bitmap address bits)."""
        advisor = TuningAdvisor(domain_bits=64)
        report = advisor.configure(
            n_keys=50_000_000,
            total_bits=50_000_000 * 16,
            max_range=10**10,
            return_report=True,
        )
        examined = {c.exact_level for c in report.candidates}
        assert {36, 37} <= examined
        assert report.best.point_fpr < 0.02
        assert report.best.range_fpr < 0.10
