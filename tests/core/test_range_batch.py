"""Tests for the batched range-query engine (`contains_range_many`).

The central contract: batch results are **bit-identical** to the scalar
`contains_range` reference (the two-path callback walk) on every
configuration — basic, advisor-tuned with an exact level, degenerate-guard —
and the bulk paths enforce the same domain validation as the scalar ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloomrf import BloomRF
from repro.core.config import BloomRFConfig

U64 = (1 << 64) - 1
u16 = st.integers(min_value=0, max_value=(1 << 16) - 1)


def batch_equals_scalar(filt: BloomRF, bounds: np.ndarray) -> None:
    scalar = np.fromiter(
        (
            filt.contains_range(int(lo), int(hi))
            for lo, hi in zip(bounds[:, 0], bounds[:, 1], strict=True)
        ),
        dtype=bool,
        count=bounds.shape[0],
    )
    batch = filt.contains_range_many(bounds)
    assert batch.dtype == np.bool_
    assert np.array_equal(batch, scalar), (
        f"batch/scalar mismatch at rows "
        f"{np.nonzero(batch != scalar)[0][:5].tolist()}"
    )


def guarded_config(base: BloomRFConfig) -> BloomRFConfig:
    return BloomRFConfig.from_dict(
        {**base.to_dict(), "degenerate_guard": True}
    )


def exact_level_filter() -> BloomRF:
    return BloomRF(
        BloomRFConfig(
            domain_bits=16,
            deltas=(4, 4),
            replicas=(2, 1),
            segment_of=(0, 0),
            segment_bits=(2048,),
            exact_level=8,
        )
    )


class TestBatchMatchesScalar:
    """Randomized cross-config property: batch == scalar, bit for bit."""

    @given(
        st.sets(u16, min_size=1, max_size=150),
        st.lists(st.tuples(u16, u16), min_size=1, max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_basic_small_domain(self, keys, raw_queries):
        filt = BloomRF.basic(
            n_keys=len(keys), bits_per_key=12, domain_bits=16, delta=4
        )
        filt.insert_many(np.fromiter(keys, dtype=np.uint64, count=len(keys)))
        bounds = np.array(
            [[min(a, b), max(a, b)] for a, b in raw_queries], dtype=np.uint64
        )
        batch_equals_scalar(filt, bounds)

    @given(
        st.sets(u16, min_size=1, max_size=150),
        st.lists(st.tuples(u16, u16), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_degenerate_guard(self, keys, raw_queries):
        filt = BloomRF(
            guarded_config(
                BloomRFConfig.basic(len(keys), 12, domain_bits=16, delta=4)
            )
        )
        filt.insert_many(np.fromiter(keys, dtype=np.uint64, count=len(keys)))
        bounds = np.array(
            [[min(a, b), max(a, b)] for a, b in raw_queries], dtype=np.uint64
        )
        batch_equals_scalar(filt, bounds)

    @given(
        st.sets(u16, min_size=1, max_size=100),
        st.lists(st.tuples(u16, u16), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_level(self, keys, raw_queries):
        filt = exact_level_filter()
        filt.insert_many(np.fromiter(keys, dtype=np.uint64, count=len(keys)))
        bounds = np.array(
            [[min(a, b), max(a, b)] for a, b in raw_queries], dtype=np.uint64
        )
        batch_equals_scalar(filt, bounds)

    @pytest.mark.parametrize("bits_per_key", [12, 22])
    def test_tuned_full_domain_mixed_widths(self, bits_per_key):
        rng = np.random.default_rng(bits_per_key)
        keys = rng.integers(0, 1 << 64, 3000, dtype=np.uint64)
        filt = BloomRF.tuned(
            n_keys=3000, bits_per_key=bits_per_key, max_range=1 << 28
        )
        filt.insert_many(keys)
        lo = rng.integers(0, 1 << 63, 3000, dtype=np.uint64)
        width = np.uint64(1) << rng.integers(0, 40, 3000, dtype=np.uint64)
        hi = np.maximum(np.minimum(lo + width, np.uint64(U64)), lo)
        # Anchor a slice on inserted keys so positives are exercised.
        lo[:600] = keys[:600] - np.minimum(keys[:600], np.uint64(512))
        hi[:600] = np.minimum(keys[:600] + np.uint64(512), np.uint64(U64))
        batch_equals_scalar(filt, np.stack([lo, hi], axis=1))

    def test_basic_full_domain(self):
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 1 << 64, 2000, dtype=np.uint64)
        filt = BloomRF.basic(n_keys=2000, bits_per_key=14)
        filt.insert_many(keys)
        lo = rng.integers(0, 1 << 63, 2000, dtype=np.uint64)
        width = np.uint64(1) << rng.integers(0, 34, 2000, dtype=np.uint64)
        hi = np.maximum(np.minimum(lo + width, np.uint64(U64)), lo)
        batch_equals_scalar(filt, np.stack([lo, hi], axis=1))

    def test_domain_edges(self):
        filt = BloomRF.basic(n_keys=10, bits_per_key=12)
        filt.insert_many(np.array([0, 1, U64 - 1, U64], dtype=np.uint64))
        bounds = np.array(
            [[0, U64], [0, 0], [U64, U64], [5, 5], [0, 1 << 32]],
            dtype=np.uint64,
        )
        batch_equals_scalar(filt, bounds)

    def test_no_false_negatives(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 1 << 64, 500, dtype=np.uint64)
        filt = BloomRF.tuned(n_keys=500, bits_per_key=18, max_range=1 << 20)
        filt.insert_many(keys)
        pad = np.uint64(17)
        bounds = np.stack(
            [keys - np.minimum(keys, pad), np.minimum(keys + pad, np.uint64(U64))],
            axis=1,
        )
        assert filt.contains_range_many(bounds).all()


class TestBatchApiContracts:
    def test_empty_bounds_array(self):
        """A (0, 2) bounds array returns an empty bool array (the seed
        implementation crashed on this)."""
        filt = BloomRF.basic(n_keys=10, bits_per_key=10)
        for empty in (
            np.empty((0, 2), dtype=np.uint64),
            np.empty((0, 2), dtype=np.int64),
            [],
        ):
            got = filt.contains_range_many(empty)
            assert got.dtype == np.bool_ and got.shape == (0,)

    def test_rejects_bad_shape(self):
        filt = BloomRF.basic(n_keys=10, bits_per_key=10)
        with pytest.raises(ValueError):
            filt.contains_range_many(np.array([1, 2, 3], dtype=np.uint64))
        with pytest.raises(ValueError):
            filt.contains_range_many(np.zeros((2, 3), dtype=np.uint64))

    def test_rejects_inverted_range(self):
        filt = BloomRF.basic(n_keys=10, bits_per_key=10)
        with pytest.raises(ValueError):
            filt.contains_range_many(np.array([[10, 9]], dtype=np.uint64))


class TestVectorizedDomainValidation:
    """The bulk paths enforce the same domain check as the scalar ones."""

    def make(self):
        return BloomRF.basic(n_keys=10, bits_per_key=12, domain_bits=16, delta=4)

    def test_out_of_domain_raises_in_both_paths(self):
        filt = self.make()
        too_big = 1 << 16
        with pytest.raises(ValueError):
            filt.insert(too_big)
        with pytest.raises(ValueError):
            filt.insert_many(np.array([1, too_big], dtype=np.uint64))
        with pytest.raises(ValueError):
            filt.contains_point(too_big)
        with pytest.raises(ValueError):
            filt.contains_point_many(np.array([1, too_big], dtype=np.uint64))
        with pytest.raises(ValueError):
            filt.contains_range(0, too_big)
        with pytest.raises(ValueError):
            filt.contains_range_many(np.array([[0, too_big]], dtype=np.uint64))

    def test_negative_keys_raise_in_both_paths(self):
        filt = self.make()
        with pytest.raises(ValueError):
            filt.insert(-1)
        with pytest.raises(ValueError):
            filt.insert_many(np.array([3, -1], dtype=np.int64))
        with pytest.raises(ValueError):
            filt.contains_point_many(np.array([-5], dtype=np.int64))
        with pytest.raises(ValueError):
            filt.contains_range_many(np.array([[-2, 4]], dtype=np.int64))

    def test_in_domain_signed_dtype_accepted(self):
        filt = self.make()
        filt.insert_many(np.array([5, 100], dtype=np.int64))
        assert filt.contains_point(5) and filt.contains_point(100)
        got = filt.contains_point_many(np.array([5, 100], dtype=np.int32))
        assert got.all()

    def test_non_integer_dtype_rejected(self):
        filt = self.make()
        with pytest.raises(TypeError):
            filt.insert_many(np.array([1.5, 2.0]))
        with pytest.raises(TypeError):
            filt.contains_range_many(np.array([[1.0, 2.0]]))
