"""Tests for the analytic FPR models (Sect. 5 and Sect. 7)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BloomRFConfig
from repro.core.model import (
    basic_point_fpr,
    basic_range_fpr_bound,
    expected_occupied,
    extended_fpr_profile,
    probe_fire_probability,
)


class TestExpectedOccupied:
    def test_zero_keys(self):
        assert expected_occupied(100, 0) == 0.0

    def test_single_interval(self):
        assert expected_occupied(1, 5) == 1.0

    def test_matches_naive_small(self):
        # N(1 - (1 - 1/N)^n) computed directly.
        naive = 8 * (1 - (1 - 1 / 8) ** 5)
        assert expected_occupied(8, 5) == pytest.approx(naive)

    def test_huge_interval_count_approaches_n(self):
        assert expected_occupied(2.0**60, 1000) == pytest.approx(1000, rel=1e-9)

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=1, max_value=10**6),
    )
    @settings(max_examples=100)
    def test_bounds(self, num_intervals, n_keys):
        occ = expected_occupied(num_intervals, n_keys)
        assert 0 < occ <= min(num_intervals, n_keys) + 1e-9


class TestProbeFire:
    def test_single_bit_single_replica(self):
        assert probe_fire_probability(0.7, 1, 1) == pytest.approx(0.3)

    def test_two_bits_matches_paper_r1(self):
        """Paper: r=1, two bits -> p' = 2p(1-p) + (1-p)^2 = 1 - p^2."""
        p = 0.683
        assert probe_fire_probability(p, 2, 1) == pytest.approx(
            2 * p * (1 - p) + (1 - p) ** 2
        )

    def test_replicas_reduce_fire_probability(self):
        assert probe_fire_probability(0.5, 2, 2) < probe_fire_probability(0.5, 2, 1)

    @given(
        st.floats(min_value=0.01, max_value=0.99),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=4),
    )
    def test_is_probability(self, p, span, replicas):
        fire = probe_fire_probability(p, span, replicas)
        assert 0.0 <= fire <= 1.0


class TestBasicModel:
    def test_point_fpr_matches_bloom_formula(self):
        assert basic_point_fpr(1000, 10_000, 7) == pytest.approx(
            (1 - math.exp(-7 * 1000 / 10_000)) ** 7
        )

    def test_point_fpr_empty_filter(self):
        assert basic_point_fpr(0, 1000, 5) == 0.0

    def test_range_bound_monotone_in_range_size(self):
        values = [
            basic_range_fpr_bound(10**6, 10**7, 6, 7, r)
            for r in (1, 2**7, 2**14, 2**21)
        ]
        assert values == sorted(values)

    def test_range_bound_vacuous_beyond_layers(self):
        assert basic_range_fpr_bound(10**6, 10**7, 6, 7, 2**42) == 1.0

    def test_range_bound_rejects_bad_range(self):
        with pytest.raises(ValueError):
            basic_range_fpr_bound(10, 100, 3, 7, 0)

    def test_paper_sect6_claims(self):
        """Sect. 6: with 17 bits/key basic bloomRF handles R=2^14 at ~1.5%,
        with 22 bits/key R=2^21 at ~2.5% (d=64 integers)."""
        n = 10**7
        k = max(1, round((64 - math.log2(n)) / 7))
        fpr_17 = basic_range_fpr_bound(n, 17 * n, k, 7, 2**14)
        fpr_22 = basic_range_fpr_bound(n, 22 * n, k, 7, 2**21)
        assert fpr_17 == pytest.approx(0.015, abs=0.01)
        assert fpr_22 == pytest.approx(0.025, abs=0.015)


class TestExtendedModel:
    def make_config(self, exact=True):
        return BloomRFConfig(
            domain_bits=32,
            deltas=(7, 7, 4, 2),
            replicas=(1, 1, 1, 2),
            segment_of=(1, 1, 0, 0),
            segment_bits=(8192, 65536),
            exact_level=20 if exact else None,
        )

    def test_profile_shape(self):
        profile = extended_fpr_profile(self.make_config(), n_keys=1000)
        assert len(profile.fpr) == 33
        assert all(0.0 <= f <= 1.0 for f in profile.fpr)

    def test_exact_levels_are_error_free(self):
        profile = extended_fpr_profile(self.make_config(), n_keys=1000)
        for level in range(20, 33):
            assert profile.fpr[level] == 0.0

    def test_saturated_top_without_exact_layer(self):
        config = BloomRFConfig(
            domain_bits=32,
            deltas=(7, 7, 4, 2),
            replicas=(1, 1, 1, 2),
            segment_of=(1, 1, 0, 0),
            segment_bits=(8192, 65536),
            exact_level=None,
        )
        profile = extended_fpr_profile(config, n_keys=1000)
        # Omitted top levels answer positive for (almost) everything.
        assert profile.fpr[25] > 0.9

    def test_more_memory_lowers_fpr(self):
        small = BloomRFConfig.basic(10_000, 8, domain_bits=32, delta=7)
        large = BloomRFConfig.basic(10_000, 20, domain_bits=32, delta=7)
        p_small = extended_fpr_profile(small, 10_000)
        p_large = extended_fpr_profile(large, 10_000)
        assert p_large.point_fpr < p_small.point_fpr

    def test_distribution_constant_scales_fill(self):
        """C scales the per-key bit consumption: C > 1 models distributions
        that spread bits wider (higher fill, worse FPR), C < 1 the opposite."""
        config = self.make_config()
        low = extended_fpr_profile(config, 1000, distribution_constant=0.5)
        base = extended_fpr_profile(config, 1000, distribution_constant=1.0)
        high = extended_fpr_profile(config, 1000, distribution_constant=2.0)
        assert low.point_fpr <= base.point_fpr <= high.point_fpr
        assert low.p_zero_by_segment[0] >= base.p_zero_by_segment[0]

    def test_tp_modes(self):
        config = self.make_config()
        for mode in ("expected", "min"):
            profile = extended_fpr_profile(config, 1000, tp_mode=mode)
            assert profile.point_fpr >= 0.0
        with pytest.raises(ValueError):
            extended_fpr_profile(config, 1000, tp_mode="bogus")

    def test_max_fpr_up_to_range(self):
        profile = extended_fpr_profile(self.make_config(), n_keys=1000)
        assert profile.max_fpr_up_to_range(1) == profile.fpr[0]
        assert profile.max_fpr_up_to_range(1 << 10) == max(profile.fpr[:11])

    def test_weighted_norm(self):
        profile = extended_fpr_profile(self.make_config(), n_keys=1000)
        norm = profile.weighted_norm(1 << 10, point_weight=4.0)
        assert norm >= profile.max_fpr_up_to_range(1 << 10)


class TestModelAgainstMeasurement:
    """The extended model should track measured per-level FPR within a
    small factor for uniform keys (this is what the advisor relies on)."""

    def test_point_level_prediction(self):
        from repro.core.bloomrf import BloomRF

        n = 20_000
        config = BloomRFConfig.basic(n, 12, domain_bits=64, delta=7)
        profile = extended_fpr_profile(config, n)
        filt = BloomRF(config)
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 1 << 64, n, dtype=np.uint64)
        filt.insert_many(keys)
        probes = rng.integers(0, 1 << 64, 50_000, dtype=np.uint64)
        measured = float(np.mean(filt.contains_point_many(probes)))
        predicted = profile.point_fpr
        assert measured <= predicted * 3 + 0.002
        assert predicted <= max(measured * 5, 0.02)
