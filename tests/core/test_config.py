"""Tests for BloomRFConfig validation and derived quantities."""

import pytest

from repro.core.config import MAX_DELTA, BloomRFConfig


def make_config(**overrides):
    base = dict(
        domain_bits=64,
        deltas=(7, 7, 7),
        replicas=(1, 1, 2),
        segment_of=(0, 0, 0),
        segment_bits=(4096,),
        exact_level=None,
    )
    base.update(overrides)
    return BloomRFConfig(**base)


class TestValidation:
    def test_valid_config(self):
        config = make_config()
        assert config.num_layers == 3
        assert config.levels == (0, 7, 14)

    def test_rejects_bad_domain(self):
        with pytest.raises(ValueError):
            make_config(domain_bits=0)
        with pytest.raises(ValueError):
            make_config(domain_bits=65)

    def test_rejects_empty_layers(self):
        with pytest.raises(ValueError):
            make_config(deltas=(), replicas=(), segment_of=())

    def test_rejects_oversized_delta(self):
        with pytest.raises(ValueError):
            make_config(deltas=(MAX_DELTA + 1, 7, 7))

    def test_rejects_levels_beyond_domain(self):
        with pytest.raises(ValueError):
            make_config(domain_bits=16, deltas=(7, 7, 7))

    def test_rejects_replica_mismatch(self):
        with pytest.raises(ValueError):
            make_config(replicas=(1, 1))
        with pytest.raises(ValueError):
            make_config(replicas=(1, 0, 1))

    def test_rejects_bad_segment_index(self):
        with pytest.raises(ValueError):
            make_config(segment_of=(0, 0, 1))

    def test_rejects_misaligned_segment(self):
        with pytest.raises(ValueError):
            make_config(segment_bits=(4097,))

    def test_rejects_wrong_exact_level(self):
        with pytest.raises(ValueError):
            make_config(exact_level=10)

    def test_exact_level_at_top_boundary(self):
        config = make_config(exact_level=21)
        assert config.exact_bitmap_bits == 1 << (64 - 21)


class TestDerived:
    def test_word_bits(self):
        config = make_config(deltas=(2, 4, 7), segment_bits=(4096,))
        assert [config.word_bits(i) for i in range(3)] == [2, 8, 64]

    def test_total_bits_includes_exact(self):
        config = make_config(exact_level=21)
        assert config.total_bits == 4096 + (1 << 43)

    def test_bits_per_key(self):
        config = make_config()
        assert config.bits_per_key(1024) == pytest.approx(4.0)

    def test_hash_count_in_segment(self):
        config = make_config(
            deltas=(7, 7, 2),
            replicas=(1, 1, 3),
            segment_of=(1, 1, 0),
            segment_bits=(1024, 4096),
        )
        assert config.hash_count_in_segment(0) == 3
        assert config.hash_count_in_segment(1) == 2

    def test_describe_prints_top_down(self):
        config = make_config(deltas=(7, 4, 2), segment_bits=(4096,))
        assert "Delta=(2, 4, 7)" in config.describe()


class TestBasicConstructor:
    def test_paper_layer_counts(self):
        assert BloomRFConfig.basic(3, 10, domain_bits=16, delta=4).num_layers == 4
        assert BloomRFConfig.basic(2_000_000, 10, delta=7).num_layers == 6

    def test_budget_respected(self):
        config = BloomRFConfig.basic(10_000, 12.5)
        assert config.total_bits >= 125_000
        assert config.total_bits <= 125_000 + 64

    def test_single_segment_one_replica(self):
        config = BloomRFConfig.basic(1000, 10)
        assert config.segment_bits == (config.total_bits,)
        assert all(r == 1 for r in config.replicas)
        assert config.exact_level is None

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            BloomRFConfig.basic(0, 10)
        with pytest.raises(ValueError):
            BloomRFConfig.basic(10, -1)

    def test_small_domain_caps_layers(self):
        config = BloomRFConfig.basic(4, 10, domain_bits=8, delta=7)
        assert config.top_boundary_level <= 8


class TestSerialization:
    def test_round_trip(self):
        config = make_config(exact_level=21, seed=99, degenerate_guard=True)
        restored = BloomRFConfig.from_dict(config.to_dict())
        assert restored == config

    def test_dict_is_json_friendly(self):
        import json

        data = json.dumps(make_config().to_dict())
        assert "deltas" in data
