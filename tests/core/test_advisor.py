"""Tests for the tuning advisor (Sect. 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.advisor import AdvisorReport, TuningAdvisor, build_delta_vector
from repro.core.config import BloomRFConfig


class TestDeltaVector:
    def test_paper_example(self):
        assert build_delta_vector(36) == (7, 7, 7, 7, 4, 2, 2)

    def test_small_targets(self):
        assert sum(build_delta_vector(7)) == 7
        assert sum(build_delta_vector(2)) == 2
        assert build_delta_vector(1) == (1,)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            build_delta_vector(0)

    @given(st.integers(min_value=1, max_value=64))
    def test_sums_to_target(self, target):
        deltas = build_delta_vector(target)
        assert sum(deltas) == target
        assert all(1 <= d <= 7 for d in deltas)

    @given(st.integers(min_value=8, max_value=64))
    def test_bottom_heavy(self, target):
        """Distances shrink towards the top (higher precision near exact)."""
        deltas = build_delta_vector(target)
        assert list(deltas) == sorted(deltas, reverse=True)


class TestExactLevelFloor:
    def test_paper_example(self):
        assert TuningAdvisor(domain_bits=64).exact_level_floor(7 * 10**8) == 36

    def test_monotone_in_budget(self):
        advisor = TuningAdvisor(domain_bits=64)
        levels = [advisor.exact_level_floor(m) for m in (10**6, 10**8, 10**10)]
        assert levels == sorted(levels, reverse=True)


class TestConfigure:
    def test_returns_valid_config(self):
        advisor = TuningAdvisor(domain_bits=64)
        config = advisor.configure(
            n_keys=100_000, total_bits=100_000 * 16, max_range=10**6
        )
        assert isinstance(config, BloomRFConfig)
        assert config.exact_level == config.top_boundary_level
        assert config.total_bits <= 100_000 * 16 * 1.01

    def test_report_contains_candidates_and_curves(self):
        advisor = TuningAdvisor(domain_bits=64)
        report = advisor.configure(
            n_keys=100_000,
            total_bits=100_000 * 16,
            max_range=10**6,
            return_report=True,
        )
        assert isinstance(report, AdvisorReport)
        assert report.best in report.candidates
        assert report.best.objective == min(c.objective for c in report.candidates)
        curves = report.curves()
        assert len(curves) >= 1
        for series in curves.values():
            assert len(series) >= 1

    def test_fallback_to_basic_on_tiny_budget(self):
        advisor = TuningAdvisor(domain_bits=64)
        config = advisor.configure(n_keys=100, total_bits=800, max_range=100)
        assert config.exact_level is None  # basic fallback

    def test_rejects_bad_inputs(self):
        advisor = TuningAdvisor()
        with pytest.raises(ValueError):
            advisor.configure(n_keys=0, total_bits=10**6, max_range=64)
        with pytest.raises(ValueError):
            advisor.configure(n_keys=100, total_bits=0, max_range=64)
        # A tiny positive budget is clamped, not rejected.
        config = advisor.configure(n_keys=3, total_bits=42, max_range=64)
        assert config.total_bits >= 64

    def test_larger_range_budget_shifts_config(self):
        """Tuning for larger ranges must not hurt the advertised range FPR."""
        advisor = TuningAdvisor(domain_bits=64)
        small = advisor.configure(
            n_keys=50_000, total_bits=50_000 * 18, max_range=64, return_report=True
        )
        large = advisor.configure(
            n_keys=50_000, total_bits=50_000 * 18, max_range=10**9, return_report=True
        )
        assert large.best.range_fpr <= 0.2
        assert small.best.point_fpr <= 0.02

    @given(
        st.integers(min_value=1_000, max_value=200_000),
        st.integers(min_value=10, max_value=22),
        st.sampled_from([2**6, 2**14, 10**6, 10**10]),
    )
    @settings(max_examples=15, deadline=None)
    def test_always_produces_buildable_config(self, n_keys, bits_per_key, max_range):
        advisor = TuningAdvisor(domain_bits=64)
        config = advisor.configure(
            n_keys=n_keys, total_bits=n_keys * bits_per_key, max_range=max_range
        )
        from repro.core.bloomrf import BloomRF

        filt = BloomRF(config)  # construction validates the whole layout
        filt.insert(12345)
        assert filt.contains_point(12345)
        assert filt.contains_range(12000, 13000)

    def test_invalid_exact_budget_fraction(self):
        with pytest.raises(ValueError):
            TuningAdvisor(exact_budget_fraction=1.5)
