"""Cross-module integration tests: end-to-end flows the benchmarks rely on.

These tie together workload generation, all filters, the LSM substrate and
the measurement harness, asserting the global invariants every experiment
assumes: generated queries are truly empty, no filter ever produces a false
negative end to end, FPR accounting is consistent, and the paper's headline
orderings hold at test scale.
"""

import numpy as np
import pytest

from repro.bench.harness import (
    build_standalone_filter,
    measure_point_fpr,
    measure_range_fpr,
)
from repro.lsm import LsmDB, SpecPolicy
from repro.workloads import (
    empty_point_queries,
    empty_range_queries,
    normal_keys,
    uniform_keys,
    zipfian_keys,
)

U64 = (1 << 64) - 1
ALL_FILTERS = ("bloomrf", "bloomrf-basic", "rosetta", "surf", "bloom", "cuckoo")
PRF = ("bloomrf", "bloomrf-basic", "rosetta", "surf")


@pytest.fixture(scope="module")
def keys():
    return uniform_keys(25_000, seed=31)


class TestEndToEndSoundness:
    @pytest.mark.parametrize("name", ALL_FILTERS)
    def test_point_soundness_standalone(self, keys, name):
        fut = build_standalone_filter(name, keys, bits_per_key=14, max_range=1 << 16)
        for key in keys[:1500]:
            assert fut.point(int(key)), name

    @pytest.mark.parametrize("name", PRF)
    def test_range_soundness_standalone(self, keys, name):
        fut = build_standalone_filter(name, keys, bits_per_key=14, max_range=1 << 16)
        for key in keys[:800]:
            key = int(key)
            assert fut.range_(max(0, key - 100), min(U64, key + 1000)), name

    @pytest.mark.parametrize(
        "gen", [uniform_keys, normal_keys, zipfian_keys],
        ids=["uniform", "normal", "zipfian"],
    )
    def test_soundness_across_distributions(self, gen):
        dist_keys = gen(8_000, seed=32)
        for name in ("bloomrf", "rosetta", "surf"):
            fut = build_standalone_filter(
                name, dist_keys, bits_per_key=16, max_range=1 << 20
            )
            for key in dist_keys[:400]:
                key = int(key)
                assert fut.point(key), name
                assert fut.range_(key, min(U64, key + 7)), name


class TestWorkloadFilterContract:
    def test_empty_queries_are_empty_for_exact_structures(self, keys):
        """The generator's emptiness guarantee, checked against an exact
        structure (the LSM with no filter reads ground truth)."""
        db = LsmDB()
        db.bulk_load(keys, num_sstables=3)
        for lo, hi in empty_range_queries(keys, 400, range_size=10**4, seed=33):
            assert not db.scan_nonempty(lo, hi)
        for key in empty_point_queries(keys, 400, seed=34):
            assert not db.get(int(key))

    def test_measured_fpr_zero_for_exact_oracle(self, keys):
        """A filter wrapping ground truth must measure FPR 0 — validates the
        harness itself."""
        sorted_keys = keys

        def exact_range(lo, hi):
            idx = int(np.searchsorted(sorted_keys, np.uint64(lo)))
            return idx < sorted_keys.size and int(sorted_keys[idx]) <= hi

        from repro.bench.harness import FilterUnderTest

        oracle = FilterUnderTest("oracle", lambda k: False, exact_range, 0, 0.0)
        queries = empty_range_queries(keys, 300, range_size=1 << 12, seed=35)
        assert measure_range_fpr(oracle, queries).fpr == 0.0


class TestHeadlineOrderings:
    """The paper's Experiment-1/2 orderings at test scale."""

    def test_rosetta_best_points_bloomrf_close(self, keys):
        points = empty_point_queries(keys, 2_000, seed=36)
        fprs = {}
        for name in ("rosetta", "bloomrf", "surf"):
            fut = build_standalone_filter(name, keys, bits_per_key=22, max_range=64)
            fprs[name] = measure_point_fpr(fut, points).fpr
        assert fprs["rosetta"] <= fprs["bloomrf"] + 0.002
        assert fprs["bloomrf"] < 0.01

    def test_bloomrf_wins_medium_ranges_vs_rosetta(self, keys):
        queries = empty_range_queries(keys, 500, range_size=10**6, seed=37)
        fprs = {}
        for name in ("rosetta", "bloomrf"):
            fut = build_standalone_filter(
                name, keys, bits_per_key=18, max_range=10**6
            )
            fprs[name] = measure_range_fpr(fut, queries).fpr
        assert fprs["bloomrf"] < fprs["rosetta"]

    def test_bloomrf_fpr_flat_across_ranges(self, keys):
        """Constant query complexity and bounded FPR from tiny to huge R."""
        rates = []
        for r in (16, 10**4, 10**8):
            fut = build_standalone_filter(
                "bloomrf", keys, bits_per_key=18, max_range=r
            )
            queries = empty_range_queries(keys, 400, range_size=r, seed=38)
            rates.append(measure_range_fpr(fut, queries).fpr)
        assert max(rates) < 0.2


class TestLsmWithEveryPolicy:
    @pytest.mark.parametrize(
        "policy",
        [
            SpecPolicy("bloomrf", bits_per_key=16, max_range=1 << 20),
            SpecPolicy("rosetta", bits_per_key=16, max_range=1 << 20),
            SpecPolicy("surf", bits_per_key=16),
        ],
        ids=["bloomrf", "rosetta", "surf"],
    )
    def test_db_reads_correct_under_policy(self, keys, policy):
        db = LsmDB(policy=policy)
        rng = np.random.default_rng(39)
        db.bulk_load(rng.permutation(keys), num_sstables=4)
        for key in keys[:300]:
            assert db.get(int(key))
        for lo, hi in empty_range_queries(keys, 150, range_size=1 << 16, seed=40):
            assert not db.scan_nonempty(lo, hi)
        # Accounting identity: probes = queries x SSTs for scans + gets
        # that reached the SSTs; every positive is classified.
        stats = db.stats
        assert stats.filter_positives == (
            stats.filter_true_positives + stats.filter_false_positives
        )

    def test_serialization_survives_lsm_round_trip(self, keys):
        policy = SpecPolicy("bloomrf", bits_per_key=16, max_range=1 << 20)
        handle = policy.build(keys)
        restored = policy.deserialize(handle.serialize())
        queries = empty_range_queries(keys, 200, range_size=1 << 10, seed=41)
        for lo, hi in queries:
            assert handle.probe_range(lo, hi) == restored.probe_range(lo, hi)
