"""Public-API surface snapshot (CI gate).

Pins the exported names of ``repro`` and ``repro.api`` so a future PR
cannot silently break the interface: removing or renaming an export fails
here, and *adding* one fails too — forcing the snapshot (and therefore the
review) to acknowledge the new surface.  Update the frozen lists in the
same PR that changes the API, with a CHANGES.md note.
"""

import repro
import repro.api
import repro.serial
import repro.server

REPRO_ALL = [
    "AdvisorReport",
    "AttributeSpec",
    "BloomRF",
    "BloomRFConfig",
    "FilterSpec",
    "FloatBloomRF",
    "MultiAttributeBloomRF",
    "NullFilter",
    "RangeFilter",
    "ShardedBloomRF",
    "ShardedLsmDB",
    "SpecPolicy",
    "Store",
    "StringBloomRF",
    "TuningAdvisor",
    "FprProfile",
    "available_kinds",
    "basic_point_fpr",
    "basic_range_fpr_bound",
    "extended_fpr_profile",
    "filter_from_bytes",
    "float_to_key",
    "key_to_float",
    "make_filter",
    "open_store",
    "register_filter",
    "standard_spec",
    "string_range_keys",
    "string_to_point_key",
    "__version__",
]

API_ALL = [
    "FilterSpec",
    "NullFilter",
    "RangeFilter",
    "Store",
    "available_kinds",
    "filter_from_bytes",
    "make_filter",
    "merge_filters",
    "open_store",
    "register_filter",
    "standard_spec",
]

SERIAL_ALL = [
    "MAGIC",
    "FORMAT_VERSION",
    "FORMAT_VERSION_BLOCKS",
    "SerialError",
    "KIND_BLOOMRF",
    "KIND_BLOOM",
    "KIND_SHARDED_BLOOMRF",
    "KIND_PREFIX_BLOOM",
    "KIND_ROSETTA",
    "KIND_SURF",
    "KIND_CUCKOO",
    "KIND_NONE",
    "KIND_SSTABLE",
    "KIND_STORE",
    "KIND_WAL",
    "KIND_NAMES",
    "pack_frame",
    "unpack_frame",
    "unpack_frame_prefix",
    "peek_kind",
    "map_frame",
    "FrameView",
    "dump_filter",
    "load_filter",
]

SERVER_ALL = [
    "AsyncStoreClient",
    "Coalescer",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServerError",
    "StoreClient",
    "StoreServer",
    "run_server",
]

# The construction surface of the registry: every kind a FilterSpec can
# name.  Removing a kind is an API break; additions must land here.
REGISTERED_KINDS = [
    "bloom",
    "bloomrf",
    "bloomrf-basic",
    "cuckoo",
    "none",
    "prefix-bloom",
    "rosetta",
    "surf",
]


def test_repro_all_snapshot():
    assert sorted(repro.__all__) == sorted(REPRO_ALL)


def test_api_all_snapshot():
    assert sorted(repro.api.__all__) == sorted(API_ALL)


def test_serial_all_snapshot():
    assert sorted(repro.serial.__all__) == sorted(SERIAL_ALL)


def test_server_all_snapshot():
    assert sorted(repro.server.__all__) == sorted(SERVER_ALL)


def test_registered_kinds_snapshot():
    assert sorted(repro.available_kinds()) == sorted(REGISTERED_KINDS)


def test_all_exports_resolve():
    for module in (repro, repro.api, repro.serial, repro.server):
        for name in module.__all__:
            assert getattr(module, name, None) is not None, (
                f"{module.__name__}.{name} is exported but missing"
            )
