"""The bench-regression gate (``scripts/check_bench.py``) as a library.

The gate is CI tooling, so its failure modes are tested directly: a clean
self-comparison passes, a flipped acceptance boolean fails, a guarded
ratio drifting in the bad direction fails (while the good direction and
in-tolerance drift pass), and a missing generated file fails the run.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
SCRIPT = REPO_ROOT / "scripts" / "check_bench.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


COMMITTED = {
    "benchmark": "compaction",
    "mode": "full",
    "bit_identical": True,
    "policies": [
        {"policy": "manual", "write_amp": 1.0, "final_runs": 100,
         "mean_runs_during_ingest": 50.0},
        {"policy": "size-tiered", "write_amp": 3.0, "final_runs": 8,
         "mean_runs_during_ingest": 5.0, "bit_identical_to_manual": True},
    ],
}


def _write(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


def _run(gate, tmp_path, generated: dict, tolerance: float = 4.0) -> int:
    _write(tmp_path / "committed", "BENCH_compaction.json", COMMITTED)
    _write(tmp_path / "generated", "BENCH_compaction.json", generated)
    return gate.main(
        [
            "--generated", str(tmp_path / "generated"),
            "--committed", str(tmp_path / "committed"),
            "--tolerance", str(tolerance),
        ]
    )


def test_self_comparison_passes(gate, tmp_path):
    assert _run(gate, tmp_path, COMMITTED) == 0


def test_flipped_acceptance_boolean_fails(gate, tmp_path):
    broken = json.loads(json.dumps(COMMITTED))
    broken["bit_identical"] = False
    assert _run(gate, tmp_path, broken) == 1


def test_nested_flag_regression_fails(gate, tmp_path):
    broken = json.loads(json.dumps(COMMITTED))
    broken["policies"][1]["bit_identical_to_manual"] = False
    assert _run(gate, tmp_path, broken) == 1


def test_ratio_drift_beyond_tolerance_fails(gate, tmp_path):
    broken = json.loads(json.dumps(COMMITTED))
    broken["policies"][1]["write_amp"] = 3.0 * 4.0 + 1  # past lower-is-better
    assert _run(gate, tmp_path, broken) == 1


def test_ratio_drift_within_tolerance_passes(gate, tmp_path):
    drifted = json.loads(json.dumps(COMMITTED))
    drifted["policies"][1]["write_amp"] = 3.0 * 2.0  # within 4x
    drifted["policies"][1]["final_runs"] = 12
    assert _run(gate, tmp_path, drifted) == 0


def test_improvement_always_passes(gate, tmp_path):
    better = json.loads(json.dumps(COMMITTED))
    better["policies"][1]["write_amp"] = 1.1  # lower-is-better improved a lot
    better["policies"][1]["final_runs"] = 2
    assert _run(gate, tmp_path, better) == 0


def test_missing_generated_file_fails(gate, tmp_path):
    _write(tmp_path / "committed", "BENCH_compaction.json", COMMITTED)
    (tmp_path / "generated").mkdir()
    assert (
        gate.main(
            [
                "--generated", str(tmp_path / "generated"),
                "--committed", str(tmp_path / "committed"),
            ]
        )
        == 1
    )


def test_empty_committed_dir_is_an_error(gate, tmp_path):
    (tmp_path / "committed").mkdir()
    (tmp_path / "generated").mkdir()
    assert (
        gate.main(
            [
                "--generated", str(tmp_path / "generated"),
                "--committed", str(tmp_path / "committed"),
            ]
        )
        == 2
    )


def test_gate_accepts_the_real_committed_artifacts(gate):
    """Self-comparison over the actual repo-root artifacts: the committed
    files must satisfy their own guards (no stale guard patterns)."""
    assert gate.main(
        ["--generated", str(REPO_ROOT), "--committed", str(REPO_ROOT)]
    ) == 0
