"""Unit and property tests for the BitArray substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitarray import BitArray, aligned_bits


class TestBasics:
    def test_initially_zero(self):
        ba = BitArray(100)
        assert ba.count_ones() == 0
        assert len(ba) == 100

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BitArray(0)

    def test_set_and_test(self):
        ba = BitArray(256)
        ba.set_bit(0)
        ba.set_bit(63)
        ba.set_bit(64)
        ba.set_bit(255)
        assert ba.test_bit(0) and ba.test_bit(63) and ba.test_bit(64)
        assert ba.test_bit(255)
        assert not ba.test_bit(1)
        assert ba.count_ones() == 4

    def test_fill_ratio(self):
        ba = BitArray(64)
        for i in range(16):
            ba.set_bit(i)
        assert ba.fill_ratio() == pytest.approx(0.25)

    def test_clear(self):
        ba = BitArray(64)
        ba.set_bit(5)
        ba.clear()
        assert ba.count_ones() == 0

    def test_storage_is_word_aligned(self):
        assert BitArray(65).storage_bits == 128


class TestVectorizedBits:
    @given(
        st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=200)
    )
    @settings(max_examples=50)
    def test_vector_matches_scalar(self, positions):
        scalar = BitArray(1000)
        vector = BitArray(1000)
        for pos in positions:
            scalar.set_bit(pos)
        vector.set_bits(np.array(positions, dtype=np.uint64))
        assert scalar == vector
        probe = np.arange(1000, dtype=np.uint64)
        got = vector.test_bits(probe)
        expected = np.zeros(1000, dtype=bool)
        expected[list(set(positions))] = True
        assert np.array_equal(got, expected)

    def test_duplicate_positions(self):
        ba = BitArray(64)
        ba.set_bits(np.array([7, 7, 7], dtype=np.uint64))
        assert ba.count_ones() == 1


class TestFields:
    def test_read_field_aligned(self):
        ba = BitArray(128)
        ba.set_bit(8)
        ba.set_bit(9)
        assert ba.read_field(8, 8) == 0b11
        assert ba.read_field(15, 8) == 0b11  # same aligned byte
        assert ba.read_field(16, 8) == 0

    def test_or_field(self):
        ba = BitArray(128)
        ba.or_field(70, 8, 0b1010)
        # Field containing bit 70 starts at 64.
        assert ba.test_bit(65) and ba.test_bit(67)
        assert not ba.test_bit(64)

    def test_full_word_field(self):
        ba = BitArray(128)
        ba.set_bit(64)
        ba.set_bit(127)
        assert ba.read_field(100, 64) == (1 << 63) | 1

    def test_read_fields_vectorized(self):
        ba = BitArray(256)
        for pos in (3, 12, 100):
            ba.set_bit(pos)
        got = ba.read_fields(np.array([0, 8, 96], dtype=np.uint64), 8)
        assert list(got) == [0b1000, 1 << 4, 1 << 4]

    def test_read_fields_rejects_bad_width(self):
        ba = BitArray(64)
        with pytest.raises(ValueError):
            ba.read_fields(np.zeros(1, dtype=np.uint64), 3)

    @given(
        st.integers(min_value=0, max_value=511),
        st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
    )
    def test_field_view_matches_bits(self, pos, width):
        ba = BitArray(512)
        ba.set_bit(pos)
        field = ba.read_field(pos, width)
        offset = pos % width
        assert (field >> offset) & 1 == 1


class TestAnyInRange:
    def test_empty_interval(self):
        ba = BitArray(128)
        assert not ba.any_in_range(10, 5)

    def test_single_word(self):
        ba = BitArray(128)
        ba.set_bit(10)
        assert ba.any_in_range(10, 10)
        assert ba.any_in_range(0, 63)
        assert not ba.any_in_range(11, 63)
        assert not ba.any_in_range(0, 9)

    def test_cross_word(self):
        ba = BitArray(256)
        ba.set_bit(130)
        assert ba.any_in_range(0, 255)
        assert ba.any_in_range(64, 191)
        assert not ba.any_in_range(0, 129)
        assert not ba.any_in_range(131, 255)

    @given(
        st.lists(st.integers(min_value=0, max_value=299), max_size=10),
        st.integers(min_value=0, max_value=299),
        st.integers(min_value=0, max_value=299),
    )
    @settings(max_examples=100)
    def test_matches_naive(self, positions, a, b):
        lo, hi = min(a, b), max(a, b)
        ba = BitArray(300)
        for pos in positions:
            ba.set_bit(pos)
        expected = any(lo <= p <= hi for p in positions)
        assert ba.any_in_range(lo, hi) == expected


class TestAnyInRanges:
    """Vectorized any_in_range (rank-based) matches the scalar one."""

    @given(
        st.lists(st.integers(min_value=0, max_value=299), max_size=12),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=299),
                st.integers(min_value=0, max_value=299),
            ),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=100)
    def test_matches_scalar(self, positions, raw_ranges):
        ba = BitArray(300)
        for pos in positions:
            ba.set_bit(pos)
        ranges = [(min(a, b), max(a, b)) for a, b in raw_ranges]
        lo = np.array([r[0] for r in ranges], dtype=np.uint64)
        hi = np.array([r[1] for r in ranges], dtype=np.uint64)
        got = ba.any_in_ranges(lo, hi)
        expected = [ba.any_in_range(a, b) for a, b in ranges]
        assert got.tolist() == expected

    def test_empty_input(self):
        ba = BitArray(64)
        got = ba.any_in_ranges(
            np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.uint64)
        )
        assert got.shape == (0,) and got.dtype == np.bool_

    def test_last_bit_boundary(self):
        ba = BitArray(192)
        ba.set_bit(191)
        got = ba.any_in_ranges(
            np.array([0, 191, 0], dtype=np.uint64),
            np.array([190, 191, 191], dtype=np.uint64),
        )
        assert got.tolist() == [False, True, True]


class TestRunLengths:
    def test_zero_runs(self):
        ba = BitArray(16)
        for pos in (3, 4, 10):
            ba.set_bit(pos)
        # bits: 000 11 00000 1 00000  -> zero runs 3, 5, 5
        assert sorted(ba.zero_run_lengths().tolist()) == [3, 5, 5]

    def test_one_runs(self):
        ba = BitArray(8)
        for pos in (0, 1, 5):
            ba.set_bit(pos)
        assert sorted(ba.one_run_lengths().tolist()) == [1, 2]

    def test_all_zero(self):
        ba = BitArray(64)
        assert ba.zero_run_lengths().tolist() == [64]
        assert ba.one_run_lengths().tolist() == []


class TestSerialization:
    def test_round_trip(self):
        ba = BitArray(200)
        for pos in (0, 1, 63, 64, 199):
            ba.set_bit(pos)
        restored = BitArray.from_bytes(ba.to_bytes(), 200)
        assert restored == ba

    def test_length_mismatch_rejected(self):
        ba = BitArray(64)
        with pytest.raises(ValueError):
            BitArray.from_bytes(ba.to_bytes(), 256)

    def test_equality_needs_same_size(self):
        a, b = BitArray(64), BitArray(128)
        assert a != b


class TestAlignedBits:
    def test_rounds_to_words(self):
        assert aligned_bits(100, 8) == 128
        assert aligned_bits(64, 64) == 64

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            aligned_bits(100, 3)
