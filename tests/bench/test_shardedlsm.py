"""Perf smoke for the sharded LSM engine (CI tooling).

Runs ``benchmarks/bench_ops_shardedlsm.py --quick``: asserts the exactness
ladder (sharded answers bit-identical to the unsharded store, merged
``IOStats`` equal to the per-shard sum, filter-block serialization
round-trip bit-exact) and a soft speedup floor at 4 shards.  Writes its
JSON to a temp path so it never clobbers the repo-root
``BENCH_shardedlsm.json`` (that trajectory artifact holds the *full*-mode
run; refresh it with ``PYTHONPATH=src python
benchmarks/bench_ops_shardedlsm.py``).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.bench, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_ops_shardedlsm.py"


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_ops_shardedlsm", BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quick_mode_sharded_exact_and_fast(tmp_path):
    bench = _load_bench_module()
    out = tmp_path / "BENCH_shardedlsm.json"
    exit_code = bench.main(["--quick", "--output", str(out)])
    assert exit_code == 0, "quick perf smoke failed (mismatch or below floor)"
    result = json.loads(out.read_text())
    assert result["mode"] == "quick"
    assert result["bit_identical"] is True
    assert result["stats_merged_identical"] is True
    assert result["serialization_roundtrip_bit_exact"] is True
    assert result["open_store_matches_direct"] is True
    shard_counts = [row["num_shards"] for row in result["sharded"]]
    assert 4 in shard_counts and 1 in shard_counts
