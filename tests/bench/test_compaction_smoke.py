"""Perf smoke for background compaction (CI tooling).

Runs ``benchmarks/bench_ops_compaction.py --quick``: the same write burst
into manual / size-tiered / leveled stores, asserting bit-identical
answers and that every background policy actually bounded the run count.
Writes its JSON to a temp path so it never clobbers the repo-root
``BENCH_compaction.json`` (that trajectory artifact holds the *full*-mode
run; refresh it with ``PYTHONPATH=src python
benchmarks/bench_ops_compaction.py``).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.bench, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_ops_compaction.py"


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_ops_compaction", BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quick_mode_compaction_exact_and_bounded(tmp_path):
    bench = _load_bench_module()
    out = tmp_path / "BENCH_compaction.json"
    exit_code = bench.main(["--quick", "--output", str(out)])
    assert exit_code == 0, "quick compaction smoke failed"
    result = json.loads(out.read_text())
    assert result["mode"] == "quick"
    assert result["bit_identical"] is True
    assert result["compaction_bounds_runs"] is True
    names = [row["policy"] for row in result["policies"]]
    assert names == ["manual", "size-tiered", "leveled"]
    manual = result["policies"][0]
    assert manual["write_amp"] == 1.0  # no merges on the manual store
    for row in result["policies"][1:]:
        assert row["bit_identical_to_manual"] is True
        assert row["merges"] > 0
        assert row["final_runs"] < manual["final_runs"]
        assert row["write_amp"] > 1.0
        # The tail-latency curve exists and is ordered.
        tail = row["get_latency_during_compaction"]
        assert tail["p50_ms"] <= tail["p95_ms"] <= tail["p99_ms"] <= tail["max_ms"]
