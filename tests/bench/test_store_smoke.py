"""Perf smoke for the persistent on-disk store (CI tooling).

Runs ``benchmarks/bench_ops_store.py --quick``: ingest → close → reopen →
query for the unsharded and 4-shard engines, asserting reopened answers
*and* IOStats counters bit-identical to an in-memory engine fed the same
operations.  Writes its JSON to a temp path so it never clobbers the
repo-root ``BENCH_store.json`` (that trajectory artifact holds the
*full*-mode run; refresh it with ``PYTHONPATH=src python
benchmarks/bench_ops_store.py``).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.bench, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_ops_store.py"


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_ops_store", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quick_mode_store_reopen_exact(tmp_path):
    bench = _load_bench_module()
    out = tmp_path / "BENCH_store.json"
    exit_code = bench.main(["--quick", "--output", str(out)])
    assert exit_code == 0, "quick store smoke failed (reopen mismatch)"
    result = json.loads(out.read_text())
    assert result["mode"] == "quick"
    assert result["reopen_bit_identical"] is True
    assert result["reopen_counters_identical"] is True
    shard_counts = [row["shards"] for row in result["engines"]]
    assert shard_counts == [1, 4]
    for row in result["engines"]:
        assert row["num_runs"] > 0
        assert row["disk_bytes"] > 0
