"""Perf smoke for the batched range-query engine (CI tooling).

Runs ``benchmarks/bench_ops_rangebatch.py --quick``: asserts batch
throughput is at least scalar throughput and that the results are
bit-identical.  Writes its JSON to a temp path so it never clobbers the
repo-root ``BENCH_rangebatch.json`` (that trajectory artifact holds the
*full*-mode run; refresh it with
``PYTHONPATH=src python benchmarks/bench_ops_rangebatch.py``).
"""

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_ops_rangebatch.py"


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_ops_rangebatch", BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quick_mode_batch_beats_scalar(tmp_path):
    bench = _load_bench_module()
    out = tmp_path / "BENCH_rangebatch.json"
    exit_code = bench.main(["--quick", "--output", str(out)])
    assert exit_code == 0, "quick perf smoke failed (batch < scalar or mismatch)"
    result = json.loads(out.read_text())
    assert result["bit_identical"] is True
    assert result["batch_qps"] >= result["scalar_qps"]
    assert result["mode"] == "quick"
