"""Perf smoke for the write-ahead-log ingest tax (CI tooling).

Runs ``benchmarks/bench_ops_wal.py --quick``: streamed ingest under every
``wal_sync`` mode plus the group-commit sweep, asserting the acceptance
bound that batched group commit stays within 3x of running with fsync
off.  Writes its JSON to a temp path so it never clobbers the repo-root
``BENCH_wal.json`` (that trajectory artifact holds the *full*-mode run;
refresh it with ``PYTHONPATH=src python benchmarks/bench_ops_wal.py``).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.bench, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_ops_wal.py"


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_ops_wal", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quick_mode_wal_tax_bounded(tmp_path):
    bench = _load_bench_module()
    out = tmp_path / "BENCH_wal.json"
    exit_code = bench.main(["--quick", "--output", str(out)])
    assert exit_code == 0, "quick WAL smoke failed (group commit too slow)"
    result = json.loads(out.read_text())
    assert result["mode"] == "quick"
    assert result["batch_within_3x_of_off"] is True
    by_engine = {}
    for row in result["sync_modes"]:
        by_engine.setdefault(row["shards"], []).append(row["wal_sync"])
    assert by_engine == {1: ["off", "batch", "always"], 4: ["off", "batch", "always"]}
    for row in result["sync_modes"]:
        assert row["ingest_keys_per_second"] > 0
        if row["wal_sync"] == "off":
            assert row["wal_fsyncs"] == 0
    sweep = result["group_commit_sweep"]
    assert [row["wal_group_commit"] for row in sweep] == [1, 16, 256, 4096]
    # more batching, (weakly) fewer fsyncs
    fsyncs = [row["wal_fsyncs"] for row in sweep]
    assert fsyncs == sorted(fsyncs, reverse=True)
