"""Tests for the bench harness and the Fig. 8 theory curves."""

import pytest

from repro.bench.harness import (
    build_standalone_filter,
    measure_point_fpr,
    measure_range_fpr,
    measure_throughput,
    print_table,
    scaled,
)
from repro.bench.theory import (
    bloomrf_bits_for_range_fpr,
    carter_point_lower_bound,
    goswami_range_lower_bound,
    rosetta_first_cut_bits,
    rosetta_first_cut_fpr,
)
from repro.workloads import empty_point_queries, empty_range_queries, uniform_keys


class TestTheory:
    def test_carter_bound(self):
        assert carter_point_lower_bound(0.01) == pytest.approx(6.64, abs=0.01)
        with pytest.raises(ValueError):
            carter_point_lower_bound(0)

    def test_goswami_reduces_to_carter_for_points(self):
        assert goswami_range_lower_bound(0.01, 1, 10**6) == pytest.approx(
            carter_point_lower_bound(0.01)
        )

    def test_goswami_grows_with_range(self):
        values = [
            goswami_range_lower_bound(0.01, r, 10**6) for r in (16, 32, 64)
        ]
        assert values == sorted(values)

    def test_rosetta_space_example(self):
        """Sect. 6: FPR 2% needs ~17 b/k at R=2^6, ~22 at 2^10, ~28 at 2^14."""
        assert rosetta_first_cut_bits(0.02, 2**6) == pytest.approx(17, abs=1.5)
        assert rosetta_first_cut_bits(0.02, 2**10) == pytest.approx(22, abs=1.5)
        assert rosetta_first_cut_bits(0.02, 2**14) == pytest.approx(28, abs=1.5)

    def test_rosetta_fpr_inverse(self):
        bits = rosetta_first_cut_bits(0.02, 64)
        assert rosetta_first_cut_fpr(bits, 64) == pytest.approx(0.02, rel=0.05)

    def test_lower_bound_below_constructions(self):
        """Fig. 8's ordering: lower bound <= bloomRF <= Rosetta for ranges."""
        for fpr in (0.005, 0.01, 0.02):
            for r in (16, 32, 64):
                lower = goswami_range_lower_bound(fpr, r, 10**7)
                rosetta = rosetta_first_cut_bits(fpr, r)
                assert lower < rosetta

    def test_bloomrf_improves_over_rosetta_for_larger_ranges(self):
        """Sect. 6: bloomRF needs fewer bits than Rosetta, more so as R
        grows (eq. 6 is a model, not a worst-case bound, so it is only
        compared against the Rosetta construction, not the lower bound)."""
        n = 10**7
        gaps = []
        for r in (2**6, 2**10, 2**14):
            bloomrf = bloomrf_bits_for_range_fpr(0.02, r, n)
            rosetta = rosetta_first_cut_bits(0.02, r)
            assert bloomrf < rosetta
            gaps.append(rosetta - bloomrf)
        assert gaps == sorted(gaps), "advantage must grow with R"


class TestHarness:
    @pytest.fixture(scope="class")
    def keys(self):
        return uniform_keys(8_000, seed=21)

    @pytest.mark.parametrize(
        "name", ["bloomrf", "bloomrf-basic", "rosetta", "surf", "bloom", "cuckoo"]
    )
    def test_build_standalone(self, keys, name):
        fut = build_standalone_filter(name, keys, bits_per_key=14, max_range=1 << 10)
        assert fut.size_bits > 0
        assert fut.build_time_s > 0
        assert fut.point(int(keys[0]))

    def test_unknown_filter(self, keys):
        with pytest.raises(ValueError):
            build_standalone_filter("bogus", keys, 10, 10)

    def test_measure_range_fpr(self, keys):
        fut = build_standalone_filter("bloomrf", keys, 16, 1 << 10)
        queries = empty_range_queries(keys, 300, range_size=64, seed=22)
        measured = measure_range_fpr(fut, queries)
        assert 0 <= measured.fpr <= 1
        assert measured.queries == 300
        assert measured.queries_per_second > 0

    def test_measure_point_fpr(self, keys):
        fut = build_standalone_filter("bloom", keys, 12, 1)
        points = empty_point_queries(keys, 300, seed=23)
        measured = measure_point_fpr(fut, points)
        assert measured.fpr < 0.1

    @pytest.mark.parametrize("name", ["bloomrf", "rosetta", "bloom"])
    def test_measure_point_fpr_batch_matches_scalar(self, keys, name):
        """The default batched measurement counts exactly what the scalar
        loop counts (the bulk interfaces are bit-identical)."""
        fut = build_standalone_filter(name, keys, 14, 1 << 10)
        assert fut.point_many is not None
        points = empty_point_queries(keys, 400, seed=24)
        batched = measure_point_fpr(fut, points)
        scalar = measure_point_fpr(fut, points, batch=False)
        assert batched.positives == scalar.positives
        assert batched.queries == scalar.queries == 400

    def test_measure_throughput(self):
        counter = []
        t = measure_throughput("noop", lambda: counter.append(1), 100)
        assert t.operations == 100 == len(counter)
        assert t.ops_per_second > 0

    def test_print_table(self, capsys):
        sink = []
        text = print_table(
            "demo", ["a", "b"], [[1, 0.5], ["x", 1.23456]], sink=sink
        )
        out = capsys.readouterr().out
        assert "demo" in out and "1.2346" in out
        assert sink == [text]

    def test_scaled(self, monkeypatch):
        assert scaled(100) >= 1
