"""Perf smoke for the batched point-lookup engine (CI tooling).

Runs ``benchmarks/bench_ops_pointbatch.py --quick``: asserts batch
throughput is at least scalar throughput and that answers *and stats
accounting* are identical to the scalar ``get`` loop.  Writes its JSON to a
temp path so it never clobbers the repo-root ``BENCH_pointbatch.json``
(that trajectory artifact holds the *full*-mode run; refresh it with
``PYTHONPATH=src python benchmarks/bench_ops_pointbatch.py``).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.bench, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_ops_pointbatch.py"


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_ops_pointbatch", BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quick_mode_batch_beats_scalar(tmp_path):
    bench = _load_bench_module()
    out = tmp_path / "BENCH_pointbatch.json"
    exit_code = bench.main(["--quick", "--output", str(out)])
    assert exit_code == 0, "quick perf smoke failed (batch < scalar or mismatch)"
    result = json.loads(out.read_text())
    assert result["bit_identical"] is True
    assert result["accounting_identical"] is True
    assert result["sharded_sound"] is True
    assert result["batch_qps"] >= result["scalar_qps"]
    assert result["mode"] == "quick"
