"""The one filter API (``repro.api``): protocol, specs, registry, facade.

The acceptance ladder for the API redesign:

* every registered kind satisfies the :class:`~repro.api.RangeFilter`
  protocol and passes the same conformance + serialization round-trip
  suite (Hypothesis: build -> insert -> ``to_bytes`` -> ``from_bytes``
  answers point and range batches bit-identically);
* ``SpecPolicy`` answers and IOStats are bit-identical to the
  pre-redesign per-filter policy classes (which remain importable as
  deprecated aliases);
* ``open_store`` returns the engines behind one ``Store`` interface with
  answers identical to direct construction.
"""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.api import (
    FilterSpec,
    NullFilter,
    RangeFilter,
    Store,
    available_kinds,
    filter_from_bytes,
    make_filter,
    open_store,
    register_filter,
    standard_spec,
)
from repro.lsm import LsmDB, ShardedLsmDB, SpecPolicy
from repro.lsm.filter_policy import (
    BloomPolicy,
    BloomRFPolicy,
    NoFilterPolicy,
    PrefixBloomPolicy,
    RosettaPolicy,
    SuRFPolicy,
)
from repro.shard import ShardedBloomRF

U64 = (1 << 64) - 1


# ----------------------------------------------------------------------
# FilterSpec: validation + JSON round-trip
# ----------------------------------------------------------------------
class TestFilterSpec:
    def test_json_round_trip(self):
        spec = FilterSpec("bloomrf", {"bits_per_key": 16, "max_range": 1 << 20})
        assert FilterSpec.from_json(spec.to_json()) == spec
        assert FilterSpec.from_dict(spec.to_dict()) == spec

    def test_with_params_derives_without_mutating(self):
        spec = FilterSpec("bloom", {"bits_per_key": 10})
        derived = spec.with_params(bits_per_key=12, seed=7)
        assert spec.params == {"bits_per_key": 10}
        assert derived.params == {"bits_per_key": 12, "seed": 7}
        assert derived.kind == "bloom"

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            FilterSpec("")
        with pytest.raises(ValueError):
            FilterSpec(123)

    def test_rejects_non_json_params(self):
        with pytest.raises(ValueError, match="JSON"):
            FilterSpec("bloom", {"seed": object()})
        with pytest.raises(ValueError):
            FilterSpec("bloom", {7: 1})

    def test_params_are_defensively_copied(self):
        params = {"bits_per_key": 10}
        spec = FilterSpec("bloom", params)
        params["bits_per_key"] = 99
        assert spec.params["bits_per_key"] == 10


# ----------------------------------------------------------------------
# registry: errors and extension
# ----------------------------------------------------------------------
class TestRegistry:
    def test_available_kinds_cover_all_six_filters(self):
        kinds = set(available_kinds())
        assert {
            "bloomrf", "bloomrf-basic", "bloom", "prefix-bloom",
            "rosetta", "surf", "cuckoo", "none",
        } <= kinds

    def test_unknown_kind_lists_registered_ones(self):
        with pytest.raises(ValueError, match="registered kinds.*bloomrf"):
            make_filter(FilterSpec("bogus"))

    def test_unknown_param_lists_accepted_ones(self):
        with pytest.raises(ValueError, match="accepted:.*bits_per_key"):
            make_filter(
                FilterSpec("bloomrf", {"wat": 1}), n_keys=10
            )

    def test_load_only_kind_rejected(self):
        with pytest.raises(ValueError, match="load-only"):
            make_filter(FilterSpec("sharded-bloomrf"))
        with pytest.raises(ValueError):
            SpecPolicy("sharded-bloomrf")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_filter("bloomrf", lambda **kw: None)

    def test_serial_kind_hijack_rejected(self):
        """A registration cannot steal another kind's frame loader."""
        from repro.serial import KIND_BLOOMRF

        with pytest.raises(ValueError, match="hijack"):
            register_filter(
                "evil",
                lambda n_keys=None: NullFilter(),
                serial_kind=KIND_BLOOMRF,
                from_bytes=lambda data: "HIJACKED",
            )
        # The bloomrf loader still answers for its frames.
        spec = FilterSpec("bloomrf", {"bits_per_key": 12, "max_range": 1 << 10})
        filt = make_filter(spec, n_keys=10)
        filt.insert_many(np.arange(10, dtype=np.uint64))
        assert not isinstance(filter_from_bytes(filt.to_bytes()), str)

    def test_third_party_registration(self):
        register_filter(
            "test-null",
            lambda n_keys=None: NullFilter(),
            description="test-only kind",
            replace_existing=True,
        )
        try:
            filt = make_filter(FilterSpec("test-null"), n_keys=5)
            assert isinstance(filt, RangeFilter)
            assert "test-null" in available_kinds()
        finally:
            from repro.api import _REGISTRY

            _REGISTRY.pop("test-null", None)


# ----------------------------------------------------------------------
# protocol conformance + serialization ladder (every registered kind)
# ----------------------------------------------------------------------
def _probe_batches(keys: np.ndarray):
    """Probe sets mixing inserted keys, near misses, and far misses."""
    points = np.unique(
        np.concatenate(
            [keys[:64], keys[:64] + np.uint64(1), np.arange(0, 4096, 97, dtype=np.uint64)]
        )
    )
    hi = points + np.minimum(np.uint64(U64) - points, np.uint64(900))
    bounds = np.stack([points, hi], axis=1)
    return points, bounds


@pytest.mark.parametrize("kind", available_kinds())
def test_protocol_conformance(kind):
    spec = standard_spec(kind, bits_per_key=14, max_range=1 << 10, seed=5)
    filt = make_filter(spec, n_keys=500)
    assert isinstance(filt, RangeFilter)
    keys = np.arange(1_000, 2_000, 2, dtype=np.uint64)
    filt.insert_many(keys)
    filt.insert(4_242)
    points, bounds = _probe_batches(keys)
    # No false negatives on inserted keys; bulk == scalar bit for bit.
    assert filt.contains_point(1_000) and filt.contains_point(4_242)
    assert filt.contains_point_many(keys[:32]).all()
    assert bool(filt.contains_range(1_000, 1_004)) is True
    got_points = filt.contains_point_many(points)
    got_bounds = filt.contains_range_many(bounds)
    assert got_points.dtype == bool and got_bounds.dtype == bool
    scalar_points = np.array(
        [filt.contains_point(int(p)) for p in points[:50]], dtype=bool
    )
    assert np.array_equal(got_points[:50], scalar_points)
    scalar_bounds = np.array(
        [filt.contains_range(int(lo), int(hi)) for lo, hi in bounds[:50]],
        dtype=bool,
    )
    assert np.array_equal(got_bounds[:50], scalar_bounds)
    assert filt.size_bits >= 0
    # Scalar and bulk forms agree on rejecting inverted ranges too.
    with pytest.raises(ValueError, match="empty query range"):
        filt.contains_range(9, 4)
    with pytest.raises(ValueError, match="empty query range"):
        filt.contains_range_many(np.array([[9, 4]], dtype=np.uint64))


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(available_kinds()),
    keys=st.lists(
        st.integers(min_value=0, max_value=U64),
        min_size=1,
        max_size=150,
        unique=True,
    ),
    bits_per_key=st.sampled_from([10.0, 14.0, 18.0]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_registry_serialization_ladder(kind, keys, bits_per_key, seed):
    """make_filter -> insert -> to_bytes -> from_bytes answers identically."""
    spec = standard_spec(
        kind, bits_per_key=bits_per_key, max_range=1 << 12, seed=seed
    )
    filt = make_filter(spec, n_keys=len(keys))
    filt.insert_many(np.array(keys, dtype=np.uint64))
    blob = filt.to_bytes()
    restored = filter_from_bytes(blob)
    points, bounds = _probe_batches(np.array(sorted(keys), dtype=np.uint64))
    assert np.array_equal(
        restored.contains_point_many(points), filt.contains_point_many(points)
    )
    assert np.array_equal(
        restored.contains_range_many(bounds), filt.contains_range_many(bounds)
    )
    assert restored.size_bits == filt.size_bits
    # Serialization is deterministic: a second trip emits the same bytes.
    assert restored.to_bytes() == blob


# ----------------------------------------------------------------------
# SpecPolicy: bit-identical to the pre-redesign policy classes
# ----------------------------------------------------------------------
def _drive(db: LsmDB, keys: np.ndarray):
    db.put_many(keys)
    db.flush()
    points = np.concatenate(
        [keys[::3], np.arange(1, 5_000, 13, dtype=np.uint64)]
    )
    lo = np.arange(0, 60_000, 577, dtype=np.uint64)
    bounds = np.stack([lo, lo + np.uint64(200)], axis=1)
    got = db.get_many(points)
    scanned = db.scan_nonempty_many(bounds)
    return got, scanned, db.stats.counters()


class TestSpecPolicyEquivalence:
    @pytest.mark.parametrize(
        "kind,params",
        [
            ("bloomrf", {"bits_per_key": 14, "max_range": 1 << 16}),
            ("bloomrf-basic", {"bits_per_key": 14}),
            ("bloom", {"bits_per_key": 14}),
            ("prefix-bloom", {"bits_per_key": 14, "expected_range": 1 << 8}),
            ("rosetta", {"bits_per_key": 14, "max_range": 1 << 10}),
            ("surf", {"bits_per_key": 14}),
            ("none", {}),
        ],
    )
    def test_store_answers_and_iostats_match_old_policies(self, kind, params):
        """SpecPolicy == deprecated policy class, answers and accounting."""
        legacy_ctor = {
            "bloomrf": lambda: BloomRFPolicy(
                bits_per_key=14, max_range=1 << 16
            ),
            "bloomrf-basic": lambda: BloomRFPolicy(bits_per_key=14, basic=True),
            "bloom": lambda: BloomPolicy(bits_per_key=14),
            "prefix-bloom": lambda: PrefixBloomPolicy(
                bits_per_key=14, expected_range=1 << 8
            ),
            "rosetta": lambda: RosettaPolicy(bits_per_key=14, max_range=1 << 10),
            "surf": lambda: SuRFPolicy(bits_per_key=14),
            "none": lambda: NoFilterPolicy(),
        }[kind]
        rng = np.random.default_rng(41)
        keys = rng.integers(0, 50_000, 4_000, dtype=np.uint64)
        new_db = LsmDB(policy=SpecPolicy(kind, **params), memtable_capacity=512)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            old_db = LsmDB(policy=legacy_ctor(), memtable_capacity=512)
        new_got, new_scanned, new_stats = _drive(new_db, keys)
        old_got, old_scanned, old_stats = _drive(old_db, keys)
        assert np.array_equal(new_got, old_got)
        assert np.array_equal(new_scanned, old_scanned)
        assert new_stats == old_stats

    def test_lsmdb_accepts_filterspec_directly(self):
        spec = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})
        db = LsmDB(policy=spec)
        assert isinstance(db.policy, SpecPolicy)
        assert db.policy.spec == spec
        keys = np.arange(0, 3_000, 3, dtype=np.uint64)
        db.put_many(keys)
        db.flush()
        assert db.get_many(keys[:100]).all()

    def test_merge_handles_unions_same_config_blocks(self):
        policy = SpecPolicy("bloomrf", bits_per_key=14, max_range=1 << 10)
        a = policy.build(np.arange(0, 500, dtype=np.uint64))
        b = policy.build(np.arange(500, 1_000, dtype=np.uint64))
        merged = policy.merge_handles([a, b])
        assert merged is not None
        assert merged.probe_point_many(
            np.arange(0, 1_000, 7, dtype=np.uint64)
        ).all()
        # Different geometry (different key counts tune differently) or a
        # kind without word-level union -> None, caller rebuilds.
        c = policy.build(np.arange(0, 50_000, dtype=np.uint64))
        assert policy.merge_handles([a, c]) is None
        surf_policy = SpecPolicy("surf", bits_per_key=14)
        handles = [
            surf_policy.build(np.arange(100, dtype=np.uint64)),
            surf_policy.build(np.arange(100, 200, dtype=np.uint64)),
        ]
        assert surf_policy.merge_handles(handles) is None

    def test_deserialize_round_trips_any_kind(self):
        for kind in ("bloomrf", "rosetta", "surf", "cuckoo", "prefix-bloom"):
            policy = SpecPolicy(standard_spec(kind, bits_per_key=14))
            keys = np.arange(10, 900, 5, dtype=np.uint64)
            handle = policy.build(keys)
            restored = policy.deserialize(handle.serialize())
            assert np.array_equal(
                restored.probe_point_many(keys), handle.probe_point_many(keys)
            )


# ----------------------------------------------------------------------
# deprecated policy aliases: warn, but behave identically
# ----------------------------------------------------------------------
class TestDeprecatedAliases:
    @pytest.mark.parametrize(
        "ctor,kind",
        [
            (lambda: BloomRFPolicy(bits_per_key=16, max_range=1 << 16), "bloomrf"),
            (lambda: BloomRFPolicy(bits_per_key=16, basic=True), "bloomrf-basic"),
            (lambda: BloomPolicy(bits_per_key=16), "bloom"),
            (lambda: PrefixBloomPolicy(bits_per_key=16, expected_range=256),
             "prefix-bloom"),
            (lambda: RosettaPolicy(bits_per_key=16, max_range=1 << 10), "rosetta"),
            (lambda: SuRFPolicy(bits_per_key=16), "surf"),
            (lambda: NoFilterPolicy(), "none"),
        ],
    )
    def test_warns_and_is_a_specpolicy(self, ctor, kind):
        with pytest.warns(DeprecationWarning, match="deprecated.*SpecPolicy"):
            policy = ctor()
        assert isinstance(policy, SpecPolicy)
        assert policy.spec.kind == kind

    def test_alias_builds_identical_filter_blocks(self):
        keys = np.arange(0, 2_000, 2, dtype=np.uint64)
        with pytest.warns(DeprecationWarning):
            old = BloomRFPolicy(bits_per_key=16, max_range=1 << 16).build(keys)
        new = SpecPolicy(
            "bloomrf", bits_per_key=16, max_range=1 << 16
        ).build(keys)
        assert old.serialize() == new.serialize()  # words, bit for bit


# ----------------------------------------------------------------------
# open_store facade
# ----------------------------------------------------------------------
class TestOpenStore:
    def test_unsharded_store_is_lsmdb_behind_store_protocol(self):
        db = open_store(
            filter=FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})
        )
        assert isinstance(db, LsmDB)
        assert isinstance(db, Store)
        with db:
            keys = np.arange(0, 2_000, 2, dtype=np.uint64)
            db.put_many(keys)
            assert db.get_many(keys[:64]).all()

    def test_sharded_store_matches_direct_construction(self):
        spec = FilterSpec("bloomrf", {"bits_per_key": 12, "max_range": 1 << 16})
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 1 << 64, 5_000, dtype=np.uint64)
        points = rng.integers(0, 1 << 64, 1_000, dtype=np.uint64)
        with open_store(
            filter=spec, shards=4, partition="range", memtable_capacity=512
        ) as facade, ShardedLsmDB(
            policy=SpecPolicy(spec),
            num_shards=4,
            partition="range",
            memtable_capacity=512,
        ) as direct:
            assert isinstance(facade, ShardedLsmDB)
            assert isinstance(facade, Store)
            facade.put_many(keys)
            direct.put_many(keys)
            assert np.array_equal(
                facade.get_many(points), direct.get_many(points)
            )
            assert facade.stats.counters() == direct.stats.counters()

    def test_default_filter_is_none(self):
        db = open_store()
        assert db.policy.spec.kind == "none"

    def test_per_shard_specs(self):
        """Per-shard sizing: each shard can run its own filter config."""
        specs = [
            FilterSpec("bloomrf", {"bits_per_key": 10, "max_range": 1 << 10}),
            FilterSpec("bloomrf", {"bits_per_key": 20, "max_range": 1 << 10}),
        ]
        with open_store(filter=specs, shards=2, partition="range") as db:
            keys = np.arange(0, 1 << 63, 1 << 53, dtype=np.uint64)
            db.put_many(keys)
            db.flush()
            assert db.get_many(keys).all()
            per_shard = [shard.policy.spec for shard in db.shards]
            assert per_shard == specs
        with pytest.raises(ValueError, match="per-shard"):
            open_store(filter=specs, shards=3)

    def test_path_opens_a_persistent_store(self, tmp_path):
        """open_store(path=...) creates, persists, and reopens on disk."""
        spec = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})
        keys = np.arange(0, 4_000, 2, dtype=np.uint64)
        with open_store(
            path=tmp_path / "db", filter=spec, memtable_capacity=512
        ) as db:
            db.put_many(keys)
            live = db.get_many(keys)
        with open_store(path=tmp_path / "db") as reopened:
            assert isinstance(reopened, LsmDB)
            assert isinstance(reopened, Store)
            assert reopened.policy.spec == spec
            assert np.array_equal(reopened.get_many(keys), live)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            open_store(shards=0)


# ----------------------------------------------------------------------
# ShardedBloomRF.from_spec (spec-driven shard sets, per-shard sizing)
# ----------------------------------------------------------------------
class TestShardedFromSpec:
    def test_total_sizing_reproduces_from_keys(self):
        keys = np.arange(0, 60_000, 20, dtype=np.uint64)
        spec = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 16})
        with ShardedBloomRF.from_spec(
            spec, num_shards=3, partition="range", n_keys=keys.size
        ) as sharded:
            sharded.insert_many(keys)
            with ShardedBloomRF.from_keys(
                keys,
                num_shards=3,
                partition="range",
                bits_per_key=14,
                max_range=1 << 16,
            ) as reference:
                assert sharded.config == reference.config
                assert sharded.merge()._bits == reference.merge()._bits

    def test_per_shard_sizing_shrinks_the_config(self):
        spec = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 16})
        with ShardedBloomRF.from_spec(
            spec, num_shards=4, n_keys=40_000
        ) as total, ShardedBloomRF.from_spec(
            spec, num_shards=4, n_keys=40_000, per_shard_sizing=True
        ) as per_shard:
            assert per_shard.size_bits < total.size_bits
            # All shards still share one config: dispatch + merge work.
            keys = np.arange(0, 40_000, dtype=np.uint64)
            per_shard.insert_many(keys)
            assert per_shard.contains_point_many(keys[:500]).all()
            assert per_shard.merge().contains_point(100)

    def test_rejects_non_bloomrf_kinds(self):
        with pytest.raises(TypeError, match="bloomRF"):
            ShardedBloomRF.from_spec(
                FilterSpec("bloom", {"bits_per_key": 12}), num_shards=2, n_keys=100
            )

    def test_needs_n_keys(self):
        with pytest.raises(ValueError, match="n_keys"):
            ShardedBloomRF.from_spec(FilterSpec("bloomrf"), num_shards=2)


# ----------------------------------------------------------------------
# package surface sanity (detailed snapshot lives in test_api_surface.py)
# ----------------------------------------------------------------------
def test_top_level_exports_exist():
    for name in (
        "FilterSpec", "RangeFilter", "Store", "SpecPolicy", "open_store",
        "make_filter", "available_kinds", "register_filter",
        "filter_from_bytes", "standard_spec",
    ):
        assert hasattr(repro, name), name
