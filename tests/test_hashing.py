"""Tests for the hashing substrate (scalar/vector equivalence is critical)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    HashFamily,
    double_hash_positions,
    double_hash_positions_array,
    pmhf_position,
    splitmix64,
    splitmix64_array,
)

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestSplitMix:
    @given(u64, st.integers(min_value=0, max_value=1 << 32))
    @settings(max_examples=200)
    def test_scalar_matches_vector(self, value, seed):
        scalar = splitmix64(value, seed=seed)
        vector = int(splitmix64_array(np.array([value], dtype=np.uint64), seed=seed)[0])
        assert scalar == vector

    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_seed_changes_output(self):
        assert splitmix64(42, seed=1) != splitmix64(42, seed=2)

    def test_output_is_64_bit(self):
        for value in (0, 1, (1 << 64) - 1):
            assert 0 <= splitmix64(value) < (1 << 64)

    def test_avalanche(self):
        """Flipping one input bit flips roughly half the output bits."""
        flips = []
        for bit in range(64):
            a = splitmix64(0)
            b = splitmix64(1 << bit)
            flips.append(bin(a ^ b).count("1"))
        mean = sum(flips) / len(flips)
        assert 24 < mean < 40


class TestHashFamily:
    def test_members_differ(self):
        family = HashFamily(4, base_seed=9)
        outputs = {family.hash(i, 12345) for i in range(4)}
        assert len(outputs) == 4

    def test_mod_in_range(self):
        family = HashFamily(3)
        for i in range(3):
            for value in (0, 7, 1 << 60):
                assert 0 <= family.hash_mod(i, value, 97) < 97

    def test_array_matches_scalar(self):
        family = HashFamily(2, base_seed=5)
        values = np.array([3, 1 << 40, 17], dtype=np.uint64)
        got = family.hash_mod_array(1, values, 1009)
        expected = [family.hash_mod(1, int(v), 1009) for v in values]
        assert list(got) == expected

    def test_reproducible_by_seed(self):
        a, b = HashFamily(2, base_seed=7), HashFamily(2, base_seed=7)
        assert a.seeds == b.seeds

    def test_rejects_zero_functions(self):
        with pytest.raises(ValueError):
            HashFamily(0)


class TestDoubleHashing:
    @given(u64, st.integers(min_value=1, max_value=12))
    @settings(max_examples=100)
    def test_scalar_matches_vector(self, key, k):
        scalar = double_hash_positions(key, k, 4096, seed=3)
        vector = double_hash_positions_array(
            np.array([key], dtype=np.uint64), k, 4096, seed=3
        )[:, 0]
        assert scalar == list(vector)

    @given(u64)
    def test_positions_in_range(self, key):
        for pos in double_hash_positions(key, 6, 1000):
            assert 0 <= pos < 1000

    def test_probe_sequence_varies(self):
        positions = double_hash_positions(123, 8, 1 << 20)
        assert len(set(positions)) > 4


class TestPmhfPosition:
    """The paper's Fig. 4 example is covered in test_paper_examples; here we
    check the structural PMHF properties on arbitrary hash functions."""

    def test_monotone_within_word(self):
        def h(x):
            return x * 2654435761 % 97

        base = pmhf_position(h, 0b1010000, level=0, delta=5, num_words=97)
        for offset in range(16):
            pos = pmhf_position(h, 0b1010000 + offset, level=0, delta=5, num_words=97)
            assert pos == base + offset

    def test_word_aligned(self):
        def h(x):
            return x + 13

        pos = pmhf_position(h, 0, level=0, delta=4, num_words=11)
        assert pos % 8 == pos % 8  # trivially true; check alignment of base
        assert (pos - (0 & 7)) % 8 == 0

    @given(u64, st.integers(min_value=1, max_value=7), st.integers(min_value=0, max_value=40))
    @settings(max_examples=100)
    def test_offset_preserved(self, key, delta, level):
        def h(x):
            return splitmix64(x)

        word_bits = 1 << (delta - 1)
        pos = pmhf_position(h, key, level=level, delta=delta, num_words=64)
        assert pos % word_bits == (key >> level) % word_bits

    @given(u64, st.integers(min_value=2, max_value=7))
    @settings(max_examples=100)
    def test_adjacent_prefixes_adjacent_bits(self, key, delta):
        """Keys sharing all but the lowest delta-1 prefix bits land in one word."""
        def h(x):
            return splitmix64(x)

        word_bits = 1 << (delta - 1)
        group_base = (key >> (delta - 1)) << (delta - 1)
        positions = [
            pmhf_position(h, group_base + i, level=0, delta=delta, num_words=128)
            for i in range(word_bits)
        ]
        assert positions == list(range(positions[0], positions[0] + word_bits))
