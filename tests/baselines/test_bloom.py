"""Tests for the standard Bloom filter baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bloom import BloomFilter, bits_for_fpr, optimal_num_hashes

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestSizing:
    def test_rocksdb_floors(self):
        """Paper: 10 bits/key -> 6.93 hashes, floored to 6 in RocksDB."""
        assert optimal_num_hashes(10, style="rocksdb") == 6

    def test_optimal_rounds(self):
        assert optimal_num_hashes(10, style="optimal") == 7

    def test_rejects_unknown_style(self):
        with pytest.raises(ValueError):
            optimal_num_hashes(10, style="bogus")

    def test_bits_for_fpr(self):
        bits = bits_for_fpr(1000, 0.01)
        assert 9_000 < bits < 10_000  # ~9.59 bits/key

    def test_bits_for_fpr_rejects_bad(self):
        with pytest.raises(ValueError):
            bits_for_fpr(1000, 0.0)
        with pytest.raises(ValueError):
            bits_for_fpr(1000, 1.0)


class TestSoundness:
    @given(st.sets(u64, min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_no_false_negatives(self, keys):
        filt = BloomFilter(n_keys=len(keys), bits_per_key=8)
        for key in keys:
            filt.insert(key)
        for key in keys:
            assert filt.contains_point(key)

    @given(st.lists(u64, min_size=1, max_size=200, unique=True))
    @settings(max_examples=30)
    def test_vectorized_matches_scalar(self, keys):
        a = BloomFilter(n_keys=len(keys), bits_per_key=10, seed=3)
        b = BloomFilter(n_keys=len(keys), bits_per_key=10, seed=3)
        a.insert_many(np.array(keys, dtype=np.uint64))
        for key in keys:
            b.insert(key)
        assert np.array_equal(a.bits.words, b.bits.words)
        probes = np.array(keys[:50], dtype=np.uint64)
        assert list(a.contains_point_many(probes)) == [
            b.contains_point(int(k)) for k in probes
        ]


class TestFpr:
    def test_measured_close_to_expected(self):
        rng = np.random.default_rng(8)
        keys = rng.integers(0, 1 << 64, 30_000, dtype=np.uint64)
        filt = BloomFilter(n_keys=30_000, bits_per_key=10)
        filt.insert_many(keys)
        probes = rng.integers(0, 1 << 64, 60_000, dtype=np.uint64)
        measured = float(np.mean(filt.contains_point_many(probes)))
        assert measured == pytest.approx(filt.expected_fpr(), rel=0.5)

    def test_empty_filter_never_fires(self):
        filt = BloomFilter(n_keys=100, bits_per_key=10)
        assert not filt.contains_point(12345)
        assert filt.expected_fpr() == 0.0


class TestSerialization:
    def test_round_trip(self):
        filt = BloomFilter(n_keys=100, bits_per_key=12, seed=77)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1 << 64, 100, dtype=np.uint64)
        filt.insert_many(keys)
        restored = BloomFilter.from_bytes(filt.to_bytes())
        assert restored.num_hashes == filt.num_hashes
        assert restored.num_bits == filt.num_bits
        for key in keys:
            assert restored.contains_point(int(key))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BloomFilter(n_keys=0, bits_per_key=10)
        with pytest.raises(ValueError):
            BloomFilter(n_keys=10, bits_per_key=0)
