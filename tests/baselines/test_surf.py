"""Tests for SuRF: trie construction, navigation, suffix variants, ranges."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.surf import SuRF, build_trie

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
U64 = (1 << 64) - 1

key_bytes = st.binary(min_size=1, max_size=12)


class TestBuilder:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_trie([])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            build_trie([b"b", b"a"])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            build_trie([b"a", b"a"])

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            build_trie([b"", b"a"])

    def test_single_key(self):
        trie = build_trie([b"hello"])
        assert trie.num_keys == 1
        assert trie.suffixes.size == 1

    def test_truncation_bounds_size(self):
        """Stored entries stay near n even for long shared-prefix keys."""
        keys = [b"averylongcommonprefix" + bytes([i]) for i in range(200)]
        trie = build_trie(keys)
        # The chain of the shared prefix is walked once, not per key.
        assert trie.nominal_bits < 200 * 64 * 4

    def test_suffix_modes(self):
        keys = [bytes([i, j]) for i in range(4) for j in range(4)]
        for mode, bits in (("none", 0), ("hash", 8), ("real", 16)):
            trie = build_trie(keys, suffix_mode=mode, suffix_bits=bits)
            assert trie.suffix_mode == mode
            assert trie.suffix_bits == bits
        with pytest.raises(ValueError):
            build_trie(keys, suffix_mode="bogus")
        with pytest.raises(ValueError):
            build_trie(keys, suffix_mode="real", suffix_bits=100)


class TestPointQueries:
    @given(st.sets(key_bytes, min_size=1, max_size=120))
    @settings(max_examples=80, deadline=None)
    def test_no_false_negatives_bytes(self, key_set):
        keys = sorted(key_set)
        for mode, bits in (("none", 0), ("hash", 8), ("real", 8)):
            filt = SuRF(keys, suffix_mode=mode, suffix_bits=bits)
            for key in keys:
                assert filt.contains_point(key), (mode, key)

    @given(st.sets(u64, min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_no_false_negatives_ints(self, key_set):
        keys = np.array(sorted(key_set), dtype=np.uint64)
        filt = SuRF.from_uint64(keys, suffix_mode="real", suffix_bits=8)
        for key in keys:
            assert filt.contains_point(int(key))

    def test_suffixes_reduce_point_fpr(self):
        rng = np.random.default_rng(1)
        keys = np.unique(rng.integers(0, 1 << 32, 5_000, dtype=np.uint64))
        probes = rng.integers(0, 1 << 32, 20_000, dtype=np.uint64)
        key_set = set(keys.tolist())
        rates = []
        for mode, bits in (("none", 0), ("hash", 8)):
            filt = SuRF.from_uint64(keys, suffix_mode=mode, suffix_bits=bits)
            false_pos = sum(
                filt.contains_point(int(p))
                for p in probes
                if int(p) not in key_set
            )
            rates.append(false_pos)
        assert rates[1] < rates[0]

    def test_prefix_key_handling(self):
        """Keys that are prefixes of other keys (terminator path)."""
        keys = [b"ab", b"abc", b"abcd", b"b"]
        filt = SuRF(keys, suffix_mode="real", suffix_bits=8)
        for key in keys:
            assert filt.contains_point(key)
        assert not filt.contains_point(b"a")
        assert not filt.contains_point(b"abce")


class TestRangeQueries:
    @given(st.sets(u64, min_size=1, max_size=100), u64, u64)
    @settings(max_examples=100, deadline=None)
    def test_consistent_with_truth(self, key_set, a, b):
        lo, hi = min(a, b), max(a, b)
        keys = np.array(sorted(key_set), dtype=np.uint64)
        filt = SuRF.from_uint64(keys, suffix_mode="real", suffix_bits=8)
        if not filt.contains_range(lo, hi):
            assert not any(lo <= int(k) <= hi for k in keys)

    @given(st.sets(key_bytes, min_size=1, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_string_ranges_containing_keys(self, key_set):
        keys = sorted(key_set)
        filt = SuRF(keys, suffix_mode="real", suffix_bits=8)
        for key in keys[:20]:
            assert filt.contains_range(key, key + b"\xff")
            assert filt.contains_range(key, key)

    def test_rejects_inverted(self):
        filt = SuRF([b"x"])
        with pytest.raises(ValueError):
            filt.contains_range(b"b", b"a")

    def test_base_variant_truncation_false_positive(self):
        """SuRF-Base answers at truncated-prefix granularity (the documented
        short-range weakness); SuRF-Real refines it away here."""
        keys = sorted([b"apple", b"applet", b"banana", b"band"])
        base = SuRF(keys, suffix_mode="none")
        real = SuRF(keys, suffix_mode="real", suffix_bits=16)
        # No stored key lies in [applf, bana], but banana's truncated
        # prefix 'bana' does.
        assert base.contains_range(b"applf", b"bana")
        assert not real.contains_range(b"applf", b"bana")

    def test_empty_region_is_negative(self):
        keys = sorted([b"aa", b"zz"])
        filt = SuRF(keys)
        assert not filt.contains_range(b"bb", b"cc")


class TestDenseSparseBoundary:
    @pytest.mark.parametrize("dense_ratio", [0, 16, 64, 10**9])
    def test_all_layouts_sound(self, dense_ratio):
        """ratio=0 forces all-dense, huge ratio forces all-sparse."""
        rng = np.random.default_rng(2)
        keys = np.unique(rng.integers(0, 1 << 64, 2_000, dtype=np.uint64))
        filt = SuRF.from_uint64(
            keys, suffix_mode="real", suffix_bits=8, dense_ratio=dense_ratio
        )
        for key in keys[:300]:
            key = int(key)
            assert filt.contains_point(key)
            assert filt.contains_range(max(0, key - 5), min(U64, key + 5))

    def test_ratio_moves_cutoff(self):
        """Larger ratio demands a smaller dense part (dense <= sparse/R)."""
        rng = np.random.default_rng(3)
        keys = np.unique(rng.integers(0, 1 << 64, 5_000, dtype=np.uint64))
        all_dense = SuRF.from_uint64(keys, dense_ratio=0)
        all_sparse = SuRF.from_uint64(keys, dense_ratio=10**9)
        assert all_sparse.cutoff_level == 0
        assert all_dense.cutoff_level > all_sparse.cutoff_level


class TestTuning:
    def test_suffix_fits_budget(self):
        rng = np.random.default_rng(4)
        keys = np.unique(rng.integers(0, 1 << 64, 20_000, dtype=np.uint64))
        filt = SuRF.tuned_uint64(keys, bits_per_key=22)
        assert filt.size_bits / keys.size <= 23
        assert filt.suffix_bits > 0

    def test_budget_below_base_returns_base(self):
        rng = np.random.default_rng(5)
        keys = np.unique(rng.integers(0, 1 << 64, 5_000, dtype=np.uint64))
        filt = SuRF.tuned_uint64(keys, bits_per_key=2)
        assert filt.suffix_bits == 0  # cannot shrink below the trie


class TestSizeAccounting:
    def test_size_grows_with_suffix(self):
        rng = np.random.default_rng(6)
        keys = np.unique(rng.integers(0, 1 << 64, 3_000, dtype=np.uint64))
        small = SuRF.from_uint64(keys, suffix_mode="real", suffix_bits=4)
        large = SuRF.from_uint64(keys, suffix_mode="real", suffix_bits=16)
        assert large.size_bits - small.size_bits == keys.size * 12


class TestIterator:
    def test_seek_and_walk(self):
        from repro.baselines.surf.surf import SuRFIterator

        keys = sorted([b"apple", b"banana", b"cherry", b"date"])
        filt = SuRF(keys, suffix_mode="none")
        it = SuRFIterator(filt)
        first = it.seek(b"b")
        assert first is not None and first <= b"banana"
        assert b"banana".startswith(first) or first >= b"b"
        walked = [first] + [k for k in iter(it)][1:]
        # Walk visits distinct stored prefixes in ascending order.
        assert walked == sorted(set(walked))

    def test_seek_past_everything(self):
        from repro.baselines.surf.surf import SuRFIterator

        filt = SuRF([b"aa", b"bb"])
        it = SuRFIterator(filt)
        assert it.seek(b"zz") is None
        assert it.next() is None

    def test_full_scan_covers_all_keys(self):
        from repro.baselines.surf.surf import SuRFIterator

        rng = np.random.default_rng(9)
        keys = np.unique(rng.integers(0, 1 << 64, 500, dtype=np.uint64))
        filt = SuRF.from_uint64(keys, suffix_mode="none")
        it = SuRFIterator(filt)
        it.seek(0)
        prefixes = list(iter(it))
        assert len(prefixes) == keys.size  # one stored prefix per key
        assert prefixes == sorted(prefixes)
        raw = keys.astype(">u8").tobytes()
        for i, prefix in enumerate(prefixes):
            assert raw[i * 8 : i * 8 + 8].startswith(prefix)
