"""Tests for Prefix-BF, fence pointers, and the Cuckoo filter baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cuckoo import CuckooFilter
from repro.baselines.fence import FencePointers
from repro.baselines.prefix_bloom import PrefixBloomFilter

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
U64 = (1 << 64) - 1


class TestPrefixBloom:
    @given(st.sets(u64, min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_no_false_negatives(self, keys):
        filt = PrefixBloomFilter(
            n_keys=len(keys), bits_per_key=10, prefix_level=8
        )
        for key in keys:
            filt.insert(key)
        for key in keys:
            assert filt.contains_point(key)
            assert filt.contains_range(key, min(key + 300, U64))

    def test_probe_count_grows_with_range(self):
        filt = PrefixBloomFilter(n_keys=100, bits_per_key=10, prefix_level=4)
        filt.insert(1 << 40)
        filt.contains_range(0, 63)
        small = filt.last_probe_count
        filt.contains_range(0, 1023)
        large = filt.last_probe_count
        assert large > small

    def test_for_range_picks_sane_level(self):
        filt = PrefixBloomFilter.for_range(
            n_keys=100, bits_per_key=10, expected_range=256
        )
        assert filt.prefix_level == 8

    def test_gigantic_range_is_conservative(self):
        filt = PrefixBloomFilter(n_keys=10, bits_per_key=10, prefix_level=0)
        assert filt.contains_range(0, 1 << 40) is True
        assert filt.last_probe_count <= 1

    def test_rejects_bad_level(self):
        with pytest.raises(ValueError):
            PrefixBloomFilter(n_keys=10, bits_per_key=10, prefix_level=64)

    def test_vectorized_insert(self):
        keys = np.arange(0, 10_000, 7, dtype=np.uint64)
        filt = PrefixBloomFilter(n_keys=keys.size, bits_per_key=12, prefix_level=6)
        filt.insert_many(keys)
        for key in keys[:200]:
            assert filt.contains_point(int(key))


class TestFencePointers:
    def test_build_and_point(self):
        keys = np.arange(0, 1000, 3, dtype=np.uint64)
        fences = FencePointers.build(keys, block_size=32)
        assert fences.num_blocks == -(-keys.size // 32)
        assert fences.contains_point(999) == (999 in set(keys.tolist()))
        assert fences.contains_point(3)

    def test_point_outside_all_blocks(self):
        fences = FencePointers.build(np.array([100, 200, 300], dtype=np.uint64), 2)
        assert not fences.contains_point(50)
        assert not fences.contains_point(400)

    @given(
        st.lists(u64, min_size=1, max_size=300, unique=True),
        u64,
        u64,
    )
    @settings(max_examples=100)
    def test_range_matches_naive(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        keys = np.array(sorted(keys), dtype=np.uint64)
        fences = FencePointers.build(keys, block_size=16)
        got = fences.contains_range(lo, hi)
        # Fences answer at block granularity: never a false negative.
        truly = bool(np.any((keys >= lo) & (keys <= hi)))
        assert got or not truly

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            FencePointers.build(np.array([5, 3], dtype=np.uint64))

    def test_rejects_empty_range_query(self):
        fences = FencePointers.build(np.array([1], dtype=np.uint64))
        with pytest.raises(ValueError):
            fences.blocks_for_range(5, 4)

    def test_size_bits(self):
        fences = FencePointers.build(np.arange(100, dtype=np.uint64), 10)
        assert fences.size_bits == 128 * 10


class TestCuckoo:
    @given(st.sets(u64, min_size=1, max_size=400))
    @settings(max_examples=30)
    def test_no_false_negatives(self, keys):
        filt = CuckooFilter(n_keys=len(keys), fingerprint_bits=12)
        for key in keys:
            assert filt.insert(key)
        for key in keys:
            assert filt.contains_point(key)

    def test_delete(self):
        filt = CuckooFilter(n_keys=100, fingerprint_bits=12)
        filt.insert(42)
        assert filt.contains_point(42)
        assert filt.delete(42)
        assert not filt.contains_point(42)
        assert not filt.delete(42)

    def test_delete_preserves_duplicates(self):
        filt = CuckooFilter(n_keys=100, fingerprint_bits=12)
        filt.insert(42)
        filt.insert(42)
        assert filt.delete(42)
        assert filt.contains_point(42)  # one copy remains

    def test_high_occupancy_fill(self):
        """The paper drives cuckoo filters to 95% occupancy."""
        n = 10_000
        filt = CuckooFilter(n_keys=n, fingerprint_bits=12, load_factor=0.95)
        rng = np.random.default_rng(10)
        keys = rng.integers(0, 1 << 64, n, dtype=np.uint64)
        inserted = filt.insert_many(keys)
        assert inserted == n
        assert filt.load() > 0.55  # power-of-two bucket rounding caps density

    def test_overload_fails_gracefully(self):
        filt = CuckooFilter(n_keys=64, fingerprint_bits=8, load_factor=1.0)
        failures = 0
        for key in range(1000):
            failures += not filt.insert(key)
        assert failures > 0  # must refuse rather than corrupt

    def test_fpr_tracks_fingerprint_size(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 1 << 64, 20_000, dtype=np.uint64)
        rates = []
        for bits in (8, 16):
            filt = CuckooFilter(n_keys=20_000, fingerprint_bits=bits)
            filt.insert_many(keys)
            probes = rng.integers(0, 1 << 64, 30_000, dtype=np.uint64)
            rates.append(sum(filt.contains_point(int(p)) for p in probes) / 30_000)
        assert rates[1] < rates[0]
        assert rates[0] < 0.05

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CuckooFilter(n_keys=0)
        with pytest.raises(ValueError):
            CuckooFilter(n_keys=10, fingerprint_bits=0)
        with pytest.raises(ValueError):
            CuckooFilter(n_keys=10, load_factor=0.0)

    def test_size_accounting(self):
        filt = CuckooFilter(n_keys=1000, fingerprint_bits=10)
        assert filt.size_bits == filt.num_buckets * 4 * 10
