"""Tests for the Rosetta baseline (hierarchical BFs with doubting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rosetta import Rosetta

u16 = st.integers(min_value=0, max_value=(1 << 16) - 1)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
U64 = (1 << 64) - 1


def small_rosetta(keys, max_range=64, bits_per_key=16, domain_bits=16):
    filt = Rosetta.tuned(
        n_keys=max(len(keys), 1),
        bits_per_key=bits_per_key,
        max_range=max_range,
        domain_bits=domain_bits,
    )
    for key in keys:
        filt.insert(key)
    return filt


class TestSoundness:
    @given(st.sets(u16, min_size=1, max_size=150))
    @settings(max_examples=60)
    def test_point_no_false_negatives(self, keys):
        filt = small_rosetta(keys)
        for key in keys:
            assert filt.contains_point(key)

    @given(st.sets(u16, min_size=1, max_size=100), u16, u16)
    @settings(max_examples=200)
    def test_range_consistent_with_truth(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        filt = small_rosetta(keys, max_range=1 << 16)
        if not filt.contains_range(lo, hi):
            assert not any(lo <= k <= hi for k in keys)

    @given(st.sets(u64, min_size=1, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_full_domain_ranges(self, keys):
        filt = Rosetta.tuned(n_keys=len(keys), bits_per_key=16, max_range=1 << 10)
        for key in keys:
            filt.insert(key)
        for key in list(keys)[:15]:
            assert filt.contains_range(max(0, key - 5), min(U64, key + 500))


class TestVariants:
    def test_first_cut_sizing(self):
        filt = Rosetta.first_cut(n_keys=1000, target_fpr=0.02, max_range=64)
        assert filt.max_level == 6
        # Bottom filter must be much larger than upper-level filters.
        bottom = filt._filters[0].size_bits
        upper = filt._filters[3].size_bits
        assert bottom > 3 * upper

    def test_single_level_linear_probing(self):
        filt = Rosetta.single_level(n_keys=100, bits_per_key=12, domain_bits=16)
        filt.insert(500)
        assert filt.max_level == 0
        assert filt.contains_range(490, 510)
        assert filt.contains_point(500)

    def test_tuned_respects_budget(self):
        filt = Rosetta.tuned(n_keys=10_000, bits_per_key=18, max_range=256)
        assert filt.size_bits <= 10_000 * 18 * 1.2

    def test_requires_level_zero(self):
        with pytest.raises(ValueError):
            Rosetta(n_keys=10, level_bits={1: 100})

    def test_rejects_level_beyond_domain(self):
        with pytest.raises(ValueError):
            Rosetta(n_keys=10, level_bits={0: 100, 20: 100}, domain_bits=16)


class TestDoubting:
    def test_probe_count_grows_with_range(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 1 << 64, 5_000, dtype=np.uint64)
        filt = Rosetta.tuned(n_keys=5_000, bits_per_key=14, max_range=1 << 12)
        filt.insert_many(keys)
        filt.contains_range(123, 123 + 15)
        small = filt.last_probe_count
        filt.contains_range(123, 123 + (1 << 12) - 1)
        large = filt.last_probe_count
        assert large > small

    def test_oversized_range_is_conservative(self):
        filt = Rosetta.tuned(n_keys=100, bits_per_key=14, max_range=64)
        assert filt.contains_range(0, 1 << 60) is True

    def test_vectorized_insert_matches_scalar(self):
        keys = np.arange(100, 400, 3, dtype=np.uint64)
        a = Rosetta.tuned(n_keys=keys.size, bits_per_key=14, max_range=64, seed=5)
        b = Rosetta.tuned(n_keys=keys.size, bits_per_key=14, max_range=64, seed=5)
        a.insert_many(keys)
        for key in keys:
            b.insert(int(key))
        for level in a.levels:
            assert np.array_equal(
                a._filters[level].bits.words, b._filters[level].bits.words
            )


class TestBehaviorShape:
    def test_degrades_with_range_size(self):
        """Problem 1: Rosetta's FPR collapses once ranges exceed its budget."""
        rng = np.random.default_rng(6)
        keys = np.unique(rng.integers(0, 1 << 64, 20_000, dtype=np.uint64))
        filt = Rosetta.tuned(n_keys=keys.size, bits_per_key=16, max_range=256)
        filt.insert_many(keys)
        from repro.workloads import empty_range_queries

        small = empty_range_queries(keys, 300, range_size=16, seed=1)
        large = empty_range_queries(keys, 300, range_size=1 << 20, seed=2)
        fpr_small = sum(filt.contains_range(lo, hi) for lo, hi in small) / 300
        fpr_large = sum(filt.contains_range(lo, hi) for lo, hi in large) / 300
        assert fpr_small < 0.2
        assert fpr_large > 0.5
