"""Tests for the rank/select bitvector underlying SuRF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.surf.bitvector import RankSelectBitVector

bit_lists = st.lists(st.booleans(), min_size=1, max_size=600)


class TestRank:
    @given(bit_lists)
    @settings(max_examples=100)
    def test_rank_matches_naive(self, bits):
        bv = RankSelectBitVector(np.array(bits, dtype=bool))
        prefix = 0
        for pos, bit in enumerate(bits):
            assert bv.rank1(pos) == prefix
            prefix += bit
            assert bv.rank1_inclusive(pos) == prefix
        assert bv.rank1(len(bits)) == prefix
        assert bv.num_ones == prefix

    def test_rank_beyond_end(self):
        bv = RankSelectBitVector(np.array([1, 0, 1], dtype=bool))
        assert bv.rank1(100) == 2

    def test_rank_at_zero(self):
        bv = RankSelectBitVector(np.array([1], dtype=bool))
        assert bv.rank1(0) == 0


class TestSelect:
    @given(bit_lists)
    @settings(max_examples=100)
    def test_select_matches_naive(self, bits):
        bv = RankSelectBitVector(np.array(bits, dtype=bool))
        ones = [i for i, bit in enumerate(bits) if bit]
        for count, pos in enumerate(ones, start=1):
            assert bv.select1(count) == pos

    def test_select_out_of_range(self):
        bv = RankSelectBitVector(np.array([1, 0], dtype=bool))
        with pytest.raises(IndexError):
            bv.select1(2)
        with pytest.raises(IndexError):
            bv.select1(0)

    @given(bit_lists)
    @settings(max_examples=50)
    def test_select_rank_inverse(self, bits):
        bv = RankSelectBitVector(np.array(bits, dtype=bool))
        for count in range(1, bv.num_ones + 1):
            assert bv.rank1_inclusive(bv.select1(count)) == count


class TestNextSetBit:
    @given(bit_lists, st.integers(min_value=0, max_value=700))
    @settings(max_examples=100)
    def test_matches_naive(self, bits, start):
        bv = RankSelectBitVector(np.array(bits, dtype=bool))
        expected = next((i for i in range(start, len(bits)) if bits[i]), -1)
        assert bv.next_set_bit(start) == expected

    def test_cross_word_boundary(self):
        bits = np.zeros(200, dtype=bool)
        bits[130] = True
        bv = RankSelectBitVector(bits)
        assert bv.next_set_bit(0) == 130
        assert bv.next_set_bit(130) == 130
        assert bv.next_set_bit(131) == -1


class TestGet:
    @given(bit_lists)
    @settings(max_examples=50)
    def test_get_matches_input(self, bits):
        bv = RankSelectBitVector(np.array(bits, dtype=bool))
        for pos, bit in enumerate(bits):
            assert bv.get(pos) == bit
