"""Concurrency exactness: the server is a serializer, bit for bit.

N concurrent clients run randomized mixed workloads against a traced
server.  The coalescer records the engine-call serialization it actually
executed (merged batches included); replaying that serialization
single-threaded on a shadow store with identical configuration must
reproduce every answer AND the summed IOStats counters exactly — the
vectorized sweeps are documented bit-identical to scalar loops, and the
server must not change that.  Runs under the lock-order watcher so any
cyclic lock acquisition across the server, WAL, and store locks fails
the test too.
"""

import random
import threading

import numpy as np
import pytest

from repro.api import FilterSpec, open_store
from repro.server import StoreClient
from repro.testing import LockOrderWatcher

SPEC = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})
KEY_SPACE = 4096
N_CLIENTS = 6
STEPS = 40


@pytest.fixture
def lock_watcher():
    with LockOrderWatcher() as watcher:
        yield watcher


def _make_store(flavor, root):
    if flavor == "memory":
        return open_store()
    if flavor == "persistent":
        return open_store(
            path=root,
            filter=SPEC,
            store_values=True,
            memtable_capacity=128,
            wal_sync="batch",
            wal_group_commit=8,
        )
    return open_store(
        path=root,
        filter=SPEC,
        shards=3,
        memtable_capacity=128,
        wal_sync="batch",
        wal_group_commit=8,
    )


def _client_script(host, port, cid, store_values, failures):
    rng = random.Random(7700 + cid)
    try:
        with StoreClient(host, port) as c:
            for step in range(STEPS):
                roll = rng.random()
                if roll < 0.25:
                    keys = sorted(rng.sample(range(KEY_SPACE), 4))
                    values = (
                        [b"c%d.%d.%d" % (cid, step, k) for k in keys]
                        if store_values
                        else None
                    )
                    c.put_many(keys, values)
                elif roll < 0.35:
                    c.delete_many(sorted(rng.sample(range(KEY_SPACE), 2)))
                elif roll < 0.60:
                    c.get_many([rng.randrange(KEY_SPACE) for _ in range(6)])
                elif roll < 0.75:
                    c.may_contain_many(
                        [rng.randrange(KEY_SPACE) for _ in range(6)]
                    )
                elif roll < 0.90:
                    lo = rng.randrange(KEY_SPACE - 64)
                    c.scan_nonempty(lo, lo + 64)
                else:
                    lo = rng.randrange(KEY_SPACE - 16)
                    c.scan_range(lo, lo + 16)
    except Exception as exc:  # surfaced by the main thread
        failures.append((cid, exc))


def _replay(shadow, trace):
    """Re-execute the server's engine-call serialization single-threaded,
    asserting each recorded answer is reproduced exactly."""
    for entry in trace:
        method = entry[0]
        if method == "get_many":
            _, keys, recorded = entry
            assert (shadow.get_many(keys) == recorded).all()
        elif method == "may_contain_many":
            _, keys, recorded = entry
            assert (shadow.may_contain_many(keys) == recorded).all()
        elif method == "scan_nonempty_many":
            _, bounds, recorded = entry
            assert (shadow.scan_nonempty_many(bounds) == recorded).all()
        elif method == "put_many":
            _, keys, values = entry
            shadow.put_many(keys, values)
        elif method == "delete_many":
            _, keys = entry
            shadow.delete_many(keys)
        elif method == "scan":
            _, lo, hi, limit, recorded = entry
            assert shadow.scan(lo, hi, limit) == recorded
        elif method == "get_value":
            _, key, recorded = entry
            assert shadow.get_value(key) == recorded
        else:  # pragma: no cover - trace must stay exhaustive
            raise AssertionError(f"unknown trace entry {method!r}")


@pytest.mark.parametrize("flavor", ["memory", "persistent", "sharded"])
def test_concurrent_answers_and_stats_match_shadow_replay(
    flavor, tmp_path, running_server, lock_watcher
):
    store = _make_store(flavor, tmp_path / "live")
    store_values = flavor == "persistent"
    failures = []
    with running_server(store, trace=True) as server:
        host, port = server.address
        threads = [
            threading.Thread(
                target=_client_script,
                args=(host, port, cid, store_values, failures),
            )
            for cid in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not failures, failures
        trace = list(server.trace)
        # Counters BEFORE the shutdown flush: replay reaches this point.
        live_counters = store.stats.counters()
    assert trace, "server executed no engine calls"

    shadow = _make_store(flavor, tmp_path / "shadow")
    try:
        _replay(shadow, trace)
        assert shadow.stats.counters() == live_counters, (
            "single-threaded shadow replay diverged from the live "
            "concurrent accounting"
        )
        probes = np.arange(KEY_SPACE, dtype=np.uint64)
        assert (shadow.get_many(probes) == store.get_many(probes)).all()
        assert shadow.num_keys == store.num_keys
    finally:
        shadow.close()
        store.close()
    assert server.errors_total == 0
