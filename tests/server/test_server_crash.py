"""Server crash-kill: zero acknowledged-write loss under wal_sync="batch".

A child process serves a persistent batch-mode store while the fault
injector arms ``os._exit(137)`` on the N-th durability syscall under the
store root (a real kill -9 analog: no flush, no close, no atexit).  The
parent hammers it with single-key puts over TCP, recording every key the
server *acknowledged* — and under the ack-barrier contract an
acknowledgement means a covering fsync already happened, group commit
notwithstanding.  After the kill, ``repro store recover`` replays the
log and every acked key must answer positively with its exact value.

``REPRO_CRASH_SEED`` (default 0; CI randomizes nightly) moves the crash
point, following the crash-recovery suite's conventions.
"""

import os
import random
import subprocess
import sys
import textwrap

import numpy as np

import repro
from repro.api import open_store
from repro.cli import main as cli_main
from repro.server import ServerError, StoreClient
from repro.server.protocol import ProtocolError

SEED = int(os.environ.get("REPRO_CRASH_SEED", "0"))


def test_server_kill_preserves_acked_writes(tmp_path):
    root = tmp_path / "db"
    crash_at = 41 + random.Random(SEED).randrange(120)
    script = textwrap.dedent(
        f"""
        import asyncio
        from repro.api import FilterSpec, open_store
        from repro.server import StoreServer
        from repro.testing import FaultInjector

        db = open_store(
            path={str(root)!r},
            filter=FilterSpec(
                "bloomrf", {{"bits_per_key": 14, "max_range": 4096}}
            ),
            memtable_capacity=64,
            store_values=True,
            wal_sync="batch",
            wal_group_commit=4,
        )

        async def main():
            server = StoreServer(db, port=0)
            await server.start()
            print(server.address[1], flush=True)
            with FaultInjector(
                {str(root)!r}, crash_at={crash_at}, mode="exit"
            ):
                await server.serve_forever()

        asyncio.run(main())
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    proc = subprocess.Popen(
        [sys.executable, "-u", "-c", script],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        port_line = proc.stdout.readline().strip()
        assert port_line, proc.stderr.read()
        port = int(port_line)

        acked = []
        try:
            with StoreClient("127.0.0.1", port, timeout=30) as client:
                for k in range(5000):
                    client.put(k, b"v%d" % k)
                    acked.append(k)
        except (ConnectionError, ServerError, ProtocolError, OSError):
            pass  # the kill severed the connection mid-request
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - hang guard
            proc.kill()
            proc.wait()
    assert proc.returncode == 137, proc.stderr.read()
    assert acked, "server died before acknowledging anything"
    assert len(acked) < 5000, "crash point never fired"

    assert cli_main(["store", "recover", str(root)]) == 0
    with open_store(path=root) as db:
        answers = db.get_many(np.array(acked, dtype=np.uint64))
        assert answers.all(), (
            f"{int((~answers).sum())} of {len(acked)} acknowledged writes "
            f"lost across kill -9 (crash_at={crash_at})"
        )
        for k in acked[-10:]:
            assert db.get_value(k) == b"v%d" % k, (
                f"acknowledged value for key {k} corrupted"
            )
