"""Shared harness for the serving-layer tests.

``running_server`` hosts one :class:`repro.server.StoreServer` on a
background event-loop thread and yields it with its ephemeral address
bound; leaving the block runs the graceful shutdown (drain -> flush)
on the server's own loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time

import pytest

from repro.server import StoreServer


@contextlib.contextmanager
def _running_server(store, **kwargs):
    loop = asyncio.new_event_loop()
    server = StoreServer(store, port=0, **kwargs)
    startup_failure = []

    def runner():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # pragma: no cover - startup failure
            startup_failure.append(exc)
            return
        loop.run_forever()

    thread = threading.Thread(target=runner, name="server-loop", daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while server.address is None and not startup_failure:
        if time.monotonic() > deadline:  # pragma: no cover - hang guard
            raise TimeoutError("server did not bind within 10s")
        time.sleep(0.005)
    if startup_failure:  # pragma: no cover - startup failure
        raise startup_failure[0]
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.aclose(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


@pytest.fixture
def running_server():
    """The ``_running_server`` context manager, as a fixture value."""
    return _running_server
