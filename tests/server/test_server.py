"""End-to-end server tests over live TCP sockets.

Round trips for every protocol op against in-memory, persistent, and
sharded stores; error responses that keep the connection alive;
per-connection backpressure; per-request dispatch mode; and the graceful
shutdown contract (every acknowledged write survives a mid-load stop).
"""

import asyncio
import struct
import threading
import time

import numpy as np
import pytest

from repro.api import FilterSpec, open_store
from repro.server import AsyncStoreClient, ServerError, StoreClient
from repro.server.protocol import MAX_FRAME_BYTES

SPEC = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})


@pytest.fixture(params=["memory", "persistent", "sharded"])
def store(request, tmp_path):
    if request.param == "memory":
        db = open_store()
    elif request.param == "persistent":
        db = open_store(
            path=tmp_path / "db",
            filter=SPEC,
            store_values=True,
            memtable_capacity=256,
            wal_sync="batch",
            wal_group_commit=8,
        )
    else:
        db = open_store(
            path=tmp_path / "db",
            filter=SPEC,
            shards=3,
            memtable_capacity=256,
            wal_sync="batch",
            wal_group_commit=8,
        )
    yield db
    db.close()


class TestRoundTrips:
    def test_point_ops(self, store, running_server):
        with running_server(store) as server:
            host, port = server.address
            with StoreClient(host, port) as c:
                assert c.ping()
                assert c.put_many([5, 6, 7]) == 3
                c.put(42)
                assert c.get(42)
                assert c.get_many([5, 6, 7, 9999]) == [True, True, True, False]
                assert c.may_contain(5)
                assert all(c.may_contain_many([5, 6, 7]))
                c.delete(6)
                assert c.delete_many([7]) == 1
                assert c.get_many([5, 6, 7]) == [True, False, False]

    def test_range_ops(self, store, running_server):
        with running_server(store) as server:
            host, port = server.address
            with StoreClient(host, port) as c:
                c.put_many(list(range(100, 111)))
                assert c.scan_nonempty(100, 110)
                assert not c.scan_nonempty(200, 300)
                assert c.scan_nonempty_many(
                    [[0, 99], [105, 107], [500, 600]]
                ) == [False, True, False]
                entries = c.scan_range(100, 105)
                assert [k for k, _ in entries] == [100, 101, 102, 103, 104, 105]
                assert len(c.scan_range(100, 110, limit=3)) == 3

    def test_stats_op(self, store, running_server):
        with running_server(store) as server:
            host, port = server.address
            with StoreClient(host, port) as c:
                c.put_many([1, 2, 3])
                c.get_many([1, 2, 3, 4])
                stats = c.stats()
                assert stats["num_keys"] == 3
                assert stats["counters"]["filter_probes"] >= 0
                assert "breakdown" in stats

    def test_empty_batches(self, store, running_server):
        with running_server(store) as server:
            host, port = server.address
            with StoreClient(host, port) as c:
                assert c.get_many([]) == []
                assert c.put_many([]) == 0
                assert c.delete_many([]) == 0
                assert c.may_contain_many([]) == []
                assert c.scan_nonempty_many([]) == []


def test_values_round_trip(tmp_path, running_server):
    store = open_store(
        path=tmp_path / "db", filter=SPEC, store_values=True,
        memtable_capacity=256,
    )
    try:
        with running_server(store) as server:
            host, port = server.address
            with StoreClient(host, port) as c:
                c.put(1, b"one")
                c.put_many([2, 3], [b"two", b"\x00\xffbinary"])
                assert c.get_value(1) == b"one"
                assert c.get_value(3) == b"\x00\xffbinary"
                assert c.get_value(99) is None
                assert c.scan_range(1, 3) == [
                    (1, b"one"), (2, b"two"), (3, b"\x00\xffbinary"),
                ]
    finally:
        store.close()


def test_writes_ack_after_covering_group_commit(tmp_path, running_server):
    """Under wal_sync="batch" an acked write is already fsync-covered:
    pending_ops is zero after every acknowledged write returns."""
    store = open_store(
        path=tmp_path / "db", filter=SPEC, wal_sync="batch",
        wal_group_commit=1000, memtable_capacity=1 << 12,
    )
    try:
        with running_server(store) as server:
            host, port = server.address
            with StoreClient(host, port) as c:
                for k in range(20):
                    c.put(k)
                    assert store.wal_info()["pending_ops"] == 0
                assert store.wal_info()["fsyncs"] >= 1
    finally:
        store.close()


class TestErrors:
    def test_bad_requests_answer_and_keep_connection(self, running_server):
        store = open_store()
        try:
            with running_server(store) as server:
                host, port = server.address
                with StoreClient(host, port) as c:
                    c.put_many([1, 2])
                    for op, fields, fragment in [
                        ("bogus", {}, "unknown op"),
                        ("get_many", {"keys": "nope"}, "array of integers"),
                        ("get_many", {"keys": [1, "x"]}, "integer"),
                        ("get_many", {"keys": [-5]}, "u64"),
                        ("get_many", {"keys": [1 << 64]}, "u64"),
                        ("get_many", {"keys": [True]}, "integer"),
                        ("get", {}, "missing field"),
                        ("scan_nonempty", {"lo": 9, "hi": 3}, "inverted"),
                        ("scan_range", {"lo": 9, "hi": 3}, "inverted"),
                        ("scan_range", {"lo": 1, "hi": 2, "limit": -1}, "limit"),
                        ("put_many", {"keys": [1, 2], "values": ["AA=="]},
                         "aligned"),
                        ("put", {"key": 1, "value": "!!"}, "base64"),
                        ("scan_nonempty_many", {"bounds": [[1]]}, "pair"),
                    ]:
                        with pytest.raises(ServerError, match=fragment) as err:
                            c._request(op, **fields)
                        assert err.value.kind == "ProtocolError"
                    # The connection survived all of it.
                    assert c.get_many([1, 2, 3]) == [True, True, False]
                assert server.errors_total == 13
        finally:
            store.close()

    def test_frame_level_garbage_drops_connection(self, running_server):
        store = open_store()
        try:
            with running_server(store) as server:
                host, port = server.address
                client = StoreClient(host, port)
                try:
                    # An impossible length prefix: framing is lost.
                    client._sock.sendall(
                        struct.pack("<I", MAX_FRAME_BYTES + 1)
                    )
                    (length,) = struct.unpack(
                        "<I", client._recv_exact(4)
                    )
                    from repro.server.protocol import decode_frame_body

                    response = decode_frame_body(client._recv_exact(length))
                    assert response["ok"] is False
                    assert response["kind"] == "ProtocolError"
                    # ... and then the server hangs up.
                    with pytest.raises(ConnectionError):
                        client._recv_exact(1)
                finally:
                    client.close()
        finally:
            store.close()


class _SlowReads:
    """Store wrapper: delays get_many so requests pile up server-side."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def get_many(self, keys):
        time.sleep(self._delay_s)
        return self._inner.get_many(keys)


def test_backpressure_caps_inflight_per_connection(running_server):
    """With max_inflight=2 the server stops reading past two queued
    requests, so no coalescer tick can ever hold more than two ops from
    the single pipelined connection."""
    store = _SlowReads(open_store(), delay_s=0.004)
    try:
        with running_server(store, max_inflight=2) as server:
            host, port = server.address

            async def hammer():
                client = await AsyncStoreClient.connect(host, port)
                try:
                    answers = await asyncio.gather(
                        *(client.get(k) for k in range(24))
                    )
                finally:
                    await client.aclose()
                return answers

            answers = asyncio.run(hammer())
            assert answers == [False] * 24
            assert server.coalescer.max_tick_ops <= 2
            assert server.requests_total == 24
    finally:
        store._inner.close()


def test_pipelined_async_client_coalesces(running_server):
    """Concurrent requests on one connection land in shared ticks: fewer
    engine calls than requests."""
    store = _SlowReads(open_store(), delay_s=0.002)
    store._inner.put_many(np.arange(64, dtype=np.uint64))
    try:
        with running_server(store, max_inflight=64) as server:
            host, port = server.address

            async def hammer():
                client = await AsyncStoreClient.connect(host, port)
                try:
                    return await asyncio.gather(
                        *(client.get(k) for k in range(40))
                    )
                finally:
                    await client.aclose()

            answers = asyncio.run(hammer())
            assert answers == [True] * 40
            assert server.coalescer.engine_calls < 40
            assert server.coalescer.max_tick_ops > 1
    finally:
        store._inner.close()


def test_uncoalesced_mode_round_trips(running_server):
    store = open_store()
    try:
        with running_server(store, coalesce=False) as server:
            host, port = server.address
            with StoreClient(host, port) as c:
                c.put_many([1, 2, 3])
                assert c.get_many([1, 2, 3, 4]) == [True, True, True, False]
                assert c.scan_nonempty(0, 10)
            # every op was its own engine call
            assert server.coalescer.engine_calls == server.coalescer.ops
    finally:
        store.close()


def test_graceful_shutdown_preserves_acked_writes(tmp_path, running_server):
    """Stop the server while a client hammers it: every put acknowledged
    before the connection died must be durable after reopen."""
    root = tmp_path / "db"
    store = open_store(
        path=root, filter=SPEC, memtable_capacity=128,
        wal_sync="batch", wal_group_commit=16,
    )
    acked = []

    def writer(host, port):
        try:
            with StoreClient(host, port) as c:
                for k in range(100_000):
                    c.put(k)
                    acked.append(k)
        except (ConnectionError, ServerError, OSError):
            pass  # the shutdown cut us off mid-stream

    with running_server(store) as server:
        host, port = server.address
        thread = threading.Thread(target=writer, args=(host, port))
        thread.start()
        while len(acked) < 64:
            time.sleep(0.001)
        # exiting the block: aclose() drains while the writer hammers
    thread.join(30)
    assert not thread.is_alive()
    store.close()
    acked_snapshot = list(acked)
    assert len(acked_snapshot) >= 64
    with open_store(path=root) as db:
        answers = db.get_many(np.array(acked_snapshot, dtype=np.uint64))
        assert answers.all(), "an acknowledged write was lost by shutdown"


def test_server_info_accounting(running_server):
    store = open_store()
    try:
        with running_server(store) as server:
            host, port = server.address
            with StoreClient(host, port) as c:
                c.ping()
                c.put_many([1])
                c.get(1)
            info = server.info()
            assert info["requests"] == 3
            assert info["connections"] == 1
            assert info["errors"] == 0
            assert info["barriers"] >= 1
            assert info["coalesced_ops"] == 2  # ping never reaches the engine
    finally:
        store.close()
