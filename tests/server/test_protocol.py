"""Wire-format unit tests: frame round trips, the size cap, truncation,
non-object bodies, and base64 value transport."""

import asyncio
import struct

import pytest

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame_body,
    decode_value,
    encode_frame,
    encode_value,
    read_frame,
)


def _read_all(payload: bytes):
    """Every frame from ``payload`` (as if received on a socket)."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        frames = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(go())


class TestFraming:
    def test_round_trip_multiple_frames(self):
        a = {"id": 1, "op": "ping"}
        b = {"id": 2, "op": "get", "key": 7, "nested": {"x": [1, 2]}}
        assert _read_all(encode_frame(a) + encode_frame(b)) == [a, b]

    def test_clean_eof_between_frames_returns_none(self):
        assert _read_all(b"") == []
        assert _read_all(encode_frame({"id": 0, "op": "ping"})) == [
            {"id": 0, "op": "ping"}
        ]

    def test_eof_inside_length_prefix_raises(self):
        with pytest.raises(ProtocolError, match="length prefix"):
            _read_all(b"\x01\x02")

    def test_eof_inside_body_raises(self):
        frame = encode_frame({"id": 1, "op": "ping"})
        with pytest.raises(ProtocolError, match="frame body"):
            _read_all(frame[:-2])

    def test_oversized_incoming_length_raises(self):
        with pytest.raises(ProtocolError, match="cap"):
            _read_all(struct.pack("<I", MAX_FRAME_BYTES + 1))

    def test_oversized_outgoing_frame_raises(self):
        with pytest.raises(ProtocolError, match="cap"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_non_object_body_raises(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame_body(b"[1,2,3]")

    def test_garbage_body_raises(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame_body(b"\xff\xfe\x00")


class TestValues:
    def test_round_trip(self):
        for value in (b"", b"hello", bytes(range(256))):
            assert decode_value(encode_value(value)) == value

    def test_none_stays_none(self):
        assert encode_value(None) is None

    def test_empty_bytes_round_trip(self):
        assert decode_value(encode_value(b"")) == b""

    def test_bad_base64_raises(self):
        with pytest.raises(ProtocolError, match="base64"):
            decode_value("!!!not-base64!!!")

    def test_non_string_raises(self):
        with pytest.raises(ProtocolError, match="base64"):
            decode_value(42)
