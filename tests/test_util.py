"""Unit tests for repro._util bit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    ceil_div,
    ceil_log2,
    check_key,
    domain_max,
    domain_size,
    floor_log2,
    is_power_of_two,
    mask,
    round_up,
)


class TestMask:
    def test_zero_bits(self):
        assert mask(0) == 0

    def test_small(self):
        assert mask(3) == 0b111

    def test_64_bits(self):
        assert mask(64) == (1 << 64) - 1


class TestDomain:
    def test_size(self):
        assert domain_size(16) == 65536

    def test_max(self):
        assert domain_max(16) == 65535

    def test_check_key_accepts_bounds(self):
        assert check_key(0, 8) == 0
        assert check_key(255, 8) == 255

    def test_check_key_rejects_overflow(self):
        with pytest.raises(ValueError):
            check_key(256, 8)

    def test_check_key_rejects_negative(self):
        with pytest.raises(ValueError):
            check_key(-1, 8)


class TestLogs:
    def test_floor_log2_powers(self):
        for exp in range(0, 63):
            assert floor_log2(1 << exp) == exp

    def test_floor_log2_between(self):
        assert floor_log2(5) == 2
        assert floor_log2(1023) == 9

    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(5) == 3
        assert ceil_log2(1024) == 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            floor_log2(0)
        with pytest.raises(ValueError):
            ceil_log2(-3)

    @given(st.integers(min_value=1, max_value=1 << 64))
    def test_floor_ceil_consistency(self, value):
        lo, hi = floor_log2(value), ceil_log2(value)
        assert (1 << lo) <= value <= (1 << hi)
        assert hi - lo <= 1


class TestRounding:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3

    def test_round_up(self):
        assert round_up(65, 64) == 128
        assert round_up(64, 64) == 64

    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=1, max_value=10**6))
    def test_round_up_properties(self, value, multiple):
        result = round_up(value, multiple)
        assert result >= value
        assert result % multiple == 0
        assert result - value < multiple


class TestPowerOfTwo:
    def test_powers(self):
        for exp in range(0, 20):
            assert is_power_of_two(1 << exp)

    def test_non_powers(self):
        for value in (0, 3, 5, 6, 7, 9, 100, -2, -4):
            assert not is_power_of_two(value)
