"""ShardedBloomRF — keyspace-partitioned parallel execution of bloomRF.

The paper's concurrency result (Fig. 12.B) rests on bloomRF being a parallel
data structure: inserts are plain word-level ORs, probes are reads, nothing
locks.  Partitioned filter designs (partitioned Bloom filters, Bloofi's
tree-of-filters) take the next step for scale-out: split one logical filter
into N independent shards so batches execute in parallel.  This module does
that on top of the batch engines from PR 1 and PR 2: every shard is a
*same-config* :class:`~repro.core.bloomrf.BloomRF`, batches are partitioned
and dispatched through the shared layer in :mod:`repro.parallel` — the
per-shard sweeps are NumPy kernels that release the GIL, so shards genuinely
overlap on multi-core hosts.  :class:`~repro.lsm.sharded.ShardedLsmDB` runs
whole per-shard LSM engines behind the same partition/dispatch machinery.

Partition schemes
-----------------
* ``"hash"`` — a key's shard is ``splitmix64(key) mod N``
  (:class:`~repro.parallel.HashPartitioner`).  Point batches touch exactly
  one shard per key; range queries scatter over the keyspace, so every
  shard probes the full range and the answers are OR-ed (each shard has no
  false negatives on its own keys, so the OR has none).
* ``"range"`` — the domain is split into N equal contiguous sub-ranges
  (:class:`~repro.parallel.RangePartitioner`).  Point batches touch one
  shard per key; a range query is clipped to each overlapping shard, so
  narrow queries touch one shard and only domain-wide scans fan out.

Exactness
---------
Shards share one ``(config, seed)``, and a bloomRF insert is a
deterministic OR of bit positions — so :meth:`ShardedBloomRF.merge`
(word-level union of all shards) reconstructs *bit for bit* the unsharded
filter built from the same keys (asserted by the tests).  Per-query answers
are at least as precise: a shard sees only its partition's bits, so the
sharded answer implies the unsharded one and false negatives remain
impossible.  With ``num_shards=1`` the structure *is* the unsharded filter
and every answer matches it exactly.

Lifecycle
---------
The worker pool is owned by a :class:`~repro.parallel.ShardPool`: use the
filter as a context manager (or call :meth:`ShardedBloomRF.close`) so
benchmark loops that build many sharded filters never leak threads.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.bloomrf import BloomRF
from repro.core.config import BloomRFConfig
from repro.parallel import (
    ShardPool,
    group_by_owner,
    make_partitioner,
    run_bounds_batch,
    run_point_batch,
)

__all__ = ["ShardedBloomRF"]


class ShardedBloomRF:
    """N same-config bloomRF shards behind the one-filter batch API.

    Exposes the same ``insert_many`` / ``contains_point_many`` /
    ``contains_range_many`` (plus their scalar forms) as
    :class:`~repro.core.bloomrf.BloomRF`; batches are partitioned per shard
    and executed concurrently.  Use as a context manager (or call
    :meth:`close`) to release the worker pool deterministically.
    """

    def __init__(
        self,
        config: BloomRFConfig,
        num_shards: int,
        partition: str = "hash",
        max_workers: int | None = None,
    ) -> None:
        self._init_dispatch(config, num_shards, partition, max_workers)
        self.shards: list[BloomRF] = [BloomRF(config) for _ in range(num_shards)]

    def _init_dispatch(
        self,
        config: BloomRFConfig,
        num_shards: int,
        partition: str,
        max_workers: int | None,
    ) -> None:
        self._partitioner = make_partitioner(
            partition, num_shards, config.domain_bits
        )
        self.config = config
        self.num_shards = num_shards
        self.partition = partition
        self._d = config.domain_bits
        self._pool = ShardPool(
            max_workers if max_workers is not None else num_shards,
            name="bloomrf-shard",
        )

    @classmethod
    def _shell(
        cls,
        config: BloomRFConfig,
        num_shards: int,
        partition: str,
        max_workers: int | None,
    ) -> "ShardedBloomRF":
        """Dispatch machinery without shard allocation (deserializers fill
        ``shards`` themselves; building N empty filters first would double
        the peak memory of a load)."""
        self = cls.__new__(cls)
        self._init_dispatch(config, num_shards, partition, max_workers)
        self.shards = []
        return self

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "ShardedBloomRF":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_keys

    @property
    def num_keys(self) -> int:
        return sum(shard.num_keys for shard in self.shards)

    @property
    def size_bits(self) -> int:
        return sum(shard.size_bits for shard in self.shards)

    @property
    def domain_bits(self) -> int:
        return self._d

    @property
    def _boundaries(self) -> np.ndarray:
        """Equal-width sub-domain boundaries (diagnostics/tests).

        These drive dispatch only under range partitioning, but are
        derived for any scheme (matching the pre-``repro.parallel``
        behavior, where they were always computed).
        """
        from repro.parallel import RangePartitioner

        if isinstance(self._partitioner, RangePartitioner):
            return self._partitioner.boundaries
        return RangePartitioner(self.num_shards, self._d).boundaries

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def shard_of_many(self, keys: np.ndarray) -> np.ndarray:
        """Owning shard index per key (vectorized dispatch function)."""
        return self._partitioner.owner_of_many(keys)

    def shard_of(self, key: int) -> int:
        return self._partitioner.owner_of(key)

    def _run_per_shard(self, jobs: list[tuple[int, object]], fn) -> list:
        """Execute ``fn(shard, payload)`` for each (shard index, payload)."""
        return self._pool.run(jobs, lambda s, payload: fn(self.shards[s], payload))

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        self.shards[self.shard_of(key)].insert(key)

    def insert_many(self, keys: np.ndarray) -> None:
        """Bulk insert: partition the batch, one parallel sweep per shard."""
        keys = self.shards[0]._validated_keys(keys)
        if keys.size == 0:
            return
        owner = self.shard_of_many(keys)
        jobs = [(s, keys[idx]) for s, idx in group_by_owner(owner)]
        self._run_per_shard(jobs, lambda shard, chunk: shard.insert_many(chunk))

    # ------------------------------------------------------------------
    # point lookups
    # ------------------------------------------------------------------
    def contains_point(self, key: int) -> bool:
        return self.shards[self.shard_of(key)].contains_point(key)

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        """Bulk point lookup: each key probes exactly its owning shard."""
        keys = self.shards[0]._validated_keys(keys)
        result = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return result
        return run_point_batch(
            self._pool,
            self.shards,
            self._partitioner,
            keys,
            BloomRF.contains_point_many,
            result,
        )

    __contains__ = contains_point

    # ------------------------------------------------------------------
    # range lookups
    # ------------------------------------------------------------------
    def contains_range(self, l_key: int, r_key: int) -> bool:
        return bool(
            self.contains_range_many(
                np.array([[l_key, r_key]], dtype=np.uint64)
            )[0]
        )

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Bulk range lookup over ``(n, 2)`` inclusive bounds.

        See :func:`repro.parallel.run_bounds_batch`: the full batch on
        every shard for hash dispatch, overlap-only clipped queries for
        range dispatch, answers OR-ed per query (which preserves
        no-false-negatives).
        """
        bounds = self.shards[0]._validated_bounds(bounds)
        n = bounds.shape[0]
        result = np.zeros(n, dtype=bool)
        if n == 0:
            return result
        return run_bounds_batch(
            self._pool,
            self.shards,
            self._partitioner,
            bounds,
            BloomRF.contains_range_many,
            result,
        )

    # ------------------------------------------------------------------
    # merging back to the unsharded filter
    # ------------------------------------------------------------------
    def merge(self) -> BloomRF:
        """Union every shard into one filter.

        Bit-identical to the unsharded :class:`BloomRF` built from the same
        insert stream (same config, same seed, inserts are deterministic
        ORs) — the bridge between scale-out shards and single-filter
        serialization, and the exactness witness the tests pin down.
        """
        return BloomRF.merge(self.shards)

    # ------------------------------------------------------------------
    # serialization (single blob and on-disk manifest)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the shard set into one self-describing blob."""
        from repro import serial

        return serial.pack_frame(
            serial.KIND_SHARDED_BLOOMRF,
            {
                "num_shards": self.num_shards,
                "partition": self.partition,
                "config": self.config.to_dict(),
            },
            *[shard.to_bytes() for shard in self.shards],
        )

    @classmethod
    def from_bytes(
        cls, data: bytes, max_workers: int | None = None
    ) -> "ShardedBloomRF":
        """Reconstruct a shard set serialized with :meth:`to_bytes`."""
        from repro import serial

        header, payloads = serial.unpack_frame(
            data, expect_kind=serial.KIND_SHARDED_BLOOMRF
        )
        if len(payloads) != header["num_shards"]:
            raise ValueError(
                f"sharded filter manifest lists {header['num_shards']} shards "
                f"but the blob carries {len(payloads)}"
            )
        config = BloomRFConfig.from_dict(header["config"])
        sharded = cls._shell(
            config, header["num_shards"], header["partition"], max_workers
        )
        sharded.shards = [BloomRF.from_bytes(blob) for blob in payloads]
        return sharded

    def save_manifest(self, directory: str | Path) -> Path:
        """Persist as a directory: ``MANIFEST.json`` + one file per shard.

        The manifest records the partition scheme, the shared config, and
        the per-shard file names/key counts; each shard file is a framed
        :meth:`BloomRF.to_bytes` blob.  This is the merge-compatible
        on-disk form: shards can be loaded individually, and their
        word-level union reconstructs the unsharded filter.
        """
        import json

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        shard_files = []
        for i, shard in enumerate(self.shards):
            name = f"shard-{i:04d}.brf"
            (directory / name).write_bytes(shard.to_bytes())
            shard_files.append({"file": name, "num_keys": shard.num_keys})
        from repro import serial

        manifest = {
            "format": "bloomrf-shard-manifest",
            "version": serial.FORMAT_VERSION,
            "num_shards": self.num_shards,
            "partition": self.partition,
            "config": self.config.to_dict(),
            "shards": shard_files,
        }
        path = directory / "MANIFEST.json"
        path.write_text(json.dumps(manifest, indent=2) + "\n")
        return path

    @classmethod
    def load_manifest(
        cls, directory: str | Path, max_workers: int | None = None
    ) -> "ShardedBloomRF":
        """Reconstruct a shard set saved with :meth:`save_manifest`."""
        import json

        from repro import serial

        directory = Path(directory)
        manifest = json.loads((directory / "MANIFEST.json").read_text())
        if manifest.get("format") != "bloomrf-shard-manifest":
            raise ValueError(
                f"{directory} does not hold a bloomRF shard manifest"
            )
        if manifest["version"] != serial.FORMAT_VERSION:
            raise ValueError(
                f"shard manifest version {manifest['version']} is not "
                f"supported (expected {serial.FORMAT_VERSION})"
            )
        config = BloomRFConfig.from_dict(manifest["config"])
        sharded = cls._shell(
            config, manifest["num_shards"], manifest["partition"], max_workers
        )
        sharded.shards = [
            BloomRF.from_bytes((directory / entry["file"]).read_bytes())
            for entry in manifest["shards"]
        ]
        return sharded

    @classmethod
    def from_spec(
        cls,
        spec,
        num_shards: int,
        partition: str = "hash",
        n_keys: int | None = None,
        per_shard_sizing: bool = False,
        max_workers: int | None = None,
    ) -> "ShardedBloomRF":
        """Build an empty shard set from a :class:`~repro.api.FilterSpec`.

        The spec must describe a bloomRF kind (``"bloomrf"`` /
        ``"bloomrf-basic"``); its tuned config becomes the shared shard
        config.  ``n_keys`` (argument or spec param) sizes the tuning:

        * ``per_shard_sizing=False`` (default) — tune for the *total* key
          count; :meth:`merge` then reproduces the unsharded filter bit
          for bit, at the price of ``num_shards`` full-size shards.
        * ``per_shard_sizing=True`` — tune for each shard's ``1/N`` share
          (space-neutral sharding): every shard still shares one config,
          so cross-shard dispatch and :meth:`merge` keep working, but the
          merged filter is a *different* (smaller) geometry than the
          unsharded one tuned for all keys.
        """
        import math

        from repro.api import make_filter

        total = n_keys if n_keys is not None else spec.params.get("n_keys")
        if total is None:
            raise ValueError(
                "from_spec needs n_keys (argument or spec param) to size "
                "the shard config"
            )
        sized = (
            math.ceil(int(total) / num_shards) if per_shard_sizing else int(total)
        )
        template = make_filter(spec.with_params(n_keys=max(sized, 1)))
        if not isinstance(template, BloomRF):
            raise TypeError(
                "ShardedBloomRF shards must be bloomRF filters, got kind "
                f"{spec.kind!r}"
            )
        return cls(
            template.config,
            num_shards,
            partition=partition,
            max_workers=max_workers,
        )

    @classmethod
    def from_keys(
        cls,
        keys: np.ndarray,
        num_shards: int,
        partition: str = "hash",
        n_keys: int | None = None,
        bits_per_key: float = 16.0,
        max_range: int = 1 << 20,
        domain_bits: int = 64,
        seed: int = 0x5EED,
    ) -> "ShardedBloomRF":
        """Convenience constructor: tune one shared config, shard, insert.

        The config is tuned for the *total* key count so :meth:`merge`
        reproduces the unsharded filter bit for bit.  Each shard then runs
        under-filled (lower per-shard FPR); the price is space —
        ``num_shards`` full-size shards.  Pass a smaller ``n_keys`` to size
        shards for their share of the keys instead, trading the exact-merge
        property's space for a tighter footprint.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        total = int(n_keys if n_keys is not None else max(keys.size, 1))
        template = BloomRF.tuned(
            n_keys=total,
            bits_per_key=bits_per_key,
            max_range=max_range,
            domain_bits=domain_bits,
            seed=seed,
        )
        sharded = cls(template.config, num_shards, partition=partition)
        sharded.insert_many(keys)
        return sharded

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedBloomRF(shards={self.num_shards}, partition={self.partition!r}, "
            f"keys={self.num_keys}, {self.config.describe()})"
        )
