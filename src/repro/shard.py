"""ShardedBloomRF — keyspace-partitioned parallel execution of bloomRF.

The paper's concurrency result (Fig. 12.B) rests on bloomRF being a parallel
data structure: inserts are plain word-level ORs, probes are reads, nothing
locks.  Partitioned filter designs (partitioned Bloom filters, Bloofi's
tree-of-filters) take the next step for scale-out: split one logical filter
into N independent shards so batches execute in parallel.  This module does
that on top of the batch engines from PR 1 and this PR: every shard is a
*same-config* :class:`~repro.core.bloomrf.BloomRF`, batches are grouped by
shard and dispatched through a ``ThreadPoolExecutor`` — the per-shard sweeps
are NumPy kernels that release the GIL, so shards genuinely overlap on
multi-core hosts.

Partition schemes
-----------------
* ``"hash"`` — a key's shard is ``splitmix64(key) mod N``.  Point batches
  touch exactly one shard per key; range queries scatter over the keyspace,
  so every shard probes the full range and the answers are OR-ed (each
  shard has no false negatives on its own keys, so the OR has none).
* ``"range"`` — the domain is split into N equal contiguous sub-ranges.
  Point batches touch one shard per key; a range query is clipped to each
  overlapping shard, so narrow queries touch one shard and only domain-wide
  scans fan out.

Exactness
---------
Shards share one ``(config, seed)``, and a bloomRF insert is a
deterministic OR of bit positions — so :meth:`ShardedBloomRF.merge`
(word-level union of all shards) reconstructs *bit for bit* the unsharded
filter built from the same keys (asserted by the tests).  Per-query answers
are at least as precise: a shard sees only its partition's bits, so the
sharded answer implies the unsharded one and false negatives remain
impossible.  With ``num_shards=1`` the structure *is* the unsharded filter
and every answer matches it exactly.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.bloomrf import BloomRF
from repro.core.config import BloomRFConfig
from repro.hashing import splitmix64_array

__all__ = ["ShardedBloomRF"]

_PARTITIONS = ("hash", "range")
# Seed for the hash-partition dispatch; independent of the filter seeds so
# shard routing never correlates with in-shard probe positions.
_DISPATCH_SEED = 0x5AAD


class ShardedBloomRF:
    """N same-config bloomRF shards behind the one-filter batch API.

    Exposes the same ``insert_many`` / ``contains_point_many`` /
    ``contains_range_many`` (plus their scalar forms) as
    :class:`~repro.core.bloomrf.BloomRF`; batches are partitioned per shard
    and executed concurrently.  Use as a context manager (or call
    :meth:`close`) to release the worker pool deterministically.
    """

    def __init__(
        self,
        config: BloomRFConfig,
        num_shards: int,
        partition: str = "hash",
        max_workers: int | None = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if num_shards > (1 << config.domain_bits):
            # More shards than keys in the domain would leave some shards
            # with an empty (inverted) sub-range.
            raise ValueError(
                f"num_shards {num_shards} exceeds the "
                f"{config.domain_bits}-bit domain size"
            )
        if partition not in _PARTITIONS:
            raise ValueError(
                f"partition must be one of {_PARTITIONS}, got {partition!r}"
            )
        self.config = config
        self.num_shards = num_shards
        self.partition = partition
        self.shards: list[BloomRF] = [BloomRF(config) for _ in range(num_shards)]
        self._d = config.domain_bits
        # Range partition: boundaries[s] is shard s's first key; equal-width
        # contiguous sub-domains (last shard absorbs the rounding remainder).
        domain = 1 << self._d
        self._boundaries = np.array(
            [(s * domain) // num_shards for s in range(num_shards)],
            dtype=np.uint64,
        )
        self._executor: ThreadPoolExecutor | None = None
        self._max_workers = max_workers if max_workers is not None else num_shards

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="bloomrf-shard",
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedBloomRF":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_keys

    @property
    def num_keys(self) -> int:
        return sum(shard.num_keys for shard in self.shards)

    @property
    def size_bits(self) -> int:
        return sum(shard.size_bits for shard in self.shards)

    @property
    def domain_bits(self) -> int:
        return self._d

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def shard_of_many(self, keys: np.ndarray) -> np.ndarray:
        """Owning shard index per key (vectorized dispatch function)."""
        keys = np.asarray(keys, dtype=np.uint64)
        if self.num_shards == 1:
            return np.zeros(keys.size, dtype=np.int64)
        if self.partition == "hash":
            return (
                splitmix64_array(keys, seed=_DISPATCH_SEED)
                % np.uint64(self.num_shards)
            ).astype(np.int64)
        side = np.searchsorted(self._boundaries, keys, side="right") - 1
        return side.astype(np.int64)

    def shard_of(self, key: int) -> int:
        return int(self.shard_of_many(np.array([key], dtype=np.uint64))[0])

    def _run_per_shard(self, jobs: list[tuple[int, object]], fn) -> list:
        """Execute ``fn(shard, payload)`` for each (shard index, payload).

        One thread per involved shard; a single job runs inline (no pool
        round-trip for the common narrow-query case).
        """
        if len(jobs) == 1:
            s, payload = jobs[0]
            return [fn(self.shards[s], payload)]
        pool = self._pool()
        futures = [pool.submit(fn, self.shards[s], payload) for s, payload in jobs]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        self.shards[self.shard_of(key)].insert(key)

    def insert_many(self, keys: np.ndarray) -> None:
        """Bulk insert: partition the batch, one parallel sweep per shard."""
        keys = self.shards[0]._validated_keys(keys)
        if keys.size == 0:
            return
        owner = self.shard_of_many(keys)
        jobs = [
            (s, keys[owner == s])
            for s in np.unique(owner).tolist()
        ]
        self._run_per_shard(jobs, lambda shard, chunk: shard.insert_many(chunk))

    # ------------------------------------------------------------------
    # point lookups
    # ------------------------------------------------------------------
    def contains_point(self, key: int) -> bool:
        return self.shards[self.shard_of(key)].contains_point(key)

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        """Bulk point lookup: each key probes exactly its owning shard."""
        keys = self.shards[0]._validated_keys(keys)
        result = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return result
        owner = self.shard_of_many(keys)
        involved = np.unique(owner).tolist()
        jobs = [(s, np.nonzero(owner == s)[0]) for s in involved]
        answers = self._run_per_shard(
            jobs, lambda shard, idx: shard.contains_point_many(keys[idx])
        )
        for (s, idx), ans in zip(jobs, answers):
            result[idx] = ans
        return result

    __contains__ = contains_point

    # ------------------------------------------------------------------
    # range lookups
    # ------------------------------------------------------------------
    def contains_range(self, l_key: int, r_key: int) -> bool:
        return bool(
            self.contains_range_many(
                np.array([[l_key, r_key]], dtype=np.uint64)
            )[0]
        )

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Bulk range lookup over ``(n, 2)`` inclusive bounds.

        Hash partition: keys of a range scatter over every shard, so each
        shard probes the full batch and the per-query answers are OR-ed.
        Range partition: each query is clipped to its overlapping shards,
        so only those probe it.  Both ways the OR over shards preserves
        no-false-negatives (the key witnessing a non-empty range lives in
        exactly one shard, and that shard cannot miss it).
        """
        bounds = self.shards[0]._validated_bounds(bounds)
        n = bounds.shape[0]
        result = np.zeros(n, dtype=bool)
        if n == 0:
            return result
        if self.partition == "hash" and self.num_shards > 1:
            jobs = [(s, bounds) for s in range(self.num_shards)]
            answers = self._run_per_shard(
                jobs, lambda shard, b: shard.contains_range_many(b)
            )
            for ans in answers:
                result |= ans
            return result
        # Range partition: split each query across its overlapping shards.
        lo_shard = self.shard_of_many(bounds[:, 0])
        hi_shard = self.shard_of_many(bounds[:, 1])
        domain_max = np.uint64(((1 << self._d) - 1) & 0xFFFFFFFFFFFFFFFF)
        jobs: list[tuple[int, tuple[np.ndarray, np.ndarray]]] = []
        for s in range(self.num_shards):
            overlap = np.nonzero((lo_shard <= s) & (hi_shard >= s))[0]
            if overlap.size == 0:
                continue
            shard_lo = self._boundaries[s]
            shard_hi = (
                self._boundaries[s + 1] - np.uint64(1)
                if s + 1 < self.num_shards
                else domain_max
            )
            clipped = np.stack(
                [
                    np.maximum(bounds[overlap, 0], shard_lo),
                    np.minimum(bounds[overlap, 1], shard_hi),
                ],
                axis=1,
            )
            jobs.append((s, (overlap, clipped)))
        answers = self._run_per_shard(
            jobs, lambda shard, job: shard.contains_range_many(job[1])
        )
        for (s, (overlap, _)), ans in zip(jobs, answers):
            result[overlap] |= ans
        return result

    # ------------------------------------------------------------------
    # merging back to the unsharded filter
    # ------------------------------------------------------------------
    def merge(self) -> BloomRF:
        """Union every shard into one filter.

        Bit-identical to the unsharded :class:`BloomRF` built from the same
        insert stream (same config, same seed, inserts are deterministic
        ORs) — the bridge between scale-out shards and single-filter
        serialization, and the exactness witness the tests pin down.
        """
        return BloomRF.merge(self.shards)

    @classmethod
    def from_keys(
        cls,
        keys: np.ndarray,
        num_shards: int,
        partition: str = "hash",
        n_keys: int | None = None,
        bits_per_key: float = 16.0,
        max_range: int = 1 << 20,
        domain_bits: int = 64,
        seed: int = 0x5EED,
    ) -> "ShardedBloomRF":
        """Convenience constructor: tune one shared config, shard, insert.

        The config is tuned for the *total* key count so :meth:`merge`
        reproduces the unsharded filter bit for bit.  Each shard then runs
        under-filled (lower per-shard FPR); the price is space —
        ``num_shards`` full-size shards.  Pass a smaller ``n_keys`` to size
        shards for their share of the keys instead, trading the exact-merge
        property's space for a tighter footprint.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        total = int(n_keys if n_keys is not None else max(keys.size, 1))
        template = BloomRF.tuned(
            n_keys=total,
            bits_per_key=bits_per_key,
            max_range=max_range,
            domain_bits=domain_bits,
            seed=seed,
        )
        sharded = cls(template.config, num_shards, partition=partition)
        sharded.insert_many(keys)
        return sharded

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedBloomRF(shards={self.num_shards}, partition={self.partition!r}, "
            f"keys={self.num_keys}, {self.config.describe()})"
        )
