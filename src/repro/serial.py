"""Versioned on-disk format for filter blocks (the ``.brf`` frame).

The paper's Sect. 9 integration persists every filter as an SST *filter
block*: a self-describing byte string the DB can write at flush time and
deserialize on read.  This module defines that format once for the whole
package — a single framed layout shared by :class:`~repro.core.bloomrf.BloomRF`,
every baseline filter (Bloom, Prefix-Bloom, Rosetta, SuRF, Cuckoo, and the
"none" placeholder), :class:`~repro.shard.ShardedBloomRF` shard sets, and
the on-disk store artifacts of :mod:`repro.lsm.store` (``KIND_SSTABLE``
run files and ``KIND_STORE`` manifests) — so every serialized artifact
starts with the same versioned magic and fails loudly (never silently
mis-answers) on corruption or version skew.  All frame-level failures
raise :class:`SerialError` (a :class:`ValueError` subclass) whose message
names the offending kind byte where relevant.

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic          b"BRF1"
    4       2     format version (currently 1)
    6       2     kind           (what the payloads encode; see KIND_*)
    8       4     header length  H
    12      H     header         UTF-8 JSON (config / geometry / key counts)
    12+H    4     payload count  P
    ...           P x (8-byte length + raw bytes) payload sections

Headers carry the *shape* (configs, counts) as JSON for forward
compatibility and debuggability; payloads carry the raw little-endian
bit-array words, so a round-trip reconstructs every word bit for bit.
That JSON forward compatibility is load-bearing: readers take header
fields with ``.get`` defaults rather than erroring on absence, so a new
optional field (e.g. the ``compaction`` policy a ``KIND_STORE`` manifest's
geometry grew in v1.6) leaves older frames readable — they coerce to the
field's pre-existing behavior (manual compaction) instead of raising.
The frame format itself has no checksum — matching RocksDB filter blocks,
where block-level checksums live a layer below — so a bit flip in a filter
payload yields a *different but functioning* filter while any damage to the
frame itself (magic, version, lengths, header) raises :class:`ValueError`.
Frames carrying *exact* data add their own: ``KIND_SSTABLE`` run frames
(:mod:`repro.lsm.store`) record a payload CRC32 in their header, because a
flipped bit there would change answers rather than move a false positive.
"""

from __future__ import annotations

import json

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "SerialError",
    "KIND_BLOOMRF",
    "KIND_BLOOM",
    "KIND_SHARDED_BLOOMRF",
    "KIND_PREFIX_BLOOM",
    "KIND_ROSETTA",
    "KIND_SURF",
    "KIND_CUCKOO",
    "KIND_NONE",
    "KIND_SSTABLE",
    "KIND_STORE",
    "KIND_WAL",
    "KIND_NAMES",
    "pack_frame",
    "unpack_frame",
    "unpack_frame_prefix",
    "peek_kind",
    "dump_filter",
    "load_filter",
]

MAGIC = b"BRF1"
FORMAT_VERSION = 1

KIND_BLOOMRF = 1
KIND_BLOOM = 2
KIND_SHARDED_BLOOMRF = 3
KIND_PREFIX_BLOOM = 4
KIND_ROSETTA = 5
KIND_SURF = 6
KIND_CUCKOO = 7
KIND_NONE = 8
KIND_SSTABLE = 9
KIND_STORE = 10
KIND_WAL = 11

KIND_NAMES = {
    KIND_BLOOMRF: "bloomrf",
    KIND_BLOOM: "bloom",
    KIND_SHARDED_BLOOMRF: "sharded-bloomrf",
    KIND_PREFIX_BLOOM: "prefix-bloom",
    KIND_ROSETTA: "rosetta",
    KIND_SURF: "surf",
    KIND_CUCKOO: "cuckoo",
    KIND_NONE: "none",
    KIND_SSTABLE: "sstable",
    KIND_STORE: "store-manifest",
    KIND_WAL: "write-ahead-log",
}


class SerialError(ValueError):
    """A serialized filter frame is corrupt, truncated, or of the wrong kind.

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    handlers keep working; new code should catch :class:`SerialError` to
    distinguish frame problems from ordinary argument errors.
    """


_PREFIX_LEN = 12  # magic + version + kind + header length


def pack_frame(kind: int, header: dict, *payloads: bytes) -> bytes:
    """Assemble one frame: magic, version, kind, JSON header, payloads."""
    if kind not in KIND_NAMES:
        raise SerialError(f"unknown serialization kind {kind}")
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    parts = [
        MAGIC,
        FORMAT_VERSION.to_bytes(2, "little"),
        kind.to_bytes(2, "little"),
        len(header_bytes).to_bytes(4, "little"),
        header_bytes,
        len(payloads).to_bytes(4, "little"),
    ]
    for payload in payloads:
        parts.append(len(payload).to_bytes(8, "little"))
        parts.append(payload)
    return b"".join(parts)


def _take(data: bytes, cursor: int, size: int, what: str) -> tuple[bytes, int]:
    if cursor + size > len(data):
        raise SerialError(
            f"truncated filter frame: expected {size} more bytes for {what}, "
            f"have {len(data) - cursor}"
        )
    return data[cursor : cursor + size], cursor + size


def unpack_frame(
    data: bytes, expect_kind: int | None = None
) -> tuple[dict, list[bytes]]:
    """Parse a frame back into ``(header, payloads)``.

    Raises :class:`SerialError` on a bad magic, an unsupported format
    version, a kind mismatch, truncation, or a malformed header.
    """
    kind, header, payloads = _unpack_any(data)
    _check_kind(kind, expect_kind)
    return header, payloads


def unpack_frame_prefix(
    data: bytes, start: int = 0, expect_kind: int | None = None
) -> tuple[dict, list[bytes], int]:
    """Parse the frame beginning at ``start``; tolerate trailing bytes.

    The streaming counterpart of :func:`unpack_frame` for files that hold
    a *sequence* of frames (the write-ahead log header followed by its
    records, a store manifest followed by appended run deltas): returns
    ``(header, payloads, end)`` where ``end`` is the offset one past the
    parsed frame, ready to hand back as the next ``start``.  Failures
    raise exactly like :func:`unpack_frame`.
    """
    kind, header, payloads, end = _unpack_at(data, start)
    _check_kind(kind, expect_kind)
    return header, payloads, end


def _check_kind(kind: int, expect_kind: int | None) -> None:
    if expect_kind is not None and kind != expect_kind:
        raise SerialError(
            f"serialized object is a {KIND_NAMES.get(kind, kind)!r} frame "
            f"(kind byte {kind}), expected {KIND_NAMES[expect_kind]!r} "
            f"(kind byte {expect_kind})"
        )


def peek_kind(data: bytes) -> int:
    """Kind of a frame without parsing payloads (CLI/inspect dispatch)."""
    prefix, _ = _take(data, 0, _PREFIX_LEN, "frame prefix")
    _check_prefix(prefix)
    return int.from_bytes(prefix[6:8], "little")


def _check_prefix(prefix: bytes) -> None:
    if prefix[:4] != MAGIC:
        raise SerialError(
            f"not a serialized repro filter (bad magic {prefix[:4]!r}, "
            f"expected {MAGIC!r})"
        )
    version = int.from_bytes(prefix[4:6], "little")
    if version != FORMAT_VERSION:
        raise SerialError(
            f"unsupported filter format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )


def _unpack_any(data: bytes) -> tuple[int, dict, list[bytes]]:
    kind, header, payloads, cursor = _unpack_at(data, 0)
    if cursor != len(data):
        raise SerialError(
            f"trailing garbage after filter frame ({len(data) - cursor} bytes)"
        )
    return kind, header, payloads


def _unpack_at(data: bytes, start: int) -> tuple[int, dict, list[bytes], int]:
    prefix, cursor = _take(data, start, _PREFIX_LEN, "frame prefix")
    _check_prefix(prefix)
    kind = int.from_bytes(prefix[6:8], "little")
    if kind not in KIND_NAMES:
        raise SerialError(f"unknown serialization kind (kind byte {kind})")
    header_len = int.from_bytes(prefix[8:12], "little")
    header_bytes, cursor = _take(data, cursor, header_len, "header")
    try:
        header = json.loads(header_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerialError(f"corrupt filter frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise SerialError("corrupt filter frame header: not a JSON object")
    count_bytes, cursor = _take(data, cursor, 4, "payload count")
    payloads = []
    for i in range(int.from_bytes(count_bytes, "little")):
        size_bytes, cursor = _take(data, cursor, 8, f"payload {i} length")
        payload, cursor = _take(
            data, cursor, int.from_bytes(size_bytes, "little"), f"payload {i}"
        )
        payloads.append(payload)
    return kind, header, payloads, cursor


# ----------------------------------------------------------------------
# kind dispatch (through the repro.api registry; lazy imports keep this
# module free of filter dependencies)
# ----------------------------------------------------------------------
def dump_filter(filt) -> bytes:
    """Serialize any supported filter object to its framed bytes."""
    to_bytes = getattr(filt, "to_bytes", None)
    if to_bytes is None:
        raise TypeError(f"cannot serialize {type(filt).__name__} objects")
    return to_bytes()


def load_filter(data: bytes):
    """Reconstruct whatever filter a frame holds, dispatching on its kind.

    Dispatch goes through the :mod:`repro.api` registry, so every
    registered kind — core bloomRF, every baseline, sharded sets — loads
    through this one entry point.
    """
    from repro.api import filter_from_bytes

    return filter_from_bytes(data)
