"""Versioned on-disk format for filter blocks (the ``.brf`` frame).

The paper's Sect. 9 integration persists every filter as an SST *filter
block*: a self-describing byte string the DB can write at flush time and
deserialize on read.  This module defines that format once for the whole
package — a single framed layout shared by :class:`~repro.core.bloomrf.BloomRF`,
every baseline filter (Bloom, Prefix-Bloom, Rosetta, SuRF, Cuckoo, and the
"none" placeholder), :class:`~repro.shard.ShardedBloomRF` shard sets, and
the on-disk store artifacts of :mod:`repro.lsm.store` (``KIND_SSTABLE``
run files and ``KIND_STORE`` manifests) — so every serialized artifact
starts with the same versioned magic and fails loudly (never silently
mis-answers) on corruption or version skew.  All frame-level failures
raise :class:`SerialError` (a :class:`ValueError` subclass) whose message
names the offending kind byte where relevant.

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic          b"BRF1"
    4       2     format version (1, or 2 for block-compressed payloads)
    6       2     kind           (what the payloads encode; see KIND_*)
    8       4     header length  H
    12      H     header         UTF-8 JSON (config / geometry / key counts)
    12+H    4     payload count  P
    ...           P x (8-byte length + raw bytes) payload sections

Version 2 keeps the identical framing but marks the payload *bytes* as
block-compressed: the header carries a ``codec`` name, a ``block_bytes``
split size, per-payload raw lengths, and per-payload block tables
(``[compressed_len, crc32], ...``) so readers can decompress — and
CRC-verify — one block at a time (:mod:`repro.lsm.blocks`).  The version
bump exists purely so version-1-only readers fail loudly on frames whose
payload bytes they would otherwise misinterpret; version-1 frames are
written bit-identically to before.

Headers carry the *shape* (configs, counts) as JSON for forward
compatibility and debuggability; payloads carry the raw little-endian
bit-array words, so a round-trip reconstructs every word bit for bit.
That JSON forward compatibility is load-bearing: readers take header
fields with ``.get`` defaults rather than erroring on absence, so a new
optional field (e.g. the ``compaction`` policy a ``KIND_STORE`` manifest's
geometry grew in v1.6) leaves older frames readable — they coerce to the
field's pre-existing behavior (manual compaction) instead of raising.
The frame format itself has no checksum — matching RocksDB filter blocks,
where block-level checksums live a layer below — so a bit flip in a filter
payload yields a *different but functioning* filter while any damage to the
frame itself (magic, version, lengths, header) raises :class:`ValueError`.
Frames carrying *exact* data add their own: ``KIND_SSTABLE`` run frames
(:mod:`repro.lsm.store`) record a payload CRC32 in their header, because a
flipped bit there would change answers rather than move a false positive.

This module is part of the typed beachhead (``mypy --strict`` in CI), and
``repro lint`` enforces its contracts package-wide: every
:class:`SerialError` raised at an I/O boundary must name the offending
file, and every ``KIND_*`` constant must have a registered reader
(``serial-discipline``).
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
import zlib
from typing import TYPE_CHECKING, Any, TypeVar

if TYPE_CHECKING:
    import numpy.typing as npt

#: Frame parsing is generic over the buffer type: ``bytes`` input yields
#: ``bytes`` payloads (the eager path), ``memoryview`` input yields
#: zero-copy sub-views (the :func:`map_frame` path).
_Buf = TypeVar("_Buf", bytes, memoryview)

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "FORMAT_VERSION_BLOCKS",
    "SerialError",
    "FrameView",
    "map_frame",
    "KIND_BLOOMRF",
    "KIND_BLOOM",
    "KIND_SHARDED_BLOOMRF",
    "KIND_PREFIX_BLOOM",
    "KIND_ROSETTA",
    "KIND_SURF",
    "KIND_CUCKOO",
    "KIND_NONE",
    "KIND_SSTABLE",
    "KIND_STORE",
    "KIND_WAL",
    "KIND_NAMES",
    "pack_frame",
    "unpack_frame",
    "unpack_frame_prefix",
    "peek_kind",
    "dump_filter",
    "load_filter",
]

MAGIC = b"BRF1"
FORMAT_VERSION = 1
# Version 2: same framing, but the payload bytes are block-compressed and
# the header carries the codec + per-block tables (repro.lsm.blocks).
FORMAT_VERSION_BLOCKS = 2
_SUPPORTED_VERSIONS = frozenset({FORMAT_VERSION, FORMAT_VERSION_BLOCKS})

KIND_BLOOMRF = 1
KIND_BLOOM = 2
KIND_SHARDED_BLOOMRF = 3
KIND_PREFIX_BLOOM = 4
KIND_ROSETTA = 5
KIND_SURF = 6
KIND_CUCKOO = 7
KIND_NONE = 8
KIND_SSTABLE = 9
KIND_STORE = 10
KIND_WAL = 11

KIND_NAMES = {
    KIND_BLOOMRF: "bloomrf",
    KIND_BLOOM: "bloom",
    KIND_SHARDED_BLOOMRF: "sharded-bloomrf",
    KIND_PREFIX_BLOOM: "prefix-bloom",
    KIND_ROSETTA: "rosetta",
    KIND_SURF: "surf",
    KIND_CUCKOO: "cuckoo",
    KIND_NONE: "none",
    KIND_SSTABLE: "sstable",
    KIND_STORE: "store-manifest",
    KIND_WAL: "write-ahead-log",
}


class SerialError(ValueError):
    """A serialized filter frame is corrupt, truncated, or of the wrong kind.

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    handlers keep working; new code should catch :class:`SerialError` to
    distinguish frame problems from ordinary argument errors.
    """


_PREFIX_LEN = 12  # magic + version + kind + header length


def pack_frame(
    kind: int, header: dict[str, Any], *payloads: bytes, version: int = FORMAT_VERSION
) -> bytes:
    """Assemble one frame: magic, version, kind, JSON header, payloads."""
    if kind not in KIND_NAMES:
        raise SerialError(f"unknown serialization kind {kind}")
    if version not in _SUPPORTED_VERSIONS:
        raise SerialError(f"unsupported filter format version {version}")
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    parts = [
        MAGIC,
        version.to_bytes(2, "little"),
        kind.to_bytes(2, "little"),
        len(header_bytes).to_bytes(4, "little"),
        header_bytes,
        len(payloads).to_bytes(4, "little"),
    ]
    for payload in payloads:
        parts.append(len(payload).to_bytes(8, "little"))
        parts.append(payload)
    return b"".join(parts)


def _take(data: _Buf, cursor: int, size: int, what: str) -> tuple[_Buf, int]:
    """Slice ``size`` bytes at ``cursor`` (zero-copy for memoryview input)."""
    if cursor + size > len(data):
        raise SerialError(
            f"truncated filter frame: expected {size} more bytes for {what} "
            f"at offset {cursor}, have {len(data) - cursor}"
        )
    return data[cursor : cursor + size], cursor + size


def unpack_frame(
    data: bytes, expect_kind: int | None = None
) -> tuple[dict[str, Any], list[bytes]]:
    """Parse a frame back into ``(header, payloads)``.

    Raises :class:`SerialError` on a bad magic, an unsupported format
    version, a kind mismatch, truncation, or a malformed header.
    """
    kind, header, payloads = _unpack_any(data)
    _check_kind(kind, expect_kind)
    return header, payloads


def unpack_frame_prefix(
    data: bytes, start: int = 0, expect_kind: int | None = None
) -> tuple[dict[str, Any], list[bytes], int]:
    """Parse the frame beginning at ``start``; tolerate trailing bytes.

    The streaming counterpart of :func:`unpack_frame` for files that hold
    a *sequence* of frames (the write-ahead log header followed by its
    records, a store manifest followed by appended run deltas): returns
    ``(header, payloads, end)`` where ``end`` is the offset one past the
    parsed frame, ready to hand back as the next ``start``.  Failures
    raise exactly like :func:`unpack_frame`.
    """
    kind, header, payloads, end = _unpack_at(data, start)
    _check_kind(kind, expect_kind)
    return header, payloads, end


def _check_kind(kind: int, expect_kind: int | None) -> None:
    if expect_kind is not None and kind != expect_kind:
        raise SerialError(
            f"serialized object is a {KIND_NAMES.get(kind, kind)!r} frame "
            f"(kind byte {kind}), expected {KIND_NAMES[expect_kind]!r} "
            f"(kind byte {expect_kind})"
        )


def peek_kind(data: bytes) -> int:
    """Kind of a frame without parsing payloads (CLI/inspect dispatch)."""
    prefix, _ = _take(data, 0, _PREFIX_LEN, "frame prefix")
    _check_prefix(prefix)
    return int.from_bytes(prefix[6:8], "little")


def _check_prefix(prefix: bytes | memoryview) -> int:
    if bytes(prefix[:4]) != MAGIC:
        raise SerialError(
            f"not a serialized repro filter (bad magic {bytes(prefix[:4])!r}, "
            f"expected {MAGIC!r})"
        )
    version = int.from_bytes(prefix[4:6], "little")
    if version not in _SUPPORTED_VERSIONS:
        raise SerialError(
            f"unsupported filter format version {version} "
            f"(this build reads versions {min(_SUPPORTED_VERSIONS)}-"
            f"{max(_SUPPORTED_VERSIONS)})"
        )
    return version


def _unpack_any(data: _Buf) -> tuple[int, dict[str, Any], list[_Buf]]:
    kind, header, payloads, cursor = _unpack_at(data, 0)
    if cursor != len(data):
        raise SerialError(
            f"trailing garbage after filter frame ({len(data) - cursor} bytes)"
        )
    return kind, header, payloads


def _unpack_at(data: _Buf, start: int) -> tuple[int, dict[str, Any], list[_Buf], int]:
    """Parse one frame; ``data`` may be ``bytes`` or a ``memoryview``.

    With a memoryview input (the :func:`map_frame` path) every returned
    payload is a zero-copy sub-view of ``data`` — no payload byte is read,
    so parsing a mapped frame faults in only its prefix and header pages.
    """
    prefix, cursor = _take(data, start, _PREFIX_LEN, "frame prefix")
    _check_prefix(prefix)
    kind = int.from_bytes(prefix[6:8], "little")
    if kind not in KIND_NAMES:
        raise SerialError(f"unknown serialization kind (kind byte {kind})")
    header_len = int.from_bytes(prefix[8:12], "little")
    header_bytes, cursor = _take(data, cursor, header_len, "header")
    try:
        header = json.loads(bytes(header_bytes).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerialError(f"corrupt filter frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise SerialError("corrupt filter frame header: not a JSON object")
    count_bytes, cursor = _take(data, cursor, 4, "payload count")
    payloads: list[_Buf] = []
    for i in range(int.from_bytes(count_bytes, "little")):
        size_bytes, cursor = _take(data, cursor, 8, f"payload {i} length")
        payload, cursor = _take(
            data, cursor, int.from_bytes(size_bytes, "little"), f"payload {i}"
        )
        payloads.append(payload)
    return kind, header, payloads, cursor


# ----------------------------------------------------------------------
# zero-copy mapped frames
# ----------------------------------------------------------------------
class FrameView:
    """One on-disk frame exposed as zero-copy views over an ``mmap``.

    Produced by :func:`map_frame`.  ``payloads`` are :class:`memoryview`
    slices of the mapping: wrapping one in ``np.frombuffer`` yields an
    array whose pages fault in only when touched, so a reopened store pays
    O(header) work per run instead of O(bytes).  The views keep the
    mapping alive — :meth:`close` drops the frame's own references and
    the map itself is released once the last derived array dies (files
    are immutable once sealed, and POSIX keeps unlinked-but-mapped pages
    valid, so pruning a run never invalidates live views).

    Unlike :func:`unpack_frame`, mapping does **not** verify payload
    checksums — that would fault in every page and defeat the lazy open.
    Callers that want the eager guarantee call :meth:`payload_crc32`;
    version-2 frames instead carry per-block CRCs that
    :mod:`repro.lsm.blocks` verifies on first access to each block.
    """

    __slots__ = ("path", "kind", "version", "header", "payloads", "_mmap", "_view")

    def __init__(
        self,
        path: str | os.PathLike[str],
        kind: int,
        version: int,
        header: dict[str, Any],
        payloads: list[memoryview],
        mm: _mmap.mmap | None,
        view: memoryview | None,
    ) -> None:
        self.path = str(path)
        self.kind = kind
        self.version = version
        self.header = header
        self.payloads: list[memoryview] = payloads
        self._mmap: _mmap.mmap | None = mm
        self._view: memoryview | None = view

    @property
    def view(self) -> memoryview | None:
        """The whole-frame memoryview (for kind-dispatched reloading)."""
        return self._view

    def payload_array(self, index: int, dtype: npt.DTypeLike) -> npt.NDArray[Any]:
        """Payload ``index`` as a read-only zero-copy numpy view."""
        import numpy as np

        return np.frombuffer(self.payloads[index], dtype=dtype)

    def payload_crc32(self) -> int:
        """CRC32 chained over all payload bytes (faults in every page)."""
        crc = 0
        for payload in self.payloads:
            crc = zlib.crc32(payload, crc)
        return crc

    def close(self) -> None:
        """Drop this frame's own references to the mapping.

        Arrays already derived from ``payloads`` stay valid: each holds
        its own buffer reference, and the map is unmapped only when the
        last one is garbage-collected (``mmap.close`` on a still-exported
        buffer is a no-op here, not an error).
        """
        self.payloads = []
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:  # derived views still hold the buffer
                pass
            self._mmap = None

    def __enter__(self) -> "FrameView":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def map_frame(
    path: str | os.PathLike[str], expect_kind: int | None = None
) -> FrameView:
    """Map the single frame in ``path`` without reading its payloads.

    The lazy counterpart of ``unpack_frame(path.read_bytes())``: the file
    is ``mmap``-ed read-only, the prefix and JSON header are validated
    eagerly, and the payloads come back as zero-copy views
    (:class:`FrameView`).  Every failure raises :class:`SerialError`
    naming the file and the offending offset.
    """
    path = os.fspath(path)
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError as exc:
        raise SerialError(f"{path}: cannot map frame: {exc}") from exc
    try:
        size = os.fstat(fd).st_size
        if size == 0:
            raise SerialError(f"{path}: empty file, not a serialized frame")
        mm = _mmap.mmap(fd, 0, access=_mmap.ACCESS_READ)
    finally:
        os.close(fd)
    view = memoryview(mm)
    try:
        kind, header, payloads, end = _unpack_at(view, 0)
        if end != size:
            raise SerialError(
                f"trailing garbage after filter frame "
                f"({size - end} bytes at offset {end})"
            )
        _check_kind(kind, expect_kind)
    except SerialError as exc:
        view.release()
        try:
            mm.close()
        except BufferError:  # traceback frames may still hold sub-views
            pass
        raise SerialError(f"{path}: {exc}") from exc
    version = int.from_bytes(view[4:6], "little")
    return FrameView(path, kind, version, header, payloads, mm, view)


# ----------------------------------------------------------------------
# kind dispatch (through the repro.api registry; lazy imports keep this
# module free of filter dependencies)
# ----------------------------------------------------------------------
def dump_filter(filt: object) -> bytes:
    """Serialize any supported filter object to its framed bytes."""
    to_bytes = getattr(filt, "to_bytes", None)
    if to_bytes is None:
        raise TypeError(f"cannot serialize {type(filt).__name__} objects")
    blob: bytes = to_bytes()
    return blob


def load_filter(data: bytes) -> object:
    """Reconstruct whatever filter a frame holds, dispatching on its kind.

    Dispatch goes through the :mod:`repro.api` registry, so every
    registered kind — core bloomRF, every baseline, sharded sets — loads
    through this one entry point.
    """
    from repro.api import filter_from_bytes

    loaded: object = filter_from_bytes(data)
    return loaded
