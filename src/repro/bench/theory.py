"""Analytic curves for Fig. 8: lower bounds and Rosetta's space model.

* Carter et al. [7]: any point filter with FPR eps needs
  ``m >= n log2(1/eps)`` bits.
* Goswami et al. [20]: any range filter answering ranges up to ``R`` with
  FPR eps needs (family over gamma > 1)::

      m >= n log2(R^(1-gamma*eps)/eps) + n log2(1 - 4nR/2^d) (1 - 1/gamma) e

  The usable lower bound is the pointwise maximum over gamma, which we take
  numerically (the paper determines gamma as a function of eps the same way).
* Rosetta (F) first-cut space: ``m ~ log2(e) * n * log2(R/eps)`` [29].

All functions return **bits per key** so they plot directly against the
bloomRF model of :mod:`repro.core.model`.
"""

from __future__ import annotations

import math

__all__ = [
    "carter_point_lower_bound",
    "goswami_range_lower_bound",
    "rosetta_first_cut_bits",
    "rosetta_first_cut_fpr",
    "bloomrf_bits_for_range_fpr",
]


def carter_point_lower_bound(fpr: float) -> float:
    """Bits/key lower bound for point filters [7]."""
    if not 0 < fpr < 1:
        raise ValueError(f"fpr must be in (0, 1), got {fpr}")
    return math.log2(1.0 / fpr)


def goswami_range_lower_bound(
    fpr: float,
    range_size: int,
    n_keys: int,
    domain_bits: int = 64,
    gamma_grid: int = 200,
) -> float:
    """Bits/key lower bound for range filters [20] (max over gamma)."""
    if not 0 < fpr < 1:
        raise ValueError(f"fpr must be in (0, 1), got {fpr}")
    if range_size < 2:
        return carter_point_lower_bound(fpr)
    occupancy = 1.0 - 4.0 * n_keys * range_size / (2.0**domain_bits)
    best = 0.0
    for i in range(1, gamma_grid + 1):
        gamma = 1.0 + i * (1.0 / fpr - 1.0) / gamma_grid
        exponent = 1.0 - gamma * fpr
        if exponent <= 0:
            continue
        term = math.log2(range_size**exponent / fpr)
        if occupancy > 0:
            term += math.log2(occupancy) * (1.0 - 1.0 / gamma) * math.e
        best = max(best, term)
    return best


def rosetta_first_cut_bits(fpr: float, range_size: int) -> float:
    """Rosetta (F) space model: ``log2(e) * log2(R/eps)`` bits/key [29]."""
    if not 0 < fpr < 1:
        raise ValueError(f"fpr must be in (0, 1), got {fpr}")
    return math.log2(math.e) * math.log2(max(range_size, 1) / fpr)


def rosetta_first_cut_fpr(bits_per_key: float, range_size: int) -> float:
    """Inverse of :func:`rosetta_first_cut_bits` (FPR for a budget)."""
    return min(1.0, max(range_size, 1) / 2.0 ** (bits_per_key / math.log2(math.e)))


def bloomrf_bits_for_range_fpr(
    fpr: float,
    range_size: int,
    n_keys: int,
    domain_bits: int = 64,
    delta: int = 7,
) -> float:
    """Bits/key basic bloomRF needs for range FPR ``fpr`` (eq. 6 inverted).

    Solves ``2 (1 - e^{-kn/m})^(k - log2 R / delta) = fpr`` for ``m`` with
    ``k`` fixed by the datatype (Sect. 6's comparison uses exactly this
    non-free-``k`` constraint to explain the small point-query gap).
    """
    if not 0 < fpr < 1:
        raise ValueError(f"fpr must be in (0, 1), got {fpr}")
    k = max(1, round((domain_bits - math.log2(n_keys)) / delta))
    exponent = k - math.log2(max(range_size, 1)) / delta
    if exponent <= 0:
        return float("inf")
    inner = (fpr / 2.0) ** (1.0 / exponent)  # = 1 - e^{-kn/m}
    if inner >= 1.0:
        return 0.0
    return k / -math.log(1.0 - inner)
