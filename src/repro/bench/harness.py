"""Benchmark harness: build filters, measure FPR/latency, print paper tables.

Every ``benchmarks/bench_*.py`` file drives this module.  The central
abstraction is :class:`FilterUnderTest` — a uniform facade over bloomRF and
all baselines (standalone setting) so sweeps over (filter, bits/key, range
size, distribution) are one loop.

Scale control: the environment variable ``REPRO_SCALE`` multiplies the
default key/query counts (default 1.0; the paper's 50M-key runs correspond
to roughly ``REPRO_SCALE=250``).  EXPERIMENTS.md records the scale used.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.api import make_filter, standard_spec
from repro.workloads.queries import QueryWorkload

__all__ = [
    "SCALE",
    "scaled",
    "FilterUnderTest",
    "MeasuredFpr",
    "Throughput",
    "build_standalone_filter",
    "measure_point_fpr",
    "measure_range_fpr",
    "measure_throughput",
    "print_table",
    "write_result",
]

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def scaled(base: int, minimum: int = 1) -> int:
    """Apply the global scale factor to a workload size."""
    return max(minimum, int(base * SCALE))


@dataclass
class FilterUnderTest:
    """Uniform probe interface over any filter in the package."""

    name: str
    point: Callable[[int], bool]
    range_: Callable[[int, int], bool]
    size_bits: int
    build_time_s: float
    # Bulk interfaces (``(n, 2) bounds -> bool array`` / ``keys -> bool
    # array``); None for filters without one — measurements then fall back
    # to the scalar loop.
    range_many: Callable[[np.ndarray], np.ndarray] | None = None
    point_many: Callable[[np.ndarray], np.ndarray] | None = None

    def bits_per_key(self, n_keys: int) -> float:
        return self.size_bits / n_keys


def build_standalone_filter(
    name: str,
    keys: np.ndarray,
    bits_per_key: float,
    max_range: int,
    seed: int = 1,
) -> FilterUnderTest:
    """Build one filter over ``keys`` in the standalone setting.

    ``name`` is any registered filter kind (see
    :func:`repro.api.available_kinds`); the shared sweep knobs map onto
    kind-specific parameters through :func:`repro.api.standard_spec`, and
    construction runs through the one registry path the LSM policies and
    the CLI use.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    n = int(keys.size)
    spec = standard_spec(
        name, bits_per_key=bits_per_key, max_range=max_range, seed=seed
    )
    start = time.perf_counter()
    filt = make_filter(spec, n_keys=max(n, 1))
    filt.insert_many(keys)
    size_bits = filt.size_bits  # forces lazy builders (SuRF) inside the clock
    fut = FilterUnderTest(
        name,
        filt.contains_point,
        filt.contains_range,
        size_bits,
        0.0,
        range_many=filt.contains_range_many,
        point_many=filt.contains_point_many,
    )
    fut.build_time_s = time.perf_counter() - start
    return fut


@dataclass
class MeasuredFpr:
    """FPR measurement over a batch of guaranteed-empty queries."""

    filter_name: str
    fpr: float
    queries: int
    positives: int
    probe_seconds: float

    @property
    def queries_per_second(self) -> float:
        if self.probe_seconds <= 0:
            return float("inf")
        return self.queries / self.probe_seconds


def measure_range_fpr(
    fut: FilterUnderTest, workload: QueryWorkload, batch: bool = True
) -> MeasuredFpr:
    """FPR + probe latency over an all-empty range workload.

    Uses the filter's bulk range interface when it has one (the default;
    results are bit-identical to the scalar loop), so the measurement
    exercises the batched engine exactly like a batched production caller.
    Pass ``batch=False`` to force the scalar per-query loop.
    """
    if batch and fut.range_many is not None:
        start = time.perf_counter()
        answers = fut.range_many(workload.bounds)
        elapsed = time.perf_counter() - start
        positives = int(np.count_nonzero(answers))
    else:
        positives = 0
        start = time.perf_counter()
        for lo, hi in workload:
            positives += fut.range_(lo, hi)
        elapsed = time.perf_counter() - start
    return MeasuredFpr(
        filter_name=fut.name,
        fpr=positives / len(workload),
        queries=len(workload),
        positives=positives,
        probe_seconds=elapsed,
    )


def measure_point_fpr(
    fut: FilterUnderTest, lookup_keys: np.ndarray, batch: bool = True
) -> MeasuredFpr:
    """FPR + probe latency over guaranteed-absent point lookups.

    Uses the filter's bulk point interface when it has one (the default;
    results are bit-identical to the scalar loop), mirroring
    :func:`measure_range_fpr`.  Pass ``batch=False`` to force the scalar
    per-key loop.
    """
    if batch and fut.point_many is not None:
        start = time.perf_counter()
        answers = fut.point_many(np.asarray(lookup_keys, dtype=np.uint64))
        elapsed = time.perf_counter() - start
        positives = int(np.count_nonzero(answers))
    else:
        positives = 0
        start = time.perf_counter()
        for key in lookup_keys:
            positives += fut.point(int(key))
        elapsed = time.perf_counter() - start
    return MeasuredFpr(
        filter_name=fut.name,
        fpr=positives / len(lookup_keys),
        queries=len(lookup_keys),
        positives=positives,
        probe_seconds=elapsed,
    )


@dataclass
class Throughput:
    """Operations/second over a timed batch."""

    name: str
    operations: int
    seconds: float

    @property
    def ops_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.operations / self.seconds


def measure_throughput(name: str, operation: Callable[[], None], count: int) -> Throughput:
    """Time ``count`` invocations of a zero-argument operation."""
    start = time.perf_counter()
    for _ in range(count):
        operation()
    return Throughput(name=name, operations=count, seconds=time.perf_counter() - start)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def print_table(
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    sink: list[str] | None = None,
) -> str:
    """Render an aligned text table, print it, and return it."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    text = "\n".join(lines)
    print("\n" + text)
    if sink is not None:
        sink.append(text)
    return text


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 0.001 or abs(cell) >= 100000:
            return f"{cell:.2e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".")
    return str(cell)


def write_result(name: str, text: str) -> Path:
    """Persist a bench table under benchmarks/results/ for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path
