"""Shared measurement and reporting machinery for the benchmark suite."""

from repro.bench.harness import (
    FilterUnderTest,
    MeasuredFpr,
    Throughput,
    build_standalone_filter,
    measure_point_fpr,
    measure_range_fpr,
    measure_throughput,
    print_table,
    write_result,
)
from repro.bench.theory import (
    carter_point_lower_bound,
    goswami_range_lower_bound,
    rosetta_first_cut_bits,
    rosetta_first_cut_fpr,
)

__all__ = [
    "FilterUnderTest",
    "MeasuredFpr",
    "Throughput",
    "build_standalone_filter",
    "measure_point_fpr",
    "measure_range_fpr",
    "measure_throughput",
    "print_table",
    "write_result",
    "carter_point_lower_bound",
    "goswami_range_lower_bound",
    "rosetta_first_cut_bits",
    "rosetta_first_cut_fpr",
]
