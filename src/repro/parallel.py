"""Reusable partition/dispatch layer for sharded execution.

Both scale-out structures in this package — :class:`repro.shard.ShardedBloomRF`
(N same-config filter shards) and :class:`repro.lsm.sharded.ShardedLsmDB`
(N per-shard LSM engines) — do the same three things: decide which shard owns
each key of a batch, dispatch per-shard sub-batches through a worker pool,
and scatter the per-shard answers back into input order.  This module holds
that machinery once, so the dispatch function, the executor lifecycle, and
the regrouping helpers stay identical across both (Bloofi makes the same
move: many filters behind one dispatch/merge layer).

Partitioners
------------
* :class:`HashPartitioner` — a key's shard is ``splitmix64(key) mod N``;
  point batches touch exactly one shard per key, range queries scatter over
  the whole keyspace so every shard must be consulted.
* :class:`RangePartitioner` — the domain splits into N equal contiguous
  sub-ranges; point batches touch one shard per key and a range query is
  clipped to its overlapping shards only.

Both expose the same vectorized interface (``owner_of_many`` /
``owner_of`` / ``split_bounds``), so callers never branch on the scheme.

Executor
--------
:class:`ShardPool` wraps a lazily created ``ThreadPoolExecutor`` behind an
explicit lifecycle: it is a context manager with an idempotent
:meth:`~ShardPool.close` — create many sharded structures in a benchmark
loop and no worker threads leak.  Single-job batches run inline (no pool
round-trip for the common narrow-query case), and the per-shard work units
are expected to be GIL-releasing NumPy sweeps so shards genuinely overlap
on multi-core hosts.

Worker-path contract (machine-checked by ``repro lint``): pool workers
must never swallow exceptions silently — failures are recorded or
re-raised so callers see them (``exception-discipline``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.hashing import splitmix64_array

__all__ = [
    "HashPartitioner",
    "RangePartitioner",
    "ShardPool",
    "make_partitioner",
    "group_by_owner",
    "run_point_batch",
    "run_bounds_batch",
    "PARTITION_SCHEMES",
]

PARTITION_SCHEMES = ("hash", "range")

# Seed for the hash-partition dispatch; independent of any filter seed so
# shard routing never correlates with in-shard probe positions.
_DISPATCH_SEED = 0x5AAD


class HashPartitioner:
    """Uniform hash dispatch: shard of ``key`` is ``splitmix64(key) mod N``."""

    scheme = "hash"

    def __init__(self, num_partitions: int, domain_bits: int = 64) -> None:
        _check_partition_count(num_partitions, domain_bits)
        self.num_partitions = num_partitions
        self.domain_bits = domain_bits

    def owner_of_many(self, keys: np.ndarray) -> np.ndarray:
        """Owning shard index per key (vectorized dispatch function)."""
        keys = np.asarray(keys, dtype=np.uint64)
        if self.num_partitions == 1:
            return np.zeros(keys.size, dtype=np.int64)
        return (
            splitmix64_array(keys, seed=_DISPATCH_SEED)
            % np.uint64(self.num_partitions)
        ).astype(np.int64)

    def owner_of(self, key: int) -> int:
        return int(self.owner_of_many(np.array([key], dtype=np.uint64))[0])

    def split_bounds(
        self, bounds: np.ndarray
    ) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Per-shard ``(shard, query_indices, clipped_bounds)`` jobs.

        Hashed keys of any range scatter over every shard, so each shard
        must probe the full batch with the original bounds.
        """
        idx = np.arange(bounds.shape[0])
        return [(s, idx, bounds) for s in range(self.num_partitions)]


class RangePartitioner:
    """Contiguous-domain dispatch: N equal sub-ranges of ``[0, 2**d)``."""

    scheme = "range"

    def __init__(self, num_partitions: int, domain_bits: int = 64) -> None:
        _check_partition_count(num_partitions, domain_bits)
        self.num_partitions = num_partitions
        self.domain_bits = domain_bits
        domain = 1 << domain_bits
        # boundaries[s] is shard s's first key; equal-width contiguous
        # sub-domains (the last shard absorbs the rounding remainder).
        self.boundaries = np.array(
            [(s * domain) // num_partitions for s in range(num_partitions)],
            dtype=np.uint64,
        )
        self._domain_max = np.uint64(((1 << domain_bits) - 1) & ((1 << 64) - 1))

    def owner_of_many(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        if self.num_partitions == 1:
            return np.zeros(keys.size, dtype=np.int64)
        side = np.searchsorted(self.boundaries, keys, side="right") - 1
        return side.astype(np.int64)

    def owner_of(self, key: int) -> int:
        return int(self.owner_of_many(np.array([key], dtype=np.uint64))[0])

    def partition_range(self, shard: int) -> tuple[int, int]:
        """Inclusive ``[lo, hi]`` key range owned by ``shard``."""
        lo = int(self.boundaries[shard])
        hi = (
            int(self.boundaries[shard + 1]) - 1
            if shard + 1 < self.num_partitions
            else int(self._domain_max)
        )
        return lo, hi

    def split_bounds(
        self, bounds: np.ndarray
    ) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Per-shard ``(shard, query_indices, clipped_bounds)`` jobs.

        Each query is clipped to the shards its ``[lo, hi]`` overlaps, so
        narrow queries touch one shard and only domain-wide scans fan out.
        """
        lo_shard = self.owner_of_many(bounds[:, 0])
        hi_shard = self.owner_of_many(bounds[:, 1])
        jobs: list[tuple[int, np.ndarray, np.ndarray]] = []
        for s in range(self.num_partitions):
            overlap = np.nonzero((lo_shard <= s) & (hi_shard >= s))[0]
            if overlap.size == 0:
                continue
            shard_lo, shard_hi = self.partition_range(s)
            clipped = np.stack(
                [
                    np.maximum(bounds[overlap, 0], np.uint64(shard_lo)),
                    np.minimum(bounds[overlap, 1], np.uint64(shard_hi)),
                ],
                axis=1,
            )
            jobs.append((s, overlap, clipped))
        return jobs


Partitioner = HashPartitioner | RangePartitioner


def make_partitioner(
    scheme: str, num_partitions: int, domain_bits: int = 64
) -> Partitioner:
    """Factory keyed by scheme name (``"hash"`` or ``"range"``)."""
    if scheme == "hash":
        return HashPartitioner(num_partitions, domain_bits)
    if scheme == "range":
        return RangePartitioner(num_partitions, domain_bits)
    raise ValueError(
        f"partition must be one of {PARTITION_SCHEMES}, got {scheme!r}"
    )


def _check_partition_count(num_partitions: int, domain_bits: int) -> None:
    if num_partitions <= 0:
        raise ValueError(f"num_shards must be positive, got {num_partitions}")
    if num_partitions > (1 << domain_bits):
        # More shards than keys in the domain would leave some shards with
        # an empty (inverted) sub-range.
        raise ValueError(
            f"num_shards {num_partitions} exceeds the "
            f"{domain_bits}-bit domain size"
        )


def group_by_owner(
    owner: np.ndarray,
) -> list[tuple[int, np.ndarray]]:
    """``(shard, positions)`` for every shard present in ``owner``.

    ``positions`` are the batch indices routed to that shard, in input
    order — the caller slices its batch with them and scatters the
    per-shard answers back through the same index arrays.
    """
    return [
        (int(s), np.nonzero(owner == s)[0])
        for s in np.unique(owner).tolist()
    ]


def run_point_batch(
    pool: "ShardPool",
    shards: Sequence,
    partitioner: Partitioner,
    keys: np.ndarray,
    method: Callable[[object, np.ndarray], np.ndarray],
    out: np.ndarray,
) -> np.ndarray:
    """The shared point-batch scatter/gather: route, dispatch, write back.

    Each key's sub-batch goes to its owning shard via ``method(shard,
    keys_of_shard)`` and the per-shard answers land at their original batch
    positions in ``out``.  Both sharded structures' point paths
    (``contains_point_many``, ``get_many``, ``may_contain_many``) are this
    one loop.
    """
    owner = partitioner.owner_of_many(keys)
    jobs = group_by_owner(owner)
    answers = pool.run(jobs, lambda s, idx: method(shards[s], keys[idx]))
    for (_, idx), ans in zip(jobs, answers, strict=True):
        out[idx] = ans
    return out


def run_bounds_batch(
    pool: "ShardPool",
    shards: Sequence,
    partitioner: Partitioner,
    bounds: np.ndarray,
    method: Callable[[object, np.ndarray], np.ndarray],
    out: np.ndarray,
) -> np.ndarray:
    """The shared range-batch scatter/gather: split, dispatch, OR back.

    The partitioner emits per-shard ``(query indices, clipped bounds)``
    jobs — the full batch on every shard for hash dispatch, overlap-only
    clipped queries for range dispatch — and per-query answers are the OR
    over the shards that probed them.  The OR preserves
    no-false-negatives: the key witnessing a hit lives in exactly one
    shard, and that shard cannot miss it.
    """
    jobs = [
        (s, (idx, clipped))
        for s, idx, clipped in partitioner.split_bounds(bounds)
    ]
    answers = pool.run(jobs, lambda s, job: method(shards[s], job[1]))
    for (_, (idx, _)), ans in zip(jobs, answers, strict=True):
        out[idx] |= ans
    return out


class ShardPool:
    """Explicitly managed worker pool for per-shard job dispatch.

    The executor is created lazily on first multi-job dispatch and torn
    down by :meth:`close` (idempotent; probing after close lazily recreates
    the pool).  Use as a context manager so benchmark loops that build many
    sharded structures never leak worker threads.
    """

    def __init__(self, max_workers: int, name: str = "shard") -> None:
        if max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self._name = name
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix=self._name,
            )
        return self._executor

    @property
    def is_open(self) -> bool:
        return self._executor is not None

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[tuple[int, object]],
        fn: Callable[[int, object], object],
    ) -> list:
        """Execute ``fn(shard_index, payload)`` for each job; results in order.

        A single job runs inline (no pool round-trip for the common
        narrow-query case); otherwise one task per job is submitted and the
        results are collected in job order.
        """
        if len(jobs) == 1:
            s, payload = jobs[0]
            return [fn(s, payload)]
        pool = self._pool()
        futures = [pool.submit(fn, s, payload) for s, payload in jobs]
        return [f.result() for f in futures]

    def submit(self, fn: Callable, *args):
        """Submit one asynchronous task; returns its ``Future``.

        The background-work entry point (the compaction scheduler runs
        its per-engine drain loops through this): unlike :meth:`run` it
        never executes inline — callers rely on getting control back
        immediately — and the lazily created executor is shared with the
        batch dispatch path.
        """
        return self._pool().submit(fn, *args)
