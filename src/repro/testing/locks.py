"""Lock-order watcher: the dynamic complement of ``repro lint``.

The static rules (:mod:`repro.analysis`) prove lexically that run-list
mutations sit under ``with self._maintenance_lock`` — but they cannot see
*ordering* across locks at runtime.  With three lock sites in the store
(the engine's maintenance :class:`~threading.RLock`, the compaction
scheduler's bookkeeping lock, the block cache's LRU lock) plus whatever
the thread pool creates, a deadlock needs two threads taking two of them
in opposite orders.  This module instruments lock *construction* the way
:class:`repro.testing.FaultInjector` instruments syscalls:

* :class:`LockOrderWatcher` patches ``threading.Lock`` / ``threading.RLock``
  while active, so every lock created in the window is wrapped in a proxy
  that records, per thread, which locks were already held at each acquire.
* Edges ``A -> B`` ("B acquired while A held") are keyed by the locks'
  creation sites, building the acquisition-order graph across the whole
  run.  A cycle in that graph is a potential deadlock even if the stress
  run happened not to interleave fatally — :meth:`LockOrderWatcher.check`
  (called automatically on clean exit) raises :class:`LockOrderError`.
* :meth:`LockOrderWatcher.watch_engine` additionally guards the run-list
  contract the linter enforces lexically: it swaps the engine's class for
  a subclass whose ``sstables`` *setter* records a violation whenever the
  run list is swapped without the maintenance lock held.  Reads stay
  lock-free on purpose — copy-on-write snapshots are the design.

Same-site nesting (two *instances* from one creation site, e.g. two
shards' maintenance locks) is not edge-recorded: site-keyed cycle
detection cannot orient it, and the store's fan-out never nests shards.
"""

from __future__ import annotations

import sys
import threading

__all__ = ["LockOrderError", "LockOrderWatcher"]

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class LockOrderError(AssertionError):
    """A lock-order cycle or an unlocked run-list mutation was observed."""


def _creation_site() -> str:
    """``file:line`` of the first frame outside this module and threading."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.endswith(("locks.py", "threading.py")):
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"  # pragma: no cover - only if every frame is internal


class _InstrumentedLock:
    """Proxy around a real Lock/RLock that reports acquires to the watcher."""

    def __init__(self, watcher: "LockOrderWatcher", inner, site: str) -> None:
        self._watcher = watcher
        self._inner = inner
        self.site = site

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._watcher._acquired(self)
        return got

    def release(self) -> None:
        self._watcher._released(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def _is_owned(self) -> bool:
        # RLock exposes this; Condition and the watch_engine() setter use
        # it.  A plain Lock proxy falls back to "held by anyone".
        inner_owned = getattr(self._inner, "_is_owned", None)
        if inner_owned is not None:
            return bool(inner_owned())
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_InstrumentedLock {self.site} wrapping {self._inner!r}>"


class LockOrderWatcher:
    """Record lock-acquisition order and fail on cycles.

    Use as a context manager around code that *creates* the locks to be
    watched (open the store inside the window).  On clean exit,
    :meth:`check` runs automatically; with an exception in flight it does
    not, so a crashing test reports its own failure, not a side effect.

    ``watch_engine(db)`` opts a store's engines into run-list mutation
    tracking; violations and cycles both surface as
    :class:`LockOrderError` from :meth:`check`.
    """

    def __init__(self) -> None:
        self.edges: dict[tuple[str, str], str] = {}
        self.violations: list[str] = []
        self._held = threading.local()
        self._watched: list[tuple[object, type]] = []
        self._active = False
        self._state_lock = _REAL_LOCK()

    # ------------------------------------------------------------------
    # lock bookkeeping
    # ------------------------------------------------------------------
    def _stack(self) -> list[_InstrumentedLock]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _acquired(self, lock: _InstrumentedLock) -> None:
        stack = self._stack()
        if self._active and stack:
            # threading.get_ident(), not current_thread(): the latter can
            # construct a _DummyThread in a not-yet-registered bootstrap
            # thread, whose Event.set() re-enters this proxy — unbounded
            # recursion.  get_ident() is a side-effect-free C call.
            ident = threading.get_ident()
            for held in stack:
                if held.site != lock.site and held is not lock:
                    with self._state_lock:
                        self.edges.setdefault(
                            (held.site, lock.site),
                            f"thread {ident}",
                        )
        stack.append(lock)

    def _released(self, lock: _InstrumentedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                break

    def _make_lock(self):
        return _InstrumentedLock(self, _REAL_LOCK(), _creation_site())

    def _make_rlock(self):
        return _InstrumentedLock(self, _REAL_RLOCK(), _creation_site())

    # ------------------------------------------------------------------
    # run-list mutation tracking
    # ------------------------------------------------------------------
    def watch_engine(self, db) -> None:
        """Track unlocked ``sstables`` swaps on ``db`` (and its shards)."""
        shards = getattr(db, "shards", None)
        if shards is not None:
            for shard in shards:
                self._watch_one(shard)
            return
        self._watch_one(db)

    def _watch_one(self, engine) -> None:
        if not hasattr(engine, "sstables"):
            raise TypeError(
                f"{type(engine).__name__} has no run list to watch"
            )
        watcher = self
        original = type(engine)

        def _get(self):
            return self.__dict__["sstables"]

        def _set(self, value):
            lock = self.__dict__.get("_maintenance_lock")
            owned = getattr(lock, "_is_owned", None)
            if lock is not None and owned is not None and not owned():
                site = _creation_site()
                watcher.violations.append(
                    f"{original.__name__}.sstables swapped without the "
                    f"maintenance lock at {site}"
                )
            self.__dict__["sstables"] = value

        watched = type(
            f"Watched{original.__name__}",
            (original,),
            {"sstables": property(_get, _set)},
        )
        engine.__class__ = watched
        self._watched.append((engine, original))

    # ------------------------------------------------------------------
    # cycle detection
    # ------------------------------------------------------------------
    def cycle(self) -> list[str] | None:
        """One lock-order cycle as a site list, or None if the graph is a DAG."""
        graph: dict[str, list[str]] = {}
        for src, dst in self.edges:
            graph.setdefault(src, []).append(dst)

        WHITE, GREY, BLACK = 0, 1, 2
        color = dict.fromkeys(graph, WHITE)
        path: list[str] = []

        def visit(node: str) -> list[str] | None:
            color[node] = GREY
            path.append(node)
            for succ in graph.get(node, ()):
                state = color.get(succ, BLACK if succ not in graph else WHITE)
                if state == GREY:
                    return path[path.index(succ) :] + [succ]
                if state == WHITE:
                    found = visit(succ)
                    if found:
                        return found
            color[node] = BLACK
            path.pop()
            return None

        for node in list(graph):
            if color[node] == WHITE:
                found = visit(node)
                if found:
                    return found
        return None

    def check(self) -> None:
        """Raise :class:`LockOrderError` on any cycle or recorded violation."""
        problems = list(self.violations)
        cycle = self.cycle()
        if cycle is not None:
            chain = " -> ".join(cycle)
            witnesses = {
                f"{src} -> {dst} ({why})"
                for (src, dst), why in self.edges.items()
                if src in cycle and dst in cycle
            }
            problems.append(
                "lock acquisition order has a cycle (potential deadlock): "
                f"{chain}; observed edges: {'; '.join(sorted(witnesses))}"
            )
        if problems:
            raise LockOrderError("\n".join(problems))

    # ------------------------------------------------------------------
    def __enter__(self) -> "LockOrderWatcher":
        threading.Lock = self._make_lock
        threading.RLock = self._make_rlock
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._active = False
        threading.Lock = _REAL_LOCK
        threading.RLock = _REAL_RLOCK
        for engine, original in reversed(self._watched):
            engine.__class__ = original
        self._watched.clear()
        if exc_type is None:
            self.check()
