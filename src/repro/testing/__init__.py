"""Test-support machinery shipped with the package (fault injection)."""

from repro.testing.faults import FaultInjector, InjectedCrash

__all__ = ["FaultInjector", "InjectedCrash"]
