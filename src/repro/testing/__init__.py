"""Test-support machinery shipped with the package.

Fault injection (:mod:`repro.testing.faults`) crash-kills the store at
syscall boundaries; the lock-order watcher (:mod:`repro.testing.locks`)
instruments lock acquisition during the stress suites and fails on
ordering cycles or unlocked run-list swaps.
"""

from repro.testing.faults import FaultInjector, InjectedCrash
from repro.testing.locks import LockOrderError, LockOrderWatcher

__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "LockOrderError",
    "LockOrderWatcher",
]
