"""Failpoint layer: crash the process at randomized syscall boundaries.

The durability contract of :mod:`repro.lsm.store` + :mod:`repro.lsm.wal`
is "an acknowledged write survives ``kill -9``".  Proving that needs
crashes *between* individual syscalls — after the WAL record reached the
kernel but before the memtable mutated, mid-manifest-replace, between the
run file and its fsync.  This module patches ``os.write`` / ``os.fsync`` /
``os.replace`` with counting wrappers scoped to one store directory, so a
test can first dry-run a workload to count its syscall boundaries, then
replay it with ``crash_at=k`` for hundreds of sampled ``k``.

Crash fidelity: a process killed by ``kill -9`` keeps every byte that
already reached the kernel (``os.write`` returned) and loses everything
still in user-space buffers.  Raising :class:`InjectedCrash` *before* the
armed syscall executes models exactly that state, so the in-process mode
is faithful to a real kill for on-disk contents — while running orders of
magnitude faster than subprocess spawning.  ``mode="exit"`` additionally
offers a real ``os._exit`` for subprocess-based tests.  The injector can
also *tear* the armed write — emit a random prefix of the buffer before
crashing — which is what a crash mid-``write`` leaves behind and what the
WAL's torn-tail recovery is for.

:class:`InjectedCrash` subclasses :class:`BaseException` so ordinary
``except Exception`` recovery code inside the store cannot swallow the
simulated kill.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

__all__ = ["FaultInjector", "InjectedCrash"]


class InjectedCrash(BaseException):
    """The simulated ``kill -9``: raised at an armed syscall boundary."""


_REAL_WRITE = os.write
_REAL_FSYNC = os.fsync
_REAL_REPLACE = os.replace


def _fd_path(fd: int) -> str | None:
    try:
        return os.readlink(f"/proc/self/fd/{fd}")
    except OSError:  # pragma: no cover - non-procfs platforms
        return None


class FaultInjector:
    """Count — and optionally crash at — store-directory syscalls.

    ``crash_at=None`` is a dry run: the workload executes normally and
    :attr:`count` reports how many matching syscall boundaries it crossed.
    With ``crash_at=k`` the k-th matching call (1-based) never executes:
    the injector raises :class:`InjectedCrash` (``mode="raise"``) or kills
    the process with ``os._exit(137)`` (``mode="exit"``) first.  When a
    ``rng`` is supplied and the armed call is a write, a random prefix of
    the buffer is written before crashing — a torn write.

    Only calls whose target resolves under ``root`` count; everything else
    (pytest internals, temp files elsewhere) passes through untouched.
    Use as a context manager; patching is restored on exit.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        crash_at: int | None = None,
        mode: str = "raise",
        rng: random.Random | None = None,
    ) -> None:
        if mode not in ("raise", "exit"):
            raise ValueError(f"mode must be 'raise' or 'exit', got {mode!r}")
        self.root = os.path.realpath(str(root))
        self.crash_at = crash_at
        self.mode = mode
        self.rng = rng
        self.count = 0
        self._active = False

    # ------------------------------------------------------------------
    def _under_root(self, path: str | None) -> bool:
        if path is None:
            return False
        real = os.path.realpath(path)
        return real == self.root or real.startswith(self.root + os.sep)

    def _hit(self, tear: bytes | None = None, fd: int | None = None) -> None:
        self.count += 1
        if self.crash_at is None or self.count != self.crash_at:
            return
        if tear is not None and self.rng is not None and len(tear) > 1:
            prefix = self.rng.randrange(1, len(tear))
            _REAL_WRITE(fd, tear[:prefix])
        if self.mode == "exit":  # pragma: no cover - exercised in subprocess
            os._exit(137)
        raise InjectedCrash(
            f"injected crash at syscall boundary {self.count} under "
            f"{self.root}"
        )

    # ------------------------------------------------------------------
    def _write(self, fd, data, *args, **kw):
        if self._active and isinstance(fd, int) and self._under_root(_fd_path(fd)):
            self._hit(tear=bytes(data), fd=fd)
        return _REAL_WRITE(fd, data, *args, **kw)

    def _fsync(self, fd):
        if self._active and isinstance(fd, int) and self._under_root(_fd_path(fd)):
            self._hit()
        return _REAL_FSYNC(fd)

    def _replace(self, src, dst, *args, **kw):
        if self._active and self._under_root(str(dst)):
            self._hit()
        return _REAL_REPLACE(src, dst, *args, **kw)

    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        os.write = self._write
        os.fsync = self._fsync
        os.replace = self._replace
        self._active = True
        return self

    def __exit__(self, *exc) -> None:
        self._active = False
        os.write = _REAL_WRITE
        os.fsync = _REAL_FSYNC
        os.replace = _REAL_REPLACE
