"""Dyadic intervals, canonical decomposition, and the two-path range planner.

A *dyadic interval* (DI) on level ``l`` spans ``2**l`` keys and is aligned to
a multiple of ``2**l`` (Sect. 2 of the paper).  DIs on level ``l`` correspond
one-to-one to key prefixes of ``d - l`` bits.  This module provides:

* plain DI arithmetic (:func:`di_bounds`, :func:`prefix_of`),
* the canonical greedy decomposition of an arbitrary interval into maximal
  DIs (used by the Rosetta baseline and by tests), and
* :func:`two_path_range_lookup` — the paper's Algorithm 1: a single top-down
  pass over the filter's layers that probes *covering* DIs (one bit each,
  with early exit) and *decomposition* prefix ranges (word-mask probes),
  following one path down from the left query bound and one from the right.

The planner is deliberately **pure**: it knows nothing about bit arrays.  The
caller supplies two oracles::

    probe_bit(layer, prefix)        -> bool   # is the covering DI non-empty?
    probe_mask(layer, plo, phi)     -> bool   # any key with prefix in [plo, phi]?

which lets the same code drive the real bloomRF filter, an exact reference
filter in the tests, and a recording oracle that checks the probe pattern
itself (coverings contain the query bounds; mask ranges partition the query).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro._util import floor_log2

__all__ = [
    "di_bounds",
    "prefix_of",
    "level_of_range",
    "dyadic_decompose",
    "covering_prefix_range",
    "two_path_range_lookup",
]

ProbeBit = Callable[[int, int], bool]
ProbeMask = Callable[[int, int, int], bool]


def prefix_of(key: int, level: int) -> int:
    """The prefix of ``key`` on ``level`` (its ``d - level`` high bits)."""
    return key >> level


def di_bounds(prefix: int, level: int) -> tuple[int, int]:
    """Inclusive ``(lo, hi)`` key bounds of the DI ``prefix`` on ``level``."""
    lo = prefix << level
    return lo, lo + (1 << level) - 1


def level_of_range(lo: int, hi: int) -> int:
    """Smallest level whose DIs can contain ``[lo, hi]`` by size alone."""
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    if lo == hi:
        return 0
    return (hi - lo).bit_length()


def dyadic_decompose(
    lo: int, hi: int, max_level: int | None = None
) -> list[tuple[int, int]]:
    """Greedy minimal decomposition of ``[lo, hi]`` into maximal DIs.

    Returns ``(level, prefix)`` pairs in ascending key order whose DIs are
    disjoint and union exactly to ``[lo, hi]``.  ``max_level`` caps the DI
    size (Rosetta caps at ``log2(R)`` — its largest indexed level).
    """
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    if lo < 0:
        raise ValueError(f"negative range start {lo}")
    out: list[tuple[int, int]] = []
    cursor = lo
    while cursor <= hi:
        size_cap = floor_log2(hi - cursor + 1)
        align_cap = (cursor & -cursor).bit_length() - 1 if cursor else size_cap
        level = min(size_cap, align_cap)
        if max_level is not None:
            level = min(level, max_level)
        out.append((level, cursor >> level))
        cursor += 1 << level
    return out


def covering_prefix_range(lo: int, hi: int, level: int) -> tuple[int, int]:
    """Inclusive range of level-``level`` prefixes whose DIs intersect [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    return lo >> level, hi >> level


def iter_prefixes(key: int, levels: Sequence[int]) -> Iterator[tuple[int, int]]:
    """Yield ``(level, prefix)`` for ``key`` on each level of ``levels``."""
    for level in levels:
        yield level, key >> level


def two_path_range_lookup(
    l_key: int,
    r_key: int,
    levels: Sequence[int],
    probe_bit: ProbeBit,
    probe_mask: ProbeMask,
) -> bool:
    """Algorithm 1: approximate emptiness test of ``[l_key, r_key]``.

    ``levels`` maps layer index -> dyadic level, ascending, with
    ``levels[0] == 0`` (the key level) — bloomRF always keeps the bottom
    level, dropping only saturated *top* levels.  The top entry may be an
    exact-bitmap pseudo-layer; the planner does not care.

    Descends layer by layer.  While one DI covers the whole query ("phase 1",
    Fig. 7) only that covering bit is probed — if it is unset the query range
    is provably empty and the walk stops early.  Once the query spans two DIs
    the walk splits into a left path (following ``l_key``) and a right path
    (following ``r_key``); at each layer every path probes at most one
    decomposition prefix range (``probe_mask``) plus one covering bit.
    Returns True as soon as any decomposition probe fires (filter says "may
    contain a key"), False when every path is exhausted.
    """
    if l_key > r_key:
        raise ValueError(f"empty query range [{l_key}, {r_key}]")
    if not levels or levels[0] != 0:
        raise ValueError("levels must be ascending and start at level 0")

    top = len(levels) - 1
    both = True
    left = right = False

    for layer in range(top, -1, -1):
        level = levels[layer]
        if both:
            p_lo = l_key >> level
            p_hi = r_key >> level
            if p_lo == p_hi:
                di_lo, di_hi = di_bounds(p_lo, level)
                if l_key == di_lo and r_key == di_hi:
                    # The query *is* this DI: one decomposition probe decides.
                    return probe_mask(layer, p_lo, p_hi)
                if not probe_bit(layer, p_lo):
                    return False  # covering empty -> early stop
                continue
            # Phase 2 starts: the covering path splits (Fig. 7, level 4).
            both = False
            mask_lo, mask_hi = p_lo + 1, p_hi - 1
            if l_key == (p_lo << level):
                mask_lo = p_lo  # left bound aligned: whole left DI inside query
            else:
                left = probe_bit(layer, p_lo)
            if r_key == (((p_hi + 1) << level) - 1):
                mask_hi = p_hi  # right bound aligned: whole right DI inside query
            else:
                right = probe_bit(layer, p_hi)
            if mask_lo <= mask_hi and probe_mask(layer, mask_lo, mask_hi):
                return True
            if not (left or right):
                return False
            continue

        parent_level = levels[layer + 1]
        if left:
            # Expand the left covering J (level parent_level, contains l_key).
            j_hi = (((l_key >> parent_level) + 1) << parent_level) - 1
            p_lo = l_key >> level
            p_j = j_hi >> level
            if l_key == (p_lo << level):
                # Aligned: [l_key, j_hi] lies fully inside the query.
                if probe_mask(layer, p_lo, p_j):
                    return True
                left = False
            else:
                if p_lo < p_j and probe_mask(layer, p_lo + 1, p_j):
                    return True
                left = probe_bit(layer, p_lo)
        if right:
            j_lo = (r_key >> parent_level) << parent_level
            p_hi = r_key >> level
            p_j = j_lo >> level
            if r_key == (((p_hi + 1) << level) - 1):
                if probe_mask(layer, p_j, p_hi):
                    return True
                right = False
            else:
                if p_j < p_hi and probe_mask(layer, p_j, p_hi - 1):
                    return True
                right = probe_bit(layer, p_hi)
        if not (left or right):
            return False

    # levels[0] == 0 guarantees both paths resolve at the bottom layer.
    return False


class RecordingOracle:
    """Test/diagnostic oracle that records every probe the planner makes.

    Configured with the answers to give (default: coverings non-empty, masks
    empty) so tests can force the planner to walk its complete probe tree and
    then assert structural properties of the recorded probes.
    """

    def __init__(self, bit_answer: bool = True, mask_answer: bool = False) -> None:
        self.bit_probes: list[tuple[int, int]] = []
        self.mask_probes: list[tuple[int, int, int]] = []
        self._bit_answer = bit_answer
        self._mask_answer = mask_answer

    def probe_bit(self, layer: int, prefix: int) -> bool:
        self.bit_probes.append((layer, prefix))
        return self._bit_answer

    def probe_mask(self, layer: int, p_lo: int, p_hi: int) -> bool:
        self.mask_probes.append((layer, p_lo, p_hi))
        return self._mask_answer

    def mask_key_ranges(self, levels: Sequence[int]) -> list[tuple[int, int]]:
        """Key ranges covered by the recorded mask probes, sorted."""
        ranges = []
        for layer, p_lo, p_hi in self.mask_probes:
            level = levels[layer]
            ranges.append((p_lo << level, ((p_hi + 1) << level) - 1))
        return sorted(ranges)
