"""Dyadic intervals, canonical decomposition, and the two-path range planner.

A *dyadic interval* (DI) on level ``l`` spans ``2**l`` keys and is aligned to
a multiple of ``2**l`` (Sect. 2 of the paper).  DIs on level ``l`` correspond
one-to-one to key prefixes of ``d - l`` bits.  This module provides:

* plain DI arithmetic (:func:`di_bounds`, :func:`prefix_of`),
* the canonical greedy decomposition of an arbitrary interval into maximal
  DIs (used by the Rosetta baseline and by tests),
* :func:`two_path_range_lookup` — the paper's Algorithm 1: a single top-down
  pass over the filter's layers that probes *covering* DIs (one bit each,
  with early exit) and *decomposition* prefix ranges (word-mask probes),
  following one path down from the left query bound and one from the right,
  and
* :func:`compile_range_plan` — the same walk run once as a *plan compiler*:
  instead of invoking callbacks it emits a flat :class:`RangePlan` probe
  program whose decision structure (guards, left/right gate chains, gated
  decomposition masks) can be executed later against oracles
  (:meth:`RangePlan.evaluate`).  It is the reference form of the probe
  program: :meth:`repro.core.bloomrf.BloomRF.contains_range_many` emits the
  same program batch-wide with a vectorized per-layer sweep, and the tests
  pin all three walk implementations (callback, plan, batched sweep)
  together via randomized-oracle equivalence and bit-identity properties.

The planner is deliberately **pure**: it knows nothing about bit arrays.  The
caller supplies two oracles::

    probe_bit(layer, prefix)        -> bool   # is the covering DI non-empty?
    probe_mask(layer, plo, phi)     -> bool   # any key with prefix in [plo, phi]?

which lets the same code drive the real bloomRF filter, an exact reference
filter in the tests, and a recording oracle that checks the probe pattern
itself (coverings contain the query bounds; mask ranges partition the query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro._util import floor_log2

__all__ = [
    "di_bounds",
    "prefix_of",
    "level_of_range",
    "dyadic_decompose",
    "covering_prefix_range",
    "two_path_range_lookup",
    "RangePlan",
    "compile_range_plan",
    "PATH_BOTH",
    "PATH_LEFT",
    "PATH_RIGHT",
]

ProbeBit = Callable[[int, int], bool]
ProbeMask = Callable[[int, int, int], bool]


def prefix_of(key: int, level: int) -> int:
    """The prefix of ``key`` on ``level`` (its ``d - level`` high bits)."""
    return key >> level


def di_bounds(prefix: int, level: int) -> tuple[int, int]:
    """Inclusive ``(lo, hi)`` key bounds of the DI ``prefix`` on ``level``."""
    lo = prefix << level
    return lo, lo + (1 << level) - 1


def level_of_range(lo: int, hi: int) -> int:
    """Smallest level whose DIs can contain ``[lo, hi]`` by size alone."""
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    if lo == hi:
        return 0
    return (hi - lo).bit_length()


def dyadic_decompose(
    lo: int, hi: int, max_level: int | None = None
) -> list[tuple[int, int]]:
    """Greedy minimal decomposition of ``[lo, hi]`` into maximal DIs.

    Returns ``(level, prefix)`` pairs in ascending key order whose DIs are
    disjoint and union exactly to ``[lo, hi]``.  ``max_level`` caps the DI
    size (Rosetta caps at ``log2(R)`` — its largest indexed level).
    """
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    if lo < 0:
        raise ValueError(f"negative range start {lo}")
    out: list[tuple[int, int]] = []
    cursor = lo
    while cursor <= hi:
        size_cap = floor_log2(hi - cursor + 1)
        align_cap = (cursor & -cursor).bit_length() - 1 if cursor else size_cap
        level = min(size_cap, align_cap)
        if max_level is not None:
            level = min(level, max_level)
        out.append((level, cursor >> level))
        cursor += 1 << level
    return out


def covering_prefix_range(lo: int, hi: int, level: int) -> tuple[int, int]:
    """Inclusive range of level-``level`` prefixes whose DIs intersect [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    return lo >> level, hi >> level


def iter_prefixes(key: int, levels: Sequence[int]) -> Iterator[tuple[int, int]]:
    """Yield ``(level, prefix)`` for ``key`` on each level of ``levels``."""
    for level in levels:
        yield level, key >> level


def two_path_range_lookup(
    l_key: int,
    r_key: int,
    levels: Sequence[int],
    probe_bit: ProbeBit,
    probe_mask: ProbeMask,
) -> bool:
    """Algorithm 1: approximate emptiness test of ``[l_key, r_key]``.

    ``levels`` maps layer index -> dyadic level, ascending, with
    ``levels[0] == 0`` (the key level) — bloomRF always keeps the bottom
    level, dropping only saturated *top* levels.  The top entry may be an
    exact-bitmap pseudo-layer; the planner does not care.

    Descends layer by layer.  While one DI covers the whole query ("phase 1",
    Fig. 7) only that covering bit is probed — if it is unset the query range
    is provably empty and the walk stops early.  Once the query spans two DIs
    the walk splits into a left path (following ``l_key``) and a right path
    (following ``r_key``); at each layer every path probes at most one
    decomposition prefix range (``probe_mask``) plus one covering bit.
    Returns True as soon as any decomposition probe fires (filter says "may
    contain a key"), False when every path is exhausted.
    """
    if l_key > r_key:
        raise ValueError(f"empty query range [{l_key}, {r_key}]")
    if not levels or levels[0] != 0:
        raise ValueError("levels must be ascending and start at level 0")

    top = len(levels) - 1
    both = True
    left = right = False

    for layer in range(top, -1, -1):
        level = levels[layer]
        if both:
            p_lo = l_key >> level
            p_hi = r_key >> level
            if p_lo == p_hi:
                di_lo, di_hi = di_bounds(p_lo, level)
                if l_key == di_lo and r_key == di_hi:
                    # The query *is* this DI: one decomposition probe decides.
                    return probe_mask(layer, p_lo, p_hi)
                if not probe_bit(layer, p_lo):
                    return False  # covering empty -> early stop
                continue
            # Phase 2 starts: the covering path splits (Fig. 7, level 4).
            both = False
            mask_lo, mask_hi = p_lo + 1, p_hi - 1
            if l_key == (p_lo << level):
                mask_lo = p_lo  # left bound aligned: whole left DI inside query
            else:
                left = probe_bit(layer, p_lo)
            if r_key == (((p_hi + 1) << level) - 1):
                mask_hi = p_hi  # right bound aligned: whole right DI inside query
            else:
                right = probe_bit(layer, p_hi)
            if mask_lo <= mask_hi and probe_mask(layer, mask_lo, mask_hi):
                return True
            if not (left or right):
                return False
            continue

        parent_level = levels[layer + 1]
        if left:
            # Expand the left covering J (level parent_level, contains l_key).
            j_hi = (((l_key >> parent_level) + 1) << parent_level) - 1
            p_lo = l_key >> level
            p_j = j_hi >> level
            if l_key == (p_lo << level):
                # Aligned: [l_key, j_hi] lies fully inside the query.
                if probe_mask(layer, p_lo, p_j):
                    return True
                left = False
            else:
                if p_lo < p_j and probe_mask(layer, p_lo + 1, p_j):
                    return True
                left = probe_bit(layer, p_lo)
        if right:
            j_lo = (r_key >> parent_level) << parent_level
            p_hi = r_key >> level
            p_j = j_lo >> level
            if r_key == (((p_hi + 1) << level) - 1):
                if probe_mask(layer, p_j, p_hi):
                    return True
                right = False
            else:
                if p_j < p_hi and probe_mask(layer, p_j, p_hi - 1):
                    return True
                right = probe_bit(layer, p_hi)
        if not (left or right):
            return False

    # levels[0] == 0 guarantees both paths resolve at the bottom layer.
    return False


# ----------------------------------------------------------------------
# compiled probe plans (Algorithm 1 with the decision structure reified)
# ----------------------------------------------------------------------
PATH_BOTH = 0
PATH_LEFT = 1
PATH_RIGHT = 2


@dataclass
class RangePlan:
    """Flat probe program emitted by :func:`compile_range_plan`.

    The two-path walk's control flow collapses into four probe lists whose
    combination is a short monotone formula over the probe answers:

    * ``guard_bits`` — the phase-1 covering probes; if any is unset the
      query range is provably empty (the walk's early exits).
    * ``left_bits`` / ``right_bits`` — the per-path covering probes, top
      down.  Entry ``j`` gates every mask probe *below* it on the same path
      (the walk's ``left = probe_bit(...)`` state).
    * ``masks`` — decomposition probes ``(layer, p_lo, p_hi, path, depth)``:
      the probe fires only if the first ``depth`` chain bits of ``path`` are
      all set; the query is non-empty iff all guards pass and any reachable
      mask probe hits.

    Because the formula is monotone in the probe answers, evaluating every
    probe eagerly (as a vectorized batch executor does) gives bit-identical
    results to the short-circuiting callback walk.
    """

    guard_bits: list[tuple[int, int]] = field(default_factory=list)
    left_bits: list[tuple[int, int]] = field(default_factory=list)
    right_bits: list[tuple[int, int]] = field(default_factory=list)
    masks: list[tuple[int, int, int, int, int]] = field(default_factory=list)

    def evaluate(self, probe_bit: ProbeBit, probe_mask: ProbeMask) -> bool:
        """Execute the plan against scalar oracles (reference semantics)."""
        if not all(probe_bit(layer, p) for layer, p in self.guard_bits):
            return False
        left = [probe_bit(layer, p) for layer, p in self.left_bits]
        right = [probe_bit(layer, p) for layer, p in self.right_bits]
        for layer, p_lo, p_hi, path, depth in self.masks:
            if path == PATH_LEFT and not all(left[:depth]):
                continue
            if path == PATH_RIGHT and not all(right[:depth]):
                continue
            if probe_mask(layer, p_lo, p_hi):
                return True
        return False

    def bit_probes(self) -> list[tuple[int, int]]:
        """Every covering probe of the plan (guards + both chains)."""
        return self.guard_bits + self.left_bits + self.right_bits


def compile_range_plan(
    l_key: int, r_key: int, levels: Sequence[int]
) -> RangePlan:
    """Compile Algorithm 1's walk for ``[l_key, r_key]`` into a probe plan.

    Runs the exact control flow of :func:`two_path_range_lookup` but records
    probes instead of invoking callbacks; on the full probe tree (no early
    exits) the recorded probe set is identical to the callback walk's.
    """
    if l_key > r_key:
        raise ValueError(f"empty query range [{l_key}, {r_key}]")
    if not levels or levels[0] != 0:
        raise ValueError("levels must be ascending and start at level 0")

    plan = RangePlan()
    guard_bits = plan.guard_bits
    left_bits = plan.left_bits
    right_bits = plan.right_bits
    masks = plan.masks

    top = len(levels) - 1
    both = True
    left_open = right_open = False

    for layer in range(top, -1, -1):
        level = levels[layer]
        if both:
            p_lo = l_key >> level
            p_hi = r_key >> level
            if p_lo == p_hi:
                di_lo = p_lo << level
                if l_key == di_lo and r_key == di_lo + (1 << level) - 1:
                    # The query *is* this DI: one decomposition probe decides.
                    masks.append((layer, p_lo, p_hi, PATH_BOTH, 0))
                    return plan
                guard_bits.append((layer, p_lo))
                continue
            # Phase 2 starts: the covering path splits (Fig. 7, level 4).
            both = False
            mask_lo, mask_hi = p_lo + 1, p_hi - 1
            if l_key == (p_lo << level):
                mask_lo = p_lo  # left bound aligned: whole left DI inside query
            else:
                left_open = True
                left_bits.append((layer, p_lo))
            if r_key == (((p_hi + 1) << level) - 1):
                mask_hi = p_hi  # right bound aligned: whole right DI inside query
            else:
                right_open = True
                right_bits.append((layer, p_hi))
            if mask_lo <= mask_hi:
                masks.append((layer, mask_lo, mask_hi, PATH_BOTH, 0))
            continue

        parent_level = levels[layer + 1]
        if left_open:
            j_hi = (((l_key >> parent_level) + 1) << parent_level) - 1
            p_lo = l_key >> level
            p_j = j_hi >> level
            depth = len(left_bits)
            if l_key == (p_lo << level):
                masks.append((layer, p_lo, p_j, PATH_LEFT, depth))
                left_open = False
            else:
                if p_lo < p_j:
                    masks.append((layer, p_lo + 1, p_j, PATH_LEFT, depth))
                left_bits.append((layer, p_lo))
        if right_open:
            j_lo = (r_key >> parent_level) << parent_level
            p_hi = r_key >> level
            p_j = j_lo >> level
            depth = len(right_bits)
            if r_key == (((p_hi + 1) << level) - 1):
                masks.append((layer, p_j, p_hi, PATH_RIGHT, depth))
                right_open = False
            else:
                if p_j < p_hi:
                    masks.append((layer, p_j, p_hi - 1, PATH_RIGHT, depth))
                right_bits.append((layer, p_hi))
        if not (left_open or right_open):
            break

    return plan


class RecordingOracle:
    """Test/diagnostic oracle that records every probe the planner makes.

    Configured with the answers to give (default: coverings non-empty, masks
    empty) so tests can force the planner to walk its complete probe tree and
    then assert structural properties of the recorded probes.
    """

    def __init__(self, bit_answer: bool = True, mask_answer: bool = False) -> None:
        self.bit_probes: list[tuple[int, int]] = []
        self.mask_probes: list[tuple[int, int, int]] = []
        self._bit_answer = bit_answer
        self._mask_answer = mask_answer

    def probe_bit(self, layer: int, prefix: int) -> bool:
        self.bit_probes.append((layer, prefix))
        return self._bit_answer

    def probe_mask(self, layer: int, p_lo: int, p_hi: int) -> bool:
        self.mask_probes.append((layer, p_lo, p_hi))
        return self._mask_answer

    def mask_key_ranges(self, levels: Sequence[int]) -> list[tuple[int, int]]:
        """Key ranges covered by the recorded mask probes, sorted."""
        ranges = []
        for layer, p_lo, p_hi in self.mask_probes:
            level = levels[layer]
            ranges.append((p_lo << level, ((p_hi + 1) << level) - 1))
        return sorted(ranges)
