"""Client libraries for the repro serving layer.

Two clients over the same frame protocol:

* :class:`StoreClient` — blocking sockets, one request in flight at a
  time.  The store-shaped methods (``get_many`` / ``put_many`` / ...)
  mirror :class:`repro.api.Store`, so code written against a local store
  ports by swapping the object.
* :class:`AsyncStoreClient` — asyncio, pipelined: many requests may be
  in flight on one connection, matched back to callers by frame id (the
  server answers out of order when coalesced batches complete together).

Server-side failures surface as :class:`ServerError` carrying the remote
exception class name in ``.kind``; framing failures surface as
:class:`repro.server.protocol.ProtocolError`.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
from typing import Any, Iterable, Sequence

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    _LEN_PREFIX,
    ProtocolError,
    decode_frame_body,
    decode_value,
    encode_frame,
    encode_value,
    read_frame,
)

__all__ = ["AsyncStoreClient", "ServerError", "StoreClient"]


class ServerError(RuntimeError):
    """The server answered ``ok: false``; ``.kind`` names the remote
    exception class (``"ProtocolError"``, ``"ValueError"``, ...)."""

    def __init__(self, message: str, kind: str = "Error") -> None:
        super().__init__(message)
        self.kind = kind


def _raise_if_error(response: dict[str, Any]) -> dict[str, Any]:
    if not response.get("ok"):
        raise ServerError(
            str(response.get("error", "unspecified server error")),
            str(response.get("kind", "Error")),
        )
    return response


def _int_keys(keys: Iterable[Any]) -> list[int]:
    return [int(k) for k in keys]


def _int_bounds(bounds: Iterable[Sequence[Any]]) -> list[list[int]]:
    return [[int(lo), int(hi)] for lo, hi in bounds]


class StoreClient:
    """Blocking client: one connection, one request in flight at a time."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float | None = None,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_id = 0

    # -- plumbing ------------------------------------------------------
    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "StoreClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _recv_exact(self, n: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < n:
            piece = self._sock.recv(n - len(chunks))
            if not piece:
                raise ConnectionError("server closed the connection")
            chunks += piece
        return bytes(chunks)

    def _request(self, op: str, **fields: Any) -> dict[str, Any]:
        rid = self._next_id
        self._next_id += 1
        message: dict[str, Any] = {"id": rid, "op": op, **fields}
        self._sock.sendall(encode_frame(message))
        (length,) = _LEN_PREFIX.unpack(self._recv_exact(_LEN_PREFIX.size))
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        response = decode_frame_body(self._recv_exact(length))
        if response.get("id") != rid:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {rid} (blocking clients never pipeline)"
            )
        return _raise_if_error(response)

    # -- store-shaped surface ------------------------------------------
    def ping(self) -> bool:
        return bool(self._request("ping")["pong"])

    def stats(self) -> dict[str, Any]:
        return dict(self._request("stats")["stats"])

    def get(self, key: int) -> bool:
        return bool(self._request("get", key=int(key))["found"])

    def get_many(self, keys: Iterable[Any]) -> list[bool]:
        found = self._request("get_many", keys=_int_keys(keys))["found"]
        return [bool(v) for v in found]

    def get_value(self, key: int) -> bytes | None:
        response = self._request("get_value", key=int(key))
        raw = response.get("value")
        return decode_value(raw) if raw is not None else None

    def put(self, key: int, value: bytes = b"") -> None:
        fields: dict[str, Any] = {"key": int(key)}
        if value:
            fields["value"] = encode_value(value)
        self._request("put", **fields)

    def put_many(
        self, keys: Iterable[Any], values: Sequence[bytes] | None = None
    ) -> int:
        fields: dict[str, Any] = {"keys": _int_keys(keys)}
        if values is not None:
            fields["values"] = [encode_value(v) for v in values]
        return int(self._request("put_many", **fields)["acked"])

    def delete(self, key: int) -> None:
        self._request("delete", key=int(key))

    def delete_many(self, keys: Iterable[Any]) -> int:
        return int(self._request("delete_many", keys=_int_keys(keys))["acked"])

    def may_contain(self, key: int) -> bool:
        return bool(self._request("may_contain", key=int(key))["maybe"])

    def may_contain_many(self, keys: Iterable[Any]) -> list[bool]:
        maybe = self._request("may_contain_many", keys=_int_keys(keys))["maybe"]
        return [bool(v) for v in maybe]

    def scan_nonempty(self, lo: int, hi: int) -> bool:
        response = self._request("scan_nonempty", lo=int(lo), hi=int(hi))
        return bool(response["nonempty"])

    def scan_nonempty_many(
        self, bounds: Iterable[Sequence[Any]]
    ) -> list[bool]:
        response = self._request(
            "scan_nonempty_many", bounds=_int_bounds(bounds)
        )
        return [bool(v) for v in response["nonempty"]]

    def scan_range(
        self, lo: int, hi: int, limit: int | None = None
    ) -> list[tuple[int, bytes]]:
        fields: dict[str, Any] = {"lo": int(lo), "hi": int(hi)}
        if limit is not None:
            fields["limit"] = int(limit)
        rows = self._request("scan_range", **fields)["entries"]
        return [(int(key), decode_value(value)) for key, value in rows]


class AsyncStoreClient:
    """Pipelined asyncio client: build with :meth:`connect`, not directly.

    A background reader task matches response frames to waiting callers
    by id, so any number of coroutines may issue requests concurrently on
    the one connection.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._waiters: dict[Any, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "AsyncStoreClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reader_task
        self._fail_waiters(ConnectionError("client closed"))
        self._writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await self._writer.wait_closed()

    async def __aenter__(self) -> "AsyncStoreClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.aclose()

    # -- plumbing ------------------------------------------------------
    def _fail_waiters(self, exc: BaseException) -> None:
        waiters, self._waiters = self._waiters, {}
        for waiter in waiters.values():
            if not waiter.done():
                waiter.set_exception(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    error: BaseException = ConnectionError(
                        "server closed the connection"
                    )
                    break
                waiter = self._waiters.pop(frame.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(frame)
        except (ProtocolError, ConnectionError, OSError) as exc:
            error = exc
        self._fail_waiters(error)

    async def _request(self, op: str, **fields: Any) -> dict[str, Any]:
        if self._closed:
            raise ConnectionError("client is closed")
        rid = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[rid] = future
        frame = encode_frame({"id": rid, "op": op, **fields})
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
            response = await future
        finally:
            self._waiters.pop(rid, None)
        return _raise_if_error(response)

    # -- store-shaped surface ------------------------------------------
    async def ping(self) -> bool:
        return bool((await self._request("ping"))["pong"])

    async def stats(self) -> dict[str, Any]:
        return dict((await self._request("stats"))["stats"])

    async def get(self, key: int) -> bool:
        return bool((await self._request("get", key=int(key)))["found"])

    async def get_many(self, keys: Iterable[Any]) -> list[bool]:
        response = await self._request("get_many", keys=_int_keys(keys))
        return [bool(v) for v in response["found"]]

    async def get_value(self, key: int) -> bytes | None:
        response = await self._request("get_value", key=int(key))
        raw = response.get("value")
        return decode_value(raw) if raw is not None else None

    async def put(self, key: int, value: bytes = b"") -> None:
        fields: dict[str, Any] = {"key": int(key)}
        if value:
            fields["value"] = encode_value(value)
        await self._request("put", **fields)

    async def put_many(
        self, keys: Iterable[Any], values: Sequence[bytes] | None = None
    ) -> int:
        fields: dict[str, Any] = {"keys": _int_keys(keys)}
        if values is not None:
            fields["values"] = [encode_value(v) for v in values]
        return int((await self._request("put_many", **fields))["acked"])

    async def delete(self, key: int) -> None:
        await self._request("delete", key=int(key))

    async def delete_many(self, keys: Iterable[Any]) -> int:
        response = await self._request("delete_many", keys=_int_keys(keys))
        return int(response["acked"])

    async def may_contain(self, key: int) -> bool:
        return bool((await self._request("may_contain", key=int(key)))["maybe"])

    async def may_contain_many(self, keys: Iterable[Any]) -> list[bool]:
        response = await self._request(
            "may_contain_many", keys=_int_keys(keys)
        )
        return [bool(v) for v in response["maybe"]]

    async def scan_nonempty(self, lo: int, hi: int) -> bool:
        response = await self._request("scan_nonempty", lo=int(lo), hi=int(hi))
        return bool(response["nonempty"])

    async def scan_nonempty_many(
        self, bounds: Iterable[Sequence[Any]]
    ) -> list[bool]:
        response = await self._request(
            "scan_nonempty_many", bounds=_int_bounds(bounds)
        )
        return [bool(v) for v in response["nonempty"]]

    async def scan_range(
        self, lo: int, hi: int, limit: int | None = None
    ) -> list[tuple[int, bytes]]:
        fields: dict[str, Any] = {"lo": int(lo), "hi": int(hi)}
        if limit is not None:
            fields["limit"] = int(limit)
        rows = (await self._request("scan_range", **fields))["entries"]
        return [(int(key), decode_value(value)) for key, value in rows]
