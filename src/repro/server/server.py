"""The asyncio service front-end: a coalescing TCP server over one store.

The batch API *is* the concurrency story.  The engines expose vectorized
sweeps (``get_many`` / ``put_many`` / ``scan_nonempty_many`` ...) whose
per-operation cost collapses as batches grow, so the server's job is to
*manufacture batches out of concurrency*: every request that arrives
while the previous batch executes is parked in the :class:`Coalescer`,
and the next event-loop tick drains them all into one ordered pass of
vectorized engine calls on a single worker thread.

Execution model
---------------
* The event loop only parses frames and builds responses; every engine
  call runs on the coalescer's single executor thread.  One thread, one
  batch at a time: the server is a *serializer* — concurrent clients
  observe some interleaving of whole operations, never a torn one.
* Within a tick, arrival order is preserved and *adjacent* operations of
  the same class merge into one engine call (``get`` + ``get_many``
  payloads concatenate into a single ``get_many`` sweep; puts and
  deletes merge the same way).  The executed engine-call sequence is a
  serialization of the client operations — replaying it single-threaded
  on a shadow store reproduces every answer and every ``IOStats``
  counter bit for bit (the exactness suite does exactly that via
  ``trace=True``).
* Writes are acknowledged at the WAL group-commit boundary: after a
  tick's engine calls, one ``store.commit_barrier()`` covers every write
  in the tick, and only then are the write futures resolved.  Under
  ``wal_sync="batch"`` an acked write is therefore power-loss durable —
  one fsync per write-carrying tick instead of one per request.
* Backpressure is per connection: at most ``max_inflight`` requests may
  be in flight; past that the server stops reading the connection's
  socket and TCP pushes back on the client.

Graceful shutdown (:meth:`StoreServer.aclose`) drains in order: stop
accepting, stop reading, finish and answer every in-flight request,
drain the coalescer, flush the store.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

import numpy as np

from repro.server.protocol import (
    ProtocolError,
    decode_value,
    encode_frame,
    encode_value,
    read_frame,
)

__all__ = ["Coalescer", "StoreServer", "run_server"]

#: Operation classes whose adjacent payloads merge into one engine call.
_VECTOR_KINDS = frozenset({"get", "may_contain", "scan_nonempty", "put", "delete"})
_WRITE_KINDS = frozenset({"put", "delete"})


class _Op:
    """One queued engine operation: kind, payload, and the waiting future."""

    __slots__ = ("future", "kind", "payload")

    def __init__(self, kind: str, payload: Any, future: asyncio.Future) -> None:
        self.kind = kind
        self.payload = payload
        self.future = future


class _OpError:
    """Result slot marker: this operation's group raised ``exc``."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


def _split_rows(answers: np.ndarray, sizes: list[int]) -> list[np.ndarray]:
    """Scatter a concatenated answer array back into per-op views."""
    parts = []
    start = 0
    for size in sizes:
        parts.append(answers[start : start + size])
        start += size
    return parts


class Coalescer:
    """Per-tick request batcher over one store's vectorized engine calls.

    ``submit()`` parks an operation and wakes the dispatcher; the
    dispatcher drains *everything* pending into one batch, executes it on
    the single worker thread (adjacent same-class operations merged into
    one vectorized call, arrival order preserved), runs one
    ``commit_barrier()`` for the tick's writes, and only then resolves
    the futures — the ack point.  With ``coalesce=False`` every
    operation becomes its own engine call with its own barrier: the
    per-request dispatch baseline the benchmark compares against.

    ``trace=True`` records the executed engine-call sequence (method,
    arguments, answers) — the serialization witness the exactness tests
    replay against a shadow store.
    """

    def __init__(
        self, store: Any, *, coalesce: bool = True, trace: bool = False
    ) -> None:
        self.store = store
        self.coalesce = coalesce
        self.trace: list[tuple] | None = [] if trace else None
        self._pending: deque[_Op] = deque()
        self._wake = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._task: asyncio.Task | None = None
        self._closed = False
        # Accounting (read by StoreServer.info() / the benchmark):
        self.ticks = 0
        self.ops = 0
        self.engine_calls = 0
        self.barriers = 0
        self.max_tick_ops = 0

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def submit(self, kind: str, payload: Any) -> Any:
        """Park one operation; resolves with its answer after execution
        (for writes: after the covering group commit)."""
        if self._closed:
            raise ConnectionResetError("server is draining")
        if not self.coalesce:
            # Per-request dispatch baseline: one executor round trip and
            # (for writes) one ack barrier per operation.  The single
            # worker thread still serializes store access.
            return await asyncio.get_running_loop().run_in_executor(
                self._executor, self._execute_one, kind, payload
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append(_Op(kind, payload, future))
        self._wake.set()
        return await future

    async def aclose(self) -> None:
        """Drain every parked operation, then stop the dispatcher."""
        self._closed = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        self._executor.shutdown(wait=True)

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._closed:
                    return
                await self._wake.wait()
                self._wake.clear()
                continue
            batch = list(self._pending)
            self._pending.clear()
            try:
                results = await loop.run_in_executor(
                    self._executor, self._execute, batch
                )
            except BaseException as exc:  # noqa: B036 - fault drills raise BaseException
                for op in batch:
                    if not op.future.done():
                        op.future.set_exception(exc)
                continue
            for op, result in zip(batch, results):
                if op.future.done():
                    continue
                if isinstance(result, _OpError):
                    op.future.set_exception(result.exc)
                else:
                    op.future.set_result(result)

    # -- executor-thread side ------------------------------------------
    def _execute_one(self, kind: str, payload: Any) -> Any:
        """The uncoalesced path: one op, one engine call, own barrier."""
        answers = self._run_group(kind, [payload])
        if kind in _WRITE_KINDS:
            self.store.commit_barrier()
            self.barriers += 1
        self.ticks += 1
        self.ops += 1
        self.max_tick_ops = max(self.max_tick_ops, 1)
        return answers[0]

    def _execute(self, batch: list[_Op]) -> list[Any]:
        results: list[Any] = [None] * len(batch)
        wrote = False
        index = 0
        total = len(batch)
        while index < total:
            kind = batch[index].kind
            stop = index + 1
            if kind in _VECTOR_KINDS:
                while stop < total and batch[stop].kind == kind:
                    stop += 1
            group = batch[index:stop]
            try:
                answers = self._run_group(kind, [op.payload for op in group])
            except Exception as exc:
                for offset in range(len(group)):
                    results[index + offset] = _OpError(exc)
            else:
                for offset, answer in enumerate(answers):
                    results[index + offset] = answer
                if kind in _WRITE_KINDS:
                    wrote = True
            index = stop
        if wrote:
            # One group commit covers every write of the tick; resolving
            # the futures (the ack) happens after this returns.
            self.store.commit_barrier()
            self.barriers += 1
        self.ticks += 1
        self.ops += total
        self.max_tick_ops = max(self.max_tick_ops, total)
        return results

    def _record(self, *entry: Any) -> None:
        if self.trace is not None:
            self.trace.append(entry)

    def _run_group(self, kind: str, payloads: list[Any]) -> list[Any]:
        store = self.store
        if kind in ("get", "may_contain"):
            keys = (
                payloads[0] if len(payloads) == 1 else np.concatenate(payloads)
            )
            self.engine_calls += 1
            if kind == "get":
                answers = store.get_many(keys)
                self._record("get_many", keys, answers)
            else:
                answers = store.may_contain_many(keys)
                self._record("may_contain_many", keys, answers)
            return _split_rows(answers, [int(p.size) for p in payloads])
        if kind == "scan_nonempty":
            bounds = (
                payloads[0]
                if len(payloads) == 1
                else np.concatenate(payloads, axis=0)
            )
            self.engine_calls += 1
            answers = store.scan_nonempty_many(bounds)
            self._record("scan_nonempty_many", bounds, answers)
            return _split_rows(answers, [int(p.shape[0]) for p in payloads])
        if kind == "put":
            keys = (
                payloads[0][0]
                if len(payloads) == 1
                else np.concatenate([p[0] for p in payloads])
            )
            values: list[bytes] | None = None
            if any(p[1] is not None for p in payloads):
                values = []
                for chunk_keys, chunk_values in payloads:
                    if chunk_values is None:
                        values.extend([b""] * int(chunk_keys.size))
                    else:
                        values.extend(chunk_values)
            self.engine_calls += 1
            store.put_many(keys, values)
            self._record("put_many", keys, values)
            return [int(p[0].size) for p in payloads]
        if kind == "delete":
            keys = (
                payloads[0] if len(payloads) == 1 else np.concatenate(payloads)
            )
            self.engine_calls += 1
            store.delete_many(keys)
            self._record("delete_many", keys)
            return [int(p.size) for p in payloads]
        if kind == "scan":
            out: list[Any] = []
            for lo, hi, limit in payloads:
                self.engine_calls += 1
                entries = store.scan(lo, hi, limit)
                self._record("scan", lo, hi, limit, entries)
                out.append(entries)
            return out
        if kind == "get_value":
            out = []
            for key in payloads:
                self.engine_calls += 1
                value = store.get_value(key)
                self._record("get_value", key, value)
                out.append(value)
            return out
        if kind == "stats":
            snapshot = self._stats_snapshot()
            return [snapshot] * len(payloads)
        raise ProtocolError(f"unknown operation kind {kind!r}")

    def _stats_snapshot(self) -> dict[str, Any]:
        """A consistent stats read: runs on the worker thread, serialized
        with every other engine call."""
        store = self.store
        stats = store.stats
        snapshot: dict[str, Any] = {
            "counters": stats.counters(),
            "block_cache": {
                "hits": int(stats.block_cache_hits),
                "misses": int(stats.block_cache_misses),
            },
            "breakdown": stats.breakdown(),
            "num_keys": int(store.num_keys),
            "num_sstables": int(getattr(store, "num_sstables", 0)),
        }
        wal_info = getattr(store, "wal_info", None)
        if callable(wal_info):
            snapshot["wal"] = wal_info()
        return snapshot


# ----------------------------------------------------------------------
# request validation (before anything reaches a NumPy buffer)
# ----------------------------------------------------------------------
def _field(request: dict[str, Any], name: str) -> Any:
    try:
        return request[name]
    except KeyError:
        raise ProtocolError(f"request is missing field {name!r}") from None


def _key_int(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"key must be an integer, got {value!r}")
    if not 0 <= value < 1 << 64:
        raise ProtocolError(f"key {value} is outside the u64 domain")
    return value


def _keys_array(values: Any) -> np.ndarray:
    if not isinstance(values, list):
        raise ProtocolError("keys must be a JSON array of integers")
    return np.array([_key_int(v) for v in values], dtype=np.uint64)


def _bounds_array(rows: Any) -> np.ndarray:
    if not isinstance(rows, list):
        raise ProtocolError("bounds must be a JSON array of [lo, hi] pairs")
    checked = []
    for row in rows:
        if not isinstance(row, list) or len(row) != 2:
            raise ProtocolError(f"bounds entry {row!r} is not a [lo, hi] pair")
        lo, hi = _key_int(row[0]), _key_int(row[1])
        if lo > hi:
            raise ProtocolError(f"inverted bounds [{lo}, {hi}]")
        checked.append((lo, hi))
    return np.array(checked, dtype=np.uint64).reshape(-1, 2)


def _values_list(raw: Any, count: int) -> list[bytes] | None:
    if raw is None:
        return None
    if not isinstance(raw, list) or len(raw) != count:
        raise ProtocolError("values must be a JSON array aligned with keys")
    return [decode_value(v) for v in raw]


class StoreServer:
    """The asyncio TCP front-end over one :func:`repro.api.open_store`.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start`.  ``max_inflight`` caps in-flight requests per
    connection (backpressure); ``coalesce=False`` switches to the
    per-request dispatch baseline; ``trace=True`` records the executed
    engine-call serialization for the exactness tests.
    """

    def __init__(
        self,
        store: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        coalesce: bool = True,
        max_inflight: int = 64,
        trace: bool = False,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.store = store
        self.host = host
        self.port = port
        self.coalesce = coalesce
        self.max_inflight = max_inflight
        self.coalescer = Coalescer(store, coalesce=coalesce, trace=trace)
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._closing = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self._closed = False
        self.connections_total = 0
        self.requests_total = 0
        self.errors_total = 0

    @property
    def trace(self) -> list[tuple] | None:
        """The executed engine-call serialization (``trace=True`` only)."""
        return self.coalescer.trace

    async def start(self) -> None:
        """Bind the listener and start the dispatcher."""
        self.coalescer.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])

    async def serve_forever(self) -> None:
        """Block until :meth:`aclose` (or a fatal listener error)."""
        if self._server is None:
            raise RuntimeError("server not started; call start() first")
        await self._closing.wait()

    async def aclose(self) -> None:
        """Graceful shutdown: drain the coalescer, flush, release.

        Stops accepting and reading, answers every in-flight request
        (writes still ack at their group-commit barrier), drains parked
        operations, then flushes the store so everything acked is also in
        runs.  The store itself stays open — its owner closes it.
        """
        if self._closed:
            return
        self._closed = True
        self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        await self.coalescer.aclose()
        await asyncio.get_running_loop().run_in_executor(None, self.store.flush)

    def info(self) -> dict[str, Any]:
        """Server + coalescer accounting (also served by op ``stats``)."""
        c = self.coalescer
        return {
            "coalesce": self.coalesce,
            "max_inflight": self.max_inflight,
            "connections": self.connections_total,
            "requests": self.requests_total,
            "errors": self.errors_total,
            "ticks": c.ticks,
            "coalesced_ops": c.ops,
            "engine_calls": c.engine_calls,
            "barriers": c.barriers,
            "max_tick_ops": c.max_tick_ops,
            "mean_tick_ops": (c.ops / c.ticks) if c.ticks else 0.0,
        }

    # -- connection handling -------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        self.connections_total += 1
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._conn_tasks.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        gate = asyncio.Semaphore(self.max_inflight)
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        closing_wait = asyncio.ensure_future(self._closing.wait())
        try:
            while not self._closing.is_set():
                read = asyncio.ensure_future(read_frame(reader))
                await asyncio.wait(
                    {read, closing_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read.done():
                    read.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, ProtocolError, OSError
                    ):
                        await read
                    break
                try:
                    request = read.result()
                except ProtocolError as exc:
                    # Framing is lost: answer once, then drop the link.
                    with contextlib.suppress(ConnectionError, OSError):
                        await self._send(
                            writer,
                            write_lock,
                            {
                                "id": None,
                                "ok": False,
                                "error": str(exc),
                                "kind": "ProtocolError",
                            },
                        )
                    break
                except (ConnectionError, OSError):
                    break
                if request is None:
                    break
                # Backpressure: cap in-flight requests; past the cap we
                # stop reading this socket and TCP pushes back.
                await gate.acquire()
                task = asyncio.ensure_future(
                    self._process(request, writer, write_lock, gate)
                )
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        finally:
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            closing_wait.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await closing_wait
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _process(
        self,
        request: dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        gate: asyncio.Semaphore,
    ) -> None:
        try:
            response = await self._respond(request)
            await self._send(writer, write_lock, response)
        except (ConnectionError, OSError):
            pass  # client went away; the read loop notices on its own
        finally:
            gate.release()

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        message: dict[str, Any],
    ) -> None:
        frame = encode_frame(message)
        async with write_lock:
            writer.write(frame)
            await writer.drain()

    async def _respond(self, request: dict[str, Any]) -> dict[str, Any]:
        rid = request.get("id")
        self.requests_total += 1
        try:
            op = request.get("op")
            if not isinstance(op, str):
                raise ProtocolError("request is missing a string 'op' field")
            answer = await self._dispatch(op, request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.errors_total += 1
            return {
                "id": rid,
                "ok": False,
                "error": str(exc),
                "kind": type(exc).__name__,
            }
        return {"id": rid, "ok": True, **answer}

    async def _dispatch(
        self, op: str, request: dict[str, Any]
    ) -> dict[str, Any]:
        submit = self.coalescer.submit
        if op == "ping":
            return {"pong": True}
        if op == "stats":
            return {"stats": await submit("stats", None)}
        if op == "get":
            keys = _keys_array([_field(request, "key")])
            answers = await submit("get", keys)
            return {"found": bool(answers[0])}
        if op == "get_many":
            keys = _keys_array(_field(request, "keys"))
            answers = await submit("get", keys)
            return {"found": [bool(a) for a in answers]}
        if op == "get_value":
            key = _key_int(_field(request, "key"))
            value = await submit("get_value", key)
            return {"found": value is not None, "value": encode_value(value)}
        if op == "put":
            keys = _keys_array([_field(request, "key")])
            raw = request.get("value")
            values = [decode_value(raw)] if raw is not None else None
            acked = await submit("put", (keys, values))
            return {"acked": acked}
        if op == "put_many":
            keys = _keys_array(_field(request, "keys"))
            values = _values_list(request.get("values"), int(keys.size))
            acked = await submit("put", (keys, values))
            return {"acked": acked}
        if op == "delete":
            keys = _keys_array([_field(request, "key")])
            acked = await submit("delete", keys)
            return {"acked": acked}
        if op == "delete_many":
            keys = _keys_array(_field(request, "keys"))
            acked = await submit("delete", keys)
            return {"acked": acked}
        if op == "may_contain":
            keys = _keys_array([_field(request, "key")])
            answers = await submit("may_contain", keys)
            return {"maybe": bool(answers[0])}
        if op == "may_contain_many":
            keys = _keys_array(_field(request, "keys"))
            answers = await submit("may_contain", keys)
            return {"maybe": [bool(a) for a in answers]}
        if op == "scan_nonempty":
            bounds = _bounds_array([[_field(request, "lo"), _field(request, "hi")]])
            answers = await submit("scan_nonempty", bounds)
            return {"nonempty": bool(answers[0])}
        if op == "scan_nonempty_many":
            bounds = _bounds_array(_field(request, "bounds"))
            answers = await submit("scan_nonempty", bounds)
            return {"nonempty": [bool(a) for a in answers]}
        if op == "scan_range":
            lo = _key_int(_field(request, "lo"))
            hi = _key_int(_field(request, "hi"))
            if lo > hi:
                raise ProtocolError(f"inverted bounds [{lo}, {hi}]")
            limit = request.get("limit")
            if limit is not None and (
                isinstance(limit, bool)
                or not isinstance(limit, int)
                or limit < 0
            ):
                raise ProtocolError(
                    f"limit must be a non-negative integer, got {limit!r}"
                )
            entries = await submit("scan", (lo, hi, limit))
            return {
                "entries": [
                    [int(key), encode_value(value)] for key, value in entries
                ]
            }
        raise ProtocolError(f"unknown op {op!r}")


async def run_server(
    store: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    coalesce: bool = True,
    max_inflight: int = 64,
    on_ready: Callable[[str, int], None] | None = None,
) -> StoreServer:
    """Serve ``store`` until SIGINT/SIGTERM, then shut down gracefully.

    The ``repro serve`` entry point: installs signal handlers when the
    loop allows it, calls ``on_ready(host, port)`` once listening, and
    always runs the drain-flush shutdown on the way out.
    """
    server = StoreServer(
        store, host, port, coalesce=coalesce, max_inflight=max_inflight
    )
    await server.start()
    assert server.address is not None
    if on_ready is not None:
        on_ready(*server.address)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed: list[signal.Signals] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread / non-Unix loop: rely on cancellation
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.aclose()
    return server
