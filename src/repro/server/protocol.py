"""Wire protocol for the repro serving layer: length-prefixed JSON frames.

One frame per request and per response::

    +-----------------+---------------------------+
    | u32 LE length   | length x UTF-8 JSON bytes |
    +-----------------+---------------------------+

The body is always one JSON object.  Requests carry ``{"id": <int>,
"op": <str>, ...operands}``; responses echo the id with ``{"id": <int>,
"ok": true, ...answer}`` or ``{"id": <int>, "ok": false, "error": <str>,
"kind": <exception class name>}``.  Ids are chosen by the client and only
need to be unique among its own in-flight requests — the server may
answer out of order (coalesced batches complete together), so pipelining
clients match responses by id.

Values are raw bytes at the store API but JSON strings on the wire:
base64 via :func:`encode_value` / :func:`decode_value` (None stays null).
Keys are plain JSON integers in ``[0, 2**64)`` — within JSON's arbitrary
precision, validated server-side before they reach a NumPy buffer.

Frames are capped at :data:`MAX_FRAME_BYTES` in both directions; an
oversized, truncated, or non-JSON frame raises :class:`ProtocolError`,
after which the connection is dropped (frame boundaries are lost).
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import struct
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_frame_body",
    "decode_value",
    "encode_frame",
    "encode_value",
    "read_frame",
]

#: Upper bound on one frame's JSON body, both directions.  Large enough
#: for a ~100k-key batch, small enough that a malicious length prefix
#: cannot balloon server memory.
MAX_FRAME_BYTES = 32 << 20

_LEN_PREFIX = struct.Struct("<I")


class ProtocolError(ValueError):
    """A malformed frame or request: the connection is no longer framed."""


def encode_frame(message: dict[str, Any]) -> bytes:
    """One wire frame (length prefix + JSON body) for ``message``."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _LEN_PREFIX.pack(len(body)) + body


def decode_frame_body(body: bytes) -> dict[str, Any]:
    """The JSON object inside one frame body (already length-stripped)."""
    try:
        message = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """The next frame from ``reader``; None on clean EOF between frames."""
    try:
        prefix = await reader.readexactly(_LEN_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError(
                "connection closed inside a frame's length prefix"
            ) from exc
        return None
    (length,) = _LEN_PREFIX.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed {len(exc.partial)} bytes into a "
            f"{length}-byte frame body"
        ) from exc
    return decode_frame_body(body)


def encode_value(value: bytes | None) -> str | None:
    """Store value bytes -> JSON-safe base64 string (None stays None)."""
    if value is None:
        return None
    return base64.b64encode(value).decode("ascii")


def decode_value(encoded: Any) -> bytes:
    """JSON base64 string -> store value bytes, validated."""
    if not isinstance(encoded, str):
        raise ProtocolError(
            f"value must be a base64 string, got {type(encoded).__name__}"
        )
    try:
        return base64.b64decode(encoded.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise ProtocolError(f"value is not valid base64: {exc}") from exc
