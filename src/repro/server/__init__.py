"""repro.server — the concurrent asyncio service front-end.

A small TCP server (length-prefixed JSON frames) over one
:func:`repro.api.open_store` instance, with a per-tick request coalescer
that turns concurrent client traffic into the engines' vectorized batch
calls and acknowledges write groups at a single WAL group-commit
barrier.  See :mod:`repro.server.server` for the execution model and
:mod:`repro.server.protocol` for the wire format.

Entry points: ``repro serve PATH`` (CLI), :class:`StoreServer` /
:func:`run_server` (embedding), :class:`StoreClient` /
:class:`AsyncStoreClient` (clients), :func:`repro.server.bench.run_benchmark`
(the many-client benchmark behind ``BENCH_server.json``).
"""

from repro.server.client import AsyncStoreClient, ServerError, StoreClient
from repro.server.protocol import MAX_FRAME_BYTES, ProtocolError
from repro.server.server import Coalescer, StoreServer, run_server

__all__ = [
    "AsyncStoreClient",
    "Coalescer",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServerError",
    "StoreClient",
    "StoreServer",
    "run_server",
]
