"""Many-client mixed-workload benchmark driver for the serving layer.

Runs the same seeded workload twice — once against a coalescing server,
once against the per-request dispatch baseline (``coalesce=False``, where
every operation is its own engine call and every write pays its own ack
barrier) — and reports sustained QPS plus p50/p99 request latency for
each, with the coalesced/uncoalesced ratios the CI guards watch.

Shared by ``benchmarks/bench_ops_server.py`` and the
``repro store bench-server`` CLI; both feed ``scripts/check_bench.py``.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Callable

import numpy as np

from repro.server.client import AsyncStoreClient
from repro.server.server import StoreServer

__all__ = ["drive_server", "run_benchmark"]


async def _client_workload(
    client: AsyncStoreClient,
    rng: random.Random,
    *,
    requests: int,
    batch: int,
    key_space: int,
    latencies: list[float],
) -> None:
    span = max(key_space // 256, 4)
    for _ in range(requests):
        roll = rng.random()
        start = time.perf_counter()
        if roll < 0.25:
            keys = [rng.randrange(key_space) for _ in range(batch)]
            values = [b"v%d" % k for k in keys]
            await client.put_many(keys, values)
        elif roll < 0.30:
            keys = [rng.randrange(key_space) for _ in range(max(batch // 2, 1))]
            await client.delete_many(keys)
        elif roll < 0.65:
            await client.get_many(
                [rng.randrange(key_space) for _ in range(batch)]
            )
        elif roll < 0.80:
            await client.may_contain_many(
                [rng.randrange(key_space) for _ in range(batch)]
            )
        elif roll < 0.95:
            lo = rng.randrange(key_space - span)
            await client.scan_nonempty(lo, lo + span)
        else:
            lo = rng.randrange(key_space - span)
            await client.scan_range(lo, lo + span, limit=16)
        latencies.append(time.perf_counter() - start)


async def drive_server(
    store: Any,
    *,
    coalesce: bool,
    clients: int,
    requests_per_client: int,
    seed: int,
    batch: int = 8,
    key_space: int = 1 << 20,
) -> dict[str, Any]:
    """Serve ``store``, hammer it with ``clients`` concurrent asyncio
    clients running the seeded mixed workload, and report throughput,
    latency percentiles, and coalescer accounting."""
    server = StoreServer(store, port=0, coalesce=coalesce)
    await server.start()
    assert server.address is not None
    host, port = server.address
    latencies: list[float] = []

    async def one_client(cid: int) -> None:
        client = await AsyncStoreClient.connect(host, port)
        try:
            await _client_workload(
                client,
                random.Random((seed << 8) ^ cid),
                requests=requests_per_client,
                batch=batch,
                key_space=key_space,
                latencies=latencies,
            )
        finally:
            await client.aclose()

    started = time.perf_counter()
    await asyncio.gather(*(one_client(c) for c in range(clients)))
    elapsed = time.perf_counter() - started
    info = server.info()
    await server.aclose()

    lat_ms = np.sort(np.array(latencies, dtype=np.float64)) * 1e3
    total = clients * requests_per_client
    return {
        "requests": total,
        "elapsed_s": elapsed,
        "qps": total / elapsed,
        "p50_ms": float(np.percentile(lat_ms, 50)),
        "p99_ms": float(np.percentile(lat_ms, 99)),
        "mean_tick_ops": info["mean_tick_ops"],
        "max_tick_ops": info["max_tick_ops"],
        "engine_calls": info["engine_calls"],
        "barriers": info["barriers"],
        "errors": info["errors"],
    }


def run_benchmark(
    make_store: Callable[[], Any],
    *,
    clients: int = 8,
    requests_per_client: int = 50,
    seed: int = 0,
    batch: int = 8,
    key_space: int = 1 << 20,
) -> dict[str, Any]:
    """Coalesced vs per-request dispatch on fresh stores from
    ``make_store`` (called once per mode so neither run sees the other's
    data), plus the dimensionless ratios the bench gates guard."""
    sides = {}
    for label, coalesce in (("coalesced", True), ("uncoalesced", False)):
        store = make_store()
        try:
            sides[label] = asyncio.run(
                drive_server(
                    store,
                    coalesce=coalesce,
                    clients=clients,
                    requests_per_client=requests_per_client,
                    seed=seed,
                    batch=batch,
                    key_space=key_space,
                )
            )
        finally:
            store.close()
    coalesced, uncoalesced = sides["coalesced"], sides["uncoalesced"]
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "batch": batch,
        "key_space": key_space,
        "seed": seed,
        "coalesced": coalesced,
        "uncoalesced": uncoalesced,
        "coalesce_qps_speedup": coalesced["qps"] / uncoalesced["qps"],
        "coalesce_p99_ratio": uncoalesced["p99_ms"] / coalesced["p99_ms"],
        "engine_call_reduction": (
            uncoalesced["engine_calls"] / max(coalesced["engine_calls"], 1)
        ),
        "acceptance": {
            "eight_plus_clients": clients >= 8,
            "coalesced_beats_uncoalesced": (
                coalesced["qps"] > uncoalesced["qps"]
            ),
            "zero_request_errors": (
                coalesced["errors"] == 0 and uncoalesced["errors"] == 0
            ),
        },
    }
