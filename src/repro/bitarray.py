"""NumPy-backed bit array with aligned power-of-two word access.

This is the physical storage substrate shared by every filter in the package.
It stores ``m`` bits in an array of little-endian 64-bit words and supports
two access granularities:

* single bits (``set_bit`` / ``test_bit``), used by Bloom filters and by
  bloomRF covering checks, and
* aligned *fields* of ``2**w`` bits with ``w <= 6`` (``read_field`` /
  ``or_field``), used by bloomRF's piecewise-monotone hash functions, whose
  word size is ``2**(delta-1)`` bits (Sect. 3.2 of the paper).  Because field
  widths are powers of two and field reads are aligned, a field never
  straddles two storage words, so a field read is a constant-time shift+mask
  on one ``uint64``.

Bulk (vectorized) variants accept NumPy ``uint64`` index arrays so that
millions of keys can be inserted or probed without a Python-level loop.
"""

from __future__ import annotations

import numpy as np

from repro._util import ceil_div, is_power_of_two, round_up

_WORD_BITS = 64
_WORD_SHIFT = 6
_WORD_MASK = 63

__all__ = ["BitArray"]


class BitArray:
    """A fixed-size array of ``m`` bits backed by ``uint64`` words.

    Parameters
    ----------
    num_bits:
        Capacity in bits.  Rounded up to a multiple of 64 internally; the
        logical size (``len(ba)``) keeps the requested value.
    """

    __slots__ = ("_num_bits", "words")

    def __init__(self, num_bits: int) -> None:
        if num_bits <= 0:
            raise ValueError(f"BitArray size must be positive, got {num_bits}")
        self._num_bits = num_bits
        self.words = np.zeros(ceil_div(num_bits, _WORD_BITS), dtype=np.uint64)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_bits

    @property
    def num_bits(self) -> int:
        """Logical capacity in bits."""
        return self._num_bits

    @property
    def storage_bits(self) -> int:
        """Physical capacity in bits (rounded up to whole words)."""
        return self.words.size * _WORD_BITS

    def count_ones(self) -> int:
        """Population count over the whole array."""
        return int(np.sum(np.bitwise_count(self.words)))

    def fill_ratio(self) -> float:
        """Fraction of logical bits currently set."""
        return self.count_ones() / self._num_bits

    def clear(self) -> None:
        """Reset every bit to zero."""
        self.words[:] = 0

    def union_with(self, other: "BitArray") -> None:
        """OR every bit of ``other`` into this array (sizes must match).

        One vectorized word-level OR — the primitive behind filter merging:
        because inserts only ever OR bits in, the union of two bit arrays
        equals the array produced by replaying both insert streams.
        """
        if self._num_bits != other._num_bits:
            raise ValueError(
                f"cannot union bit arrays of different sizes "
                f"({self._num_bits} vs {other._num_bits} bits)"
            )
        np.bitwise_or(self.words, other.words, out=self.words)

    # ------------------------------------------------------------------
    # single-bit access (scalar)
    # ------------------------------------------------------------------
    def set_bit(self, pos: int) -> None:
        """Set the bit at ``pos`` to one."""
        self.words[pos >> _WORD_SHIFT] |= np.uint64(1 << (pos & _WORD_MASK))

    def test_bit(self, pos: int) -> bool:
        """Return True if the bit at ``pos`` is one."""
        return bool((int(self.words[pos >> _WORD_SHIFT]) >> (pos & _WORD_MASK)) & 1)

    # ------------------------------------------------------------------
    # single-bit access (vectorized)
    # ------------------------------------------------------------------
    def set_bits(self, positions: np.ndarray) -> None:
        """Set all bits listed in ``positions`` (uint64 array) to one."""
        positions = positions.astype(np.uint64, copy=False)
        word_idx = positions >> np.uint64(_WORD_SHIFT)
        bit = np.uint64(1) << (positions & np.uint64(_WORD_MASK))
        # np.bitwise_or.at handles repeated word indices correctly.
        np.bitwise_or.at(self.words, word_idx, bit)

    def test_bits(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized ``test_bit``: boolean array, one entry per position."""
        positions = positions.astype(np.uint64, copy=False)
        word_idx = positions >> np.uint64(_WORD_SHIFT)
        shift = positions & np.uint64(_WORD_MASK)
        return ((self.words[word_idx] >> shift) & np.uint64(1)) != 0

    # ------------------------------------------------------------------
    # aligned field access
    # ------------------------------------------------------------------
    def read_field(self, bit_pos: int, field_bits: int) -> int:
        """Read the aligned ``field_bits``-wide field containing ``bit_pos``.

        ``field_bits`` must be a power of two <= 64.  The returned integer has
        the field's lowest-address bit in its bit 0 — i.e. bit ``j`` of the
        result is the bit at array position ``align(bit_pos) + j``.
        """
        if field_bits == _WORD_BITS:
            return int(self.words[bit_pos >> _WORD_SHIFT])
        start = bit_pos & ~(field_bits - 1)
        word = int(self.words[start >> _WORD_SHIFT])
        return (word >> (start & _WORD_MASK)) & ((1 << field_bits) - 1)

    def or_field(self, bit_pos: int, field_bits: int, value: int) -> None:
        """OR ``value`` into the aligned field containing ``bit_pos``."""
        start = bit_pos & ~(field_bits - 1)
        self.words[start >> _WORD_SHIFT] |= np.uint64(
            (value & ((1 << field_bits) - 1)) << (start & _WORD_MASK)
        )

    def read_fields(self, bit_positions: np.ndarray, field_bits: int) -> np.ndarray:
        """Vectorized ``read_field`` for a uint64 array of bit positions."""
        if not is_power_of_two(field_bits) or field_bits > _WORD_BITS:
            raise ValueError(f"field_bits must be a power of two <= 64, got {field_bits}")
        bit_positions = bit_positions.astype(np.uint64, copy=False)
        start = bit_positions & np.uint64(~(field_bits - 1) & ((1 << 64) - 1))
        words = self.words[start >> np.uint64(_WORD_SHIFT)]
        if field_bits == _WORD_BITS:
            return words
        shifted = words >> (start & np.uint64(_WORD_MASK))
        return shifted & np.uint64((1 << field_bits) - 1)

    # ------------------------------------------------------------------
    # range queries over raw bit positions (used by exact-level bitmaps)
    # ------------------------------------------------------------------
    def any_in_range(self, lo: int, hi: int) -> bool:
        """True if any bit in the inclusive position range [lo, hi] is set."""
        if lo > hi:
            return False
        lo_word, hi_word = lo >> _WORD_SHIFT, hi >> _WORD_SHIFT
        lo_mask = ~((1 << (lo & _WORD_MASK)) - 1) & ((1 << 64) - 1)
        hi_mask = ((1 << ((hi & _WORD_MASK) + 1)) - 1) if (hi & _WORD_MASK) != _WORD_MASK else (1 << 64) - 1
        if lo_word == hi_word:
            return bool(int(self.words[lo_word]) & lo_mask & hi_mask)
        if int(self.words[lo_word]) & lo_mask:
            return True
        if int(self.words[hi_word]) & hi_mask:
            return True
        if hi_word - lo_word > 1:
            return bool(np.any(self.words[lo_word + 1 : hi_word]))
        return False

    def any_in_ranges(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`any_in_range` over parallel position arrays.

        Computed as a rank difference over a popcount prefix sum, so the
        cost is one pass over the storage words plus O(1) work per query —
        independent of the individual range lengths.
        """
        lo = lo.astype(np.int64, copy=False)
        hi = hi.astype(np.int64, copy=False)
        if lo.size == 0:
            return np.zeros(0, dtype=bool)
        counts = np.bitwise_count(self.words).astype(np.int64)
        cum = np.zeros(self.words.size + 1, dtype=np.int64)
        np.cumsum(counts, out=cum[1:])

        def rank(pos: np.ndarray) -> np.ndarray:
            # Number of set bits strictly below each position.
            word = pos >> _WORD_SHIFT
            bit = (pos & _WORD_MASK).astype(np.uint64)
            safe = np.minimum(word, self.words.size - 1)
            partial_mask = (np.uint64(1) << bit) - np.uint64(1)
            partial = np.bitwise_count(self.words[safe] & partial_mask)
            return cum[word] + np.where(bit != 0, partial.astype(np.int64), 0)

        return (rank(hi + 1) - rank(lo)) > 0

    # ------------------------------------------------------------------
    # diagnostics used by the Fig. 5 scatter experiment
    # ------------------------------------------------------------------
    def zero_run_lengths(self) -> np.ndarray:
        """Lengths of maximal runs of zero bits, in array order.

        Used to reproduce Fig. 5.B/C (bit-array scatter comparison between a
        Bloom filter and bloomRF).  Returns an int64 array of run lengths.
        """
        bits = self.to_bit_vector()
        if bits.size == 0:
            return np.zeros(0, dtype=np.int64)
        # Boundaries where the bit value changes.
        change = np.nonzero(np.diff(bits))[0]
        starts = np.concatenate(([0], change + 1))
        ends = np.concatenate((change, [bits.size - 1]))
        lengths = ends - starts + 1
        values = bits[starts]
        return lengths[values == 0].astype(np.int64)

    def one_run_lengths(self) -> np.ndarray:
        """Lengths of maximal runs of one bits (gap metric of Fig. 5.C)."""
        bits = self.to_bit_vector()
        if bits.size == 0:
            return np.zeros(0, dtype=np.int64)
        change = np.nonzero(np.diff(bits))[0]
        starts = np.concatenate(([0], change + 1))
        ends = np.concatenate((change, [bits.size - 1]))
        lengths = ends - starts + 1
        values = bits[starts]
        return lengths[values == 1].astype(np.int64)

    def to_bit_vector(self) -> np.ndarray:
        """Expand to a uint8 array of 0/1 values, one per logical bit."""
        expanded = np.unpackbits(
            self.words.view(np.uint8), bitorder="little"
        )
        return expanded[: self._num_bits]

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to little-endian bytes (words in order)."""
        return self.words.tobytes()

    @classmethod
    def from_bytes(cls, data: bytes, num_bits: int) -> "BitArray":
        """Reconstruct from :meth:`to_bytes` output."""
        ba = cls(num_bits)
        expected = ba.words.size * 8
        if len(data) != expected:
            raise ValueError(
                f"serialized BitArray has {len(data)} bytes, expected {expected}"
            )
        ba.words = np.frombuffer(data, dtype=np.uint64).copy()
        return ba

    @classmethod
    def from_buffer(cls, data, num_bits: int) -> "BitArray":
        """Zero-copy view over serialized words (mmap'd filter frames).

        The words array aliases ``data`` — typically a memoryview into an
        ``mmap`` — so probing faults in only the pages it touches and the
        buffer outlives this array automatically.  The view is read-only:
        probe-side methods (``test_bit*``, ``read_field*``, counts) all
        work; mutating ones (``set_bit``, ``or_field``, ``union_with``,
        ``clear``) raise, which is exactly right for a sealed run's
        filter.  Use :meth:`from_bytes` when a mutable copy is needed.
        """
        if num_bits <= 0:
            raise ValueError(f"BitArray size must be positive, got {num_bits}")
        words = np.frombuffer(data, dtype=np.uint64)
        expected = ceil_div(num_bits, _WORD_BITS)
        if words.size != expected:
            raise ValueError(
                f"serialized BitArray has {len(data)} bytes, "
                f"expected {expected * 8}"
            )
        ba = cls.__new__(cls)
        ba._num_bits = num_bits
        ba.words = words
        return ba

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._num_bits == other._num_bits and bool(
            np.array_equal(self.words, other.words)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BitArray(num_bits={self._num_bits}, "
            f"ones={self.count_ones()}, fill={self.fill_ratio():.3f})"
        )


def aligned_bits(num_bits: int, word_bits: int) -> int:
    """Round a bit budget up so it divides evenly into ``word_bits`` words."""
    if not is_power_of_two(word_bits):
        raise ValueError(f"word_bits must be a power of two, got {word_bits}")
    return round_up(num_bits, max(word_bits, _WORD_BITS))
