"""AST-based invariant linter for the repo's safety contracts.

``repro lint`` / ``python -m repro.analysis`` runs a small set of
repo-specific rules over ``src/repro`` and fails on any unsuppressed
finding.  The rules encode the store's correctness contracts — the
maintenance-lock discipline around the copy-on-write run list, the
fsync-before-``os.replace`` durability ordering, WAL-before-memtable
write ordering, actionable ``SerialError`` messages, pinned ``uint64``
key dtypes, and no swallowed worker exceptions — so a violation is a CI
failure, not a review-memory test.

Deliberate exceptions are suppressed in place with a written reason::

    risky_thing()  # repro-lint: ignore[rule-id] -- why this one is safe

The dynamic complement (lock-order cycle detection at runtime) lives in
:mod:`repro.testing.locks`.
"""

from __future__ import annotations

from .cli import main
from .core import Finding, Linter, LintReport, ModuleSource, Rule, Suppression
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "Linter",
    "LintReport",
    "ModuleSource",
    "Rule",
    "Suppression",
    "default_linter",
    "main",
]


def default_linter() -> Linter:
    """A :class:`Linter` loaded with the full repo rule set."""
    return Linter([cls() for cls in ALL_RULES])
