"""The repo-specific invariant rules.

Each rule encodes one safety contract that previously lived only in
docstrings and review memory.  See the README "Static analysis" section
for the rule table; run ``repro lint --list-rules`` for a live listing.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Sequence
from pathlib import Path

from .core import Finding, ModuleSource, Rule

__all__ = ["ALL_RULES"]


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of a call target: ``self._wal.append_put``,
    ``os.replace``, ``super().put``; empty string for anything exotic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else ""
    if isinstance(node, ast.Call):
        base = _dotted(node.func)
        return f"{base}()" if base else ""
    return ""


def _is_self_attr(node: ast.expr, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class _ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing function-name stack."""

    def __init__(self) -> None:
        self.func_stack: list[str] = []

    @property
    def current_function(self) -> str:
        return self.func_stack[-1] if self.func_stack else ""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------

#: Methods that document "caller holds the maintenance lock".  They may be
#: called only under ``with self._maintenance_lock`` or from another such
#: method (the outermost caller holds the lock).
_LOCKED_METHOD = re.compile(r"(?:_locked$|^_commit_merge$)")


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    summary = (
        "run-list mutations and *_locked/_commit_merge calls must hold "
        "the maintenance lock"
    )
    invariant = (
        "readers take lock-free copy-on-write snapshots of self.sstables, "
        "so every swap of the list (and every call into a method that "
        "mutates it) must happen under self._maintenance_lock"
    )
    paths = (
        "repro/lsm/db.py",
        "repro/lsm/store.py",
        "repro/lsm/compaction.py",
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        rule = self
        findings: list[Finding] = []

        class Visitor(_ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.lock_depth = 0

            def _in_locked_context(self, *, assignment: bool) -> bool:
                if self.lock_depth > 0:
                    return True
                if _LOCKED_METHOD.search(self.current_function):
                    return True
                # Construction is single-threaded: __init__ may seed the
                # run list before any worker can exist.
                return assignment and self.current_function == "__init__"

            def visit_With(self, node: ast.With) -> None:
                holds = any(
                    _is_self_attr(item.context_expr, "_maintenance_lock")
                    for item in node.items
                )
                if holds:
                    self.lock_depth += 1
                self.generic_visit(node)
                if holds:
                    self.lock_depth -= 1

            def _check_target(self, target: ast.expr) -> None:
                nodes = [target]
                if isinstance(target, (ast.Tuple, ast.List)):
                    nodes = list(target.elts)
                for node in nodes:
                    if isinstance(node, ast.Subscript):
                        node = node.value
                    if _is_self_attr(node, "sstables") and not self._in_locked_context(
                        assignment=True
                    ):
                        findings.append(
                            rule.finding(
                                module,
                                node,
                                "self.sstables mutated outside "
                                "'with self._maintenance_lock'",
                            )
                        )

            def visit_Assign(self, node: ast.Assign) -> None:
                for target in node.targets:
                    self._check_target(target)
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                self._check_target(node.target)
                self.generic_visit(node)

            def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
                if node.value is not None:
                    self._check_target(node.target)
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and _LOCKED_METHOD.search(func.attr)
                    and not self._in_locked_context(assignment=False)
                ):
                    findings.append(
                        rule.finding(
                            module,
                            node,
                            f"locked method self.{func.attr}() called outside "
                            "'with self._maintenance_lock'",
                        )
                    )
                self.generic_visit(node)

        Visitor().visit(module.tree)
        return iter(findings)


# ----------------------------------------------------------------------
# durability-discipline
# ----------------------------------------------------------------------

#: The only functions allowed to touch the filesystem with raw writes:
#: ``_atomic_write`` (store.py: write-temp + fsync + os.replace + dir
#: fsync) and the WAL's ``_append`` / ``_write_header_file``.
_APPROVED_WRITERS = frozenset({"_atomic_write", "_write_header_file", "_append"})
_WRITE_MODE = re.compile(r"[wax+]")


class DurabilityDisciplineRule(Rule):
    id = "durability-discipline"
    summary = (
        "raw os.replace/os.write/open(..., 'w') only inside the approved "
        "durability helpers"
    )
    invariant = (
        "every durable byte goes through _atomic_write or a WAL append "
        "helper, so nothing reaches disk without the fsync-before-replace "
        "ordering the crash suites verify"
    )
    paths = ("repro/lsm/store.py", "repro/lsm/wal.py")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        rule = self
        findings: list[Finding] = []

        class Visitor(_ScopedVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                if self.current_function not in _APPROVED_WRITERS:
                    name = _dotted(node.func)
                    if name in ("os.replace", "os.write"):
                        findings.append(
                            rule.finding(
                                module,
                                node,
                                f"bare {name}() outside the approved durability "
                                "helpers (_atomic_write / WAL _append)",
                            )
                        )
                    elif name == "open":
                        mode = self._open_mode(node)
                        if mode is None or _WRITE_MODE.search(mode):
                            shown = "non-literal mode" if mode is None else f"{mode!r}"
                            findings.append(
                                rule.finding(
                                    module,
                                    node,
                                    f"bare open(..., {shown}) outside the approved "
                                    "durability helpers",
                                )
                            )
                self.generic_visit(node)

            @staticmethod
            def _open_mode(node: ast.Call) -> str | None:
                mode: ast.expr | None = None
                if len(node.args) >= 2:
                    mode = node.args[1]
                for keyword in node.keywords:
                    if keyword.arg == "mode":
                        mode = keyword.value
                if mode is None:
                    return "r"
                if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
                    return mode.value
                return None

        Visitor().visit(module.tree)
        return iter(findings)


# ----------------------------------------------------------------------
# wal-ordering
# ----------------------------------------------------------------------

_MEMTABLE_MUTATIONS = frozenset(
    {
        "self.memtable.put",
        "self.memtable.put_many",
        "self.memtable.delete",
        "self.memtable.delete_many",
        "self.memtable.clear",
        "super().put",
        "super().put_many",
        "super().delete",
        "super().delete_many",
    }
)


class WalOrderingRule(Rule):
    id = "wal-ordering"
    summary = "memtable mutations in Persistent* classes need a prior WAL append"
    invariant = (
        "an acknowledged write must be in the kernel's WAL file before the "
        "memtable mutates, or a crash between the two loses it"
    )
    paths = ("repro/lsm/store.py",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        findings: list[Finding] = []
        for klass in ast.walk(module.tree):
            if not (
                isinstance(klass, ast.ClassDef) and klass.name.startswith("Persistent")
            ):
                continue
            for method in klass.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                append_lines: list[int] = []
                mutations: list[ast.Call] = []
                for node in ast.walk(method):
                    if not isinstance(node, ast.Call):
                        continue
                    name = _dotted(node.func)
                    if name.startswith("self._wal.append"):
                        append_lines.append(node.lineno)
                    elif name in _MEMTABLE_MUTATIONS:
                        mutations.append(node)
                for mutation in mutations:
                    if not any(line < mutation.lineno for line in append_lines):
                        findings.append(
                            self.finding(
                                module,
                                mutation,
                                f"{_dotted(mutation.func)}() in "
                                f"{klass.name}.{method.name} has no preceding "
                                "self._wal.append_*() in the same method",
                            )
                        )
        return iter(findings)


# ----------------------------------------------------------------------
# serial-discipline
# ----------------------------------------------------------------------

_KIND_CONST = re.compile(r"^KIND_[A-Z0-9_]+$")
#: Identifier fragments that count as "names the offending file".
_PATHISH = ("path", "file", "name", "context", "root", "tmp", "director", "where")


class SerialDisciplineRule(Rule):
    id = "serial-discipline"
    summary = (
        "SerialError must name the offending file; every KIND_* constant "
        "needs a reader"
    )
    invariant = (
        "corruption reports are actionable only if they say *which* file "
        "is bad, and a frame kind nobody can read is dead data on disk"
    )
    paths = (
        "repro/lsm/store.py",
        "repro/lsm/wal.py",
        "repro/lsm/blocks.py",
        "repro/serial.py",
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.display.endswith("repro/serial.py"):
            return self._check_kind_registry(module)
        return self._check_raises(module)

    def _check_raises(self, module: ModuleSource) -> Iterator[Finding]:
        wrapped = self._wrapped_linenos(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Raise)
                and isinstance(node.exc, ast.Call)
                and _dotted(node.exc.func).endswith("SerialError")
            ):
                continue
            if node.lineno in wrapped:
                continue
            if not node.exc.args or not self._names_a_file(node.exc.args[0]):
                yield self.finding(
                    module,
                    node,
                    "raise SerialError(...) does not interpolate the offending "
                    "file's path or name",
                )

    @classmethod
    def _wrapped_linenos(cls, tree: ast.AST) -> set[int]:
        """Lines inside ``try`` bodies whose handler re-raises a compliant
        SerialError — the standard "inner raise, outer adds the path"
        wrapping pattern, which satisfies the contract at the boundary."""
        lines: set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            if not any(cls._handler_adds_path(handler) for handler in node.handlers):
                continue
            for stmt in node.body:
                last = getattr(stmt, "end_lineno", stmt.lineno)
                lines.update(range(stmt.lineno, last + 1))
        return lines

    @classmethod
    def _handler_adds_path(cls, handler: ast.ExceptHandler) -> bool:
        catches = handler.type
        names = [
            _dotted(n)
            for n in (catches.elts if isinstance(catches, ast.Tuple) else [catches])
            if n is not None
        ]
        if not any(
            name.endswith(("SerialError", "ValueError", "Exception"))
            for name in names
        ):
            return False
        for node in ast.walk(handler):
            if (
                isinstance(node, ast.Raise)
                and isinstance(node.exc, ast.Call)
                and _dotted(node.exc.func).endswith("SerialError")
                and node.exc.args
                and cls._names_a_file(node.exc.args[0])
            ):
                return True
        return False

    @staticmethod
    def _names_a_file(arg: ast.expr) -> bool:
        if not isinstance(arg, ast.JoinedStr):
            return False
        for part in arg.values:
            if isinstance(part, ast.FormattedValue):
                source = ast.unparse(part.value).lower()
                if any(fragment in source for fragment in _PATHISH):
                    return True
        return False

    def _check_kind_registry(self, module: ModuleSource) -> Iterator[Finding]:
        constants = self._kind_constants(module)
        named: set[str] = set()
        for node in module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "KIND_NAMES"
                    for t in node.targets
                )
                and isinstance(node.value, ast.Dict)
            ):
                named = {
                    key.id for key in node.value.keys if isinstance(key, ast.Name)
                }
        for name, (lineno, _) in sorted(constants.items()):
            if name not in named:
                yield Finding(
                    self.id,
                    module.display,
                    lineno,
                    f"{name} is not registered in KIND_NAMES",
                )
        by_value: dict[int, list[str]] = {}
        for name, (_, value) in constants.items():
            by_value.setdefault(value, []).append(name)
        for value, names in sorted(by_value.items()):
            if len(names) > 1:
                lineno = min(constants[name][0] for name in names)
                yield Finding(
                    self.id,
                    module.display,
                    lineno,
                    f"frame kind value {value} is claimed by {sorted(names)}",
                )

    @staticmethod
    def _kind_constants(module: ModuleSource) -> dict[str, tuple[int, int]]:
        constants: dict[str, tuple[int, int]] = {}
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and _KIND_CONST.match(target.id)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    constants[target.id] = (node.lineno, node.value.value)
        return constants

    def finalize(self, modules: Sequence[ModuleSource]) -> Iterator[Finding]:
        serial = next(
            (m for m in modules if m.display.endswith("repro/serial.py")), None
        )
        if serial is None:
            return
        constants = self._kind_constants(serial)
        values = {value: name for name, (_, value) in constants.items()}

        # The runtime cross-check against the live repro.api registry only
        # makes sense when the scanned file *is* the installed repro.serial
        # (fixture copies get the static checks above, nothing more).
        if not self._is_installed_serial(serial):
            return
        yield from self.registry_findings(serial, constants, values, modules)

    @staticmethod
    def _is_installed_serial(module: ModuleSource) -> bool:
        try:
            import repro.serial as serial_mod

            return Path(serial_mod.__file__ or "").resolve() == module.path.resolve()
        except Exception:
            return False

    def registry_findings(
        self,
        serial: ModuleSource,
        constants: dict[str, tuple[int, int]],
        values: dict[int, str],
        modules: Sequence[ModuleSource],
        registry: dict[str, object] | None = None,
    ) -> Iterator[Finding]:
        """Cross-check KIND_* constants against the repro.api registry.

        ``registry`` (api kind -> entry with a ``serial_kind`` attribute)
        is injectable so tests can exercise the check without mutating the
        real registry.
        """
        if registry is None:
            import repro.api as api

            registry = dict(api._REGISTRY)

        claimed: dict[int, list[str]] = {}
        for api_kind, entry in registry.items():
            serial_kind = getattr(entry, "serial_kind", None)
            if serial_kind is None:
                continue
            claimed.setdefault(int(serial_kind), []).append(api_kind)
            if int(serial_kind) not in values:
                yield Finding(
                    self.id,
                    serial.display,
                    1,
                    f"filter kind {api_kind!r} loads serial kind {serial_kind}, "
                    "which has no KIND_* constant in repro/serial.py",
                )
        for serial_kind, api_kinds in sorted(claimed.items()):
            if len(api_kinds) > 1:
                yield Finding(
                    self.id,
                    serial.display,
                    1,
                    f"serial kind {serial_kind} has {len(api_kinds)} registered "
                    f"readers: {sorted(api_kinds)}",
                )

        # Every declared kind needs exactly one reader: a registry loader,
        # or a store-layer module that references the constant by name.
        referenced: set[str] = set()
        for module in modules:
            if module is serial:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Name) and node.id in constants:
                    referenced.add(node.id)
                elif isinstance(node, ast.Attribute) and node.attr in constants:
                    referenced.add(node.attr)
        for name, (lineno, value) in sorted(constants.items()):
            if value not in claimed and name not in referenced:
                yield Finding(
                    self.id,
                    serial.display,
                    lineno,
                    f"{name} has no reader: not in the repro.api registry and "
                    "never referenced by a scanned module",
                )


# ----------------------------------------------------------------------
# dtype-discipline
# ----------------------------------------------------------------------


class DtypeDisciplineRule(Rule):
    id = "dtype-discipline"
    summary = "np.asarray/np.frombuffer on key/bounds arrays must pin a dtype"
    invariant = (
        "an unpinned conversion silently promotes large uint64 keys to "
        "float64, corrupting them above 2**53 — the kind of bug the "
        "exactness ladder only catches downstream; an explicit dtype= "
        "(normally np.uint64, '<u8' on disk formats) makes the choice "
        "reviewable"
    )
    paths = ()  # every scanned file

    _CONVERTERS = frozenset(
        {"np.asarray", "numpy.asarray", "np.frombuffer", "numpy.frombuffer"}
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name not in self._CONVERTERS:
                continue
            if not self._is_key_path(node):
                continue
            if not any(keyword.arg == "dtype" for keyword in node.keywords):
                yield self.finding(
                    module,
                    node,
                    f"{name}() on a key/bounds argument without an explicit "
                    "dtype= (pin np.uint64)",
                )

    @staticmethod
    def _is_key_path(node: ast.Call) -> bool:
        """True when an argument *value* mentions keys or bounds.

        Identifiers that only appear inside subscript indices/slices
        (``body[keys_end:...]``) do not count — the sliced value, not the
        index arithmetic, is what gets converted.
        """
        fragments: list[str] = []

        def collect(expr: ast.expr) -> None:
            if isinstance(expr, ast.Subscript):
                collect(expr.value)
                return
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    collect(child)
            if isinstance(expr, ast.Name):
                fragments.append(expr.id.lower())
            elif isinstance(expr, ast.Attribute):
                fragments.append(expr.attr.lower())
            elif isinstance(expr, ast.Constant) and isinstance(expr.value, str):
                fragments.append(expr.value.lower())

        for arg in node.args:
            collect(arg)
        return any("key" in f or "bound" in f for f in fragments)


# ----------------------------------------------------------------------
# exception-discipline
# ----------------------------------------------------------------------


class ExceptionDisciplineRule(Rule):
    id = "exception-discipline"
    summary = "no silently swallowed exceptions on worker paths"
    invariant = (
        "a worker thread cannot unwind the main thread, so an error that "
        "is not recorded in last_error (or re-raised) disappears — the "
        "stress driver polls last_error to turn worker crashes into "
        "whole-process kills"
    )
    paths = ("repro/parallel.py", "repro/lsm/compaction.py")

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if all(isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in node.body):
                yield self.finding(
                    module,
                    node,
                    "broad except swallows worker errors: record them in "
                    "last_error or re-raise",
                )

    def _is_broad(self, node: ast.expr | None) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Name):
            return node.id in self._BROAD
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(elt) for elt in node.elts)
        return False


ALL_RULES: tuple[type[Rule], ...] = (
    LockDisciplineRule,
    DurabilityDisciplineRule,
    WalOrderingRule,
    SerialDisciplineRule,
    DtypeDisciplineRule,
    ExceptionDisciplineRule,
)
