"""Command-line front-end: ``repro lint`` / ``python -m repro.analysis``."""

from __future__ import annotations

import argparse
from pathlib import Path


def default_target() -> Path:
    """What to lint when no path is given: the ``repro`` package source.

    Prefers the checkout layout (``src/repro`` under the current
    directory) so suppressions and findings print repo-relative paths;
    falls back to the installed package location.
    """
    checkout = Path("src/repro")
    if checkout.is_dir():
        return checkout
    import repro

    return Path(repro.__file__).parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Run the repo's invariant rules over Python sources.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package source)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its summary and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings with their reasons",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    from .core import Linter
    from .rules import ALL_RULES

    args = build_parser().parse_args(argv)
    rules = [cls() for cls in ALL_RULES]
    if args.list_rules:
        width = max(len(rule.id) for rule in rules)
        for rule in rules:
            print(f"{rule.id:<{width}}  {rule.summary}")
        return 0

    paths = args.paths or [default_target()]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}")
        return 2
    report = Linter(rules).run(paths)
    print(report.render(show_suppressed=args.show_suppressed))
    return 0 if report.ok else 1
