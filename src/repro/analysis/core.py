"""Rule engine for the repo's invariant linter.

The store's safety contracts (maintenance-lock discipline, WAL-before-
memtable ordering, fsync-before-replace durability, ...) are enforced by
small AST rules over ``src/repro``.  This module is the machinery those
rules plug into:

* :class:`ModuleSource` — one parsed file: text, AST, and the per-line
  suppression comments found in it.
* :class:`Rule` — base class; subclasses declare an ``id``, the path
  suffixes they apply to, and implement :meth:`Rule.check` (per file)
  and/or :meth:`Rule.finalize` (once, over all scanned files).
* :class:`Linter` — loads files, runs rules, applies suppressions, and
  renders the report.

Suppression syntax (same line as the finding)::

    something_deliberate()  # repro-lint: ignore[rule-id] -- why it is safe

The ``-- reason`` clause is mandatory: a suppression without a written
reason is itself reported (rule ``lint-suppression``), as is one naming
a rule id the linter does not know.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

__all__ = [
    "Finding",
    "Linter",
    "LintReport",
    "ModuleSource",
    "Rule",
    "Suppression",
]

#: Matches the suppression marker inside a comment token; the reason is
#: required, but its absence is reported by the linter rather than by
#: this regex failing to match.
_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*ignore\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?"
)

#: Rule id for problems with suppression comments themselves.
SUPPRESSION_RULE_ID = "lint-suppression"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a ``file:line``."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro-lint: ignore[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str

    def covers(self, rule_id: str) -> bool:
        return "*" in self.rules or rule_id in self.rules


class ModuleSource:
    """One scanned file: path, source text, AST, suppressions."""

    def __init__(self, path: Path, display: str, text: str) -> None:
        self.path = path
        #: POSIX-style path used in findings and for ``Rule.applies``
        #: suffix matching (e.g. ``src/repro/lsm/db.py``).
        self.display = display
        self.text = text
        self.tree = ast.parse(text, filename=display)
        self.lines = text.splitlines()
        self.suppressions: dict[int, Suppression] = {}
        self.suppression_findings: list[Finding] = []
        self._parse_suppressions()

    def _iter_comments(self) -> Iterator[tuple[int, str]]:
        """(lineno, text) of every real comment token.

        Tokenizing (rather than regex-scanning raw lines) keeps the
        suppression syntax inert inside strings and docstrings — this
        module can document it without suppressing anything.
        """
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.string
        except (tokenize.TokenError, IndentationError):
            return

    def _parse_suppressions(self) -> None:
        for lineno, line in self._iter_comments():
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            reason = (match.group("reason") or "").strip()
            if not rules:
                self.suppression_findings.append(
                    Finding(
                        SUPPRESSION_RULE_ID,
                        self.display,
                        lineno,
                        "suppression names no rule: use ignore[rule-id]",
                    )
                )
                continue
            if not reason:
                self.suppression_findings.append(
                    Finding(
                        SUPPRESSION_RULE_ID,
                        self.display,
                        lineno,
                        "suppression is missing its '-- reason' clause",
                    )
                )
                continue
            self.suppressions[lineno] = Suppression(lineno, rules, reason)

    def suppression_for(self, finding: Finding) -> Suppression | None:
        """The suppression covering ``finding``, if one exists on its line."""
        suppression = self.suppressions.get(finding.line)
        if suppression is not None and suppression.covers(finding.rule):
            return suppression
        return None


class Rule:
    """Base class for one invariant rule.

    Subclasses set :attr:`id`, :attr:`summary`, :attr:`invariant`, and the
    :attr:`paths` suffixes they apply to (empty tuple = every file), then
    implement :meth:`check` and/or :meth:`finalize`.
    """

    id: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""
    #: The safety contract the rule protects (for docs/README).
    invariant: str = ""
    #: Path suffixes the rule applies to; empty means all scanned files.
    paths: tuple[str, ...] = ()

    def applies(self, module: ModuleSource) -> bool:
        return not self.paths or any(
            module.display.endswith(suffix) for suffix in self.paths
        )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Per-file findings.  Default: none."""
        return iter(())

    def finalize(self, modules: Sequence[ModuleSource]) -> Iterator[Finding]:
        """Cross-file findings, called once after every file. Default: none."""
        return iter(())

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(self.id, module.display, getattr(node, "lineno", 1), message)


@dataclasses.dataclass
class LintReport:
    """Outcome of one linter run."""

    findings: list[Finding]
    suppressed: list[tuple[Finding, Suppression]]
    files_scanned: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self, *, show_suppressed: bool = False) -> str:
        lines = [finding.render() for finding in self.findings]
        if show_suppressed:
            lines.extend(
                f"{finding.render()} (suppressed: {suppression.reason})"
                for finding, suppression in self.suppressed
            )
        lines.append(
            f"{len(self.findings)} finding(s), {len(self.suppressed)} suppressed, "
            f"{self.files_scanned} file(s) scanned"
        )
        return "\n".join(lines)


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


class Linter:
    """Run a rule set over files or directories."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)
        self._known_ids = {rule.id for rule in self.rules} | {SUPPRESSION_RULE_ID}

    def load(self, paths: Iterable[Path | str]) -> list[ModuleSource]:
        modules = []
        for path in _iter_python_files(Path(p) for p in paths):
            display = path.as_posix()
            modules.append(ModuleSource(path, display, path.read_text()))
        return modules

    def run(self, paths: Iterable[Path | str]) -> LintReport:
        modules = self.load(paths)
        by_display = {module.display: module for module in modules}
        raw: list[Finding] = []
        for module in modules:
            raw.extend(module.suppression_findings)
            raw.extend(self._unknown_rule_findings(module))
            for rule in self.rules:
                if rule.applies(module):
                    raw.extend(rule.check(module))
        for rule in self.rules:
            raw.extend(rule.finalize(modules))

        findings: list[Finding] = []
        suppressed: list[tuple[Finding, Suppression]] = []
        for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
            module = by_display.get(finding.path)
            suppression = module.suppression_for(finding) if module else None
            if suppression is not None and finding.rule != SUPPRESSION_RULE_ID:
                suppressed.append((finding, suppression))
            else:
                findings.append(finding)
        return LintReport(findings, suppressed, files_scanned=len(modules))

    def _unknown_rule_findings(self, module: ModuleSource) -> Iterator[Finding]:
        for suppression in module.suppressions.values():
            for rule_id in suppression.rules:
                if rule_id != "*" and rule_id not in self._known_ids:
                    yield Finding(
                        SUPPRESSION_RULE_ID,
                        module.display,
                        suppression.line,
                        f"suppression names unknown rule {rule_id!r}",
                    )
