"""Write buffer of the LSM substrate.

RocksDB absorbs writes in a main-memory delta (memtable) and builds the SST
filter only at flush time, when the SST's full key set is known — the system
property that lets *offline* PRFs work inside an LSM at all (the paper's
Problem 2 discussion).  The memtable here is a plain hash map with
sort-on-flush semantics, standing in for RocksDB's HashSkipList: the paper
itself notes that searching the delta "is handled otherwise, e.g. through
its organization", so probe structure inside the memtable is not part of any
reproduced experiment.

Supports values and deletes: a delete writes a *tombstone* that shadows any
older version of the key in lower levels until compaction drops it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MemTable", "TOMBSTONE"]


class _Tombstone:
    """Sentinel marking a deleted key (survives until compaction)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<tombstone>"


TOMBSTONE = _Tombstone()


class MemTable:
    """Unsorted write buffer with sorted flush; newest write wins."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: dict[int, bytes | _Tombstone] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes = b"") -> None:
        self._entries[key] = value

    def put_many(
        self, keys: np.ndarray, values: list[bytes] | None = None
    ) -> None:
        """Bulk :meth:`put`: one dict update for the whole batch.

        ``values`` aligns with ``keys`` when given (later duplicates win,
        exactly like the scalar loop); without it every key stores ``b""``
        — the benchmark-mode write shape, which skips per-key Python
        bookkeeping entirely.
        """
        keys = np.asarray(keys, dtype=np.uint64).tolist()
        if values is None:
            self._entries.update(dict.fromkeys(keys, b""))
            return
        if len(values) != len(keys):
            raise ValueError("values must align with keys")
        self._entries.update(zip(keys, values, strict=True))

    def delete(self, key: int) -> None:
        """Record a tombstone (shadows older versions on lower levels)."""
        self._entries[key] = TOMBSTONE

    def delete_many(self, keys: np.ndarray) -> None:
        """Bulk :meth:`delete`: tombstone every key in one dict update."""
        keys = np.asarray(keys, dtype=np.uint64).tolist()
        self._entries.update(dict.fromkeys(keys, TOMBSTONE))

    # ------------------------------------------------------------------
    def get(self, key: int) -> bytes | _Tombstone | None:
        """Value, TOMBSTONE, or None when the memtable knows nothing."""
        return self._entries.get(key)

    def contains_point(self, key: int) -> bool:
        """Is a *live* version of ``key`` buffered here?"""
        value = self._entries.get(key)
        return value is not None and value is not TOMBSTONE

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Bulk :meth:`get` status: ``(known, live)`` boolean arrays.

        ``known[i]`` — the memtable holds *some* version of ``keys[i]``
        (live or tombstone) and therefore settles the lookup; ``live[i]`` —
        that version is not a tombstone.  Memtables answer exactly, so this
        is plain dict probing, vector-shaped for the DB's batched reads.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        known = np.zeros(keys.size, dtype=bool)
        live = np.zeros(keys.size, dtype=bool)
        if not self._entries:
            return known, live
        entries = self._entries
        for i, key in enumerate(keys.tolist()):
            value = entries.get(key)
            if value is not None:
                known[i] = True
                live[i] = value is not TOMBSTONE
        return known, live

    def contains_range(self, l_key: int, r_key: int) -> bool:
        """Exact live-key range check (memtables answer precisely)."""
        if not self._entries:
            return False
        width = r_key - l_key + 1
        if width <= 64 and width < len(self._entries):
            return any(self.contains_point(k) for k in range(l_key, r_key + 1))
        return any(
            l_key <= key <= r_key and value is not TOMBSTONE
            for key, value in self._entries.items()
        )

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains_range` over ``(n, 2)`` inclusive bounds.

        One sorted snapshot of the live keys serves the whole batch — a
        ``searchsorted`` per query instead of an O(entries) Python scan per
        query, which is what the batched DB scan paths were paying per run
        *and per shard* before this existed.
        """
        bounds = np.asarray(bounds, dtype=np.uint64)
        n = bounds.shape[0]
        result = np.zeros(n, dtype=bool)
        if not self._entries or n == 0:
            return result
        live = np.fromiter(
            (k for k, v in self._entries.items() if v is not TOMBSTONE),
            dtype=np.uint64,
        )
        if live.size == 0:
            return result
        live.sort()
        idx = np.searchsorted(live, bounds[:, 0])
        safe = np.minimum(idx, live.size - 1)
        return (idx < live.size) & (live[safe] <= bounds[:, 1])

    def entries_in_range(self, l_key: int, r_key: int) -> list[tuple[int, object]]:
        """All buffered entries (incl. tombstones) in [l_key, r_key], sorted."""
        return sorted(
            (k, v) for k, v in self._entries.items() if l_key <= k <= r_key
        )

    # ------------------------------------------------------------------
    def drain_sorted(self):
        """Flush: return (keys, values, tombstone flags) sorted; clear.

        ``keys`` is a uint64 array; ``values`` a list aligned with it;
        tombstoned slots carry ``b""`` in values and True in the flag array.
        The sort runs as one NumPy ``argsort`` over the key array (keys are
        dict keys, hence distinct) instead of a Python-level item sort.
        """
        n = len(self._entries)
        keys = np.fromiter(self._entries.keys(), dtype=np.uint64, count=n)
        raw = list(self._entries.values())
        self._entries.clear()
        order = np.argsort(keys)
        keys = keys[order]
        tombstones = np.fromiter(
            (v is TOMBSTONE for v in raw), dtype=bool, count=n
        )[order]
        values = [
            b"" if raw[i] is TOMBSTONE else raw[i] for i in order.tolist()
        ]
        return keys, values, tombstones
