"""Write buffer of the LSM substrate.

RocksDB absorbs writes in a main-memory delta (memtable) and builds the SST
filter only at flush time, when the SST's full key set is known — the system
property that lets *offline* PRFs work inside an LSM at all (the paper's
Problem 2 discussion).  The memtable here is a plain hash map with
sort-on-flush semantics, standing in for RocksDB's HashSkipList: the paper
itself notes that searching the delta "is handled otherwise, e.g. through
its organization", so probe structure inside the memtable is not part of any
reproduced experiment.

Supports values and deletes: a delete writes a *tombstone* that shadows any
older version of the key in lower levels until compaction drops it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MemTable", "TOMBSTONE"]


class _Tombstone:
    """Sentinel marking a deleted key (survives until compaction)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<tombstone>"


TOMBSTONE = _Tombstone()


class MemTable:
    """Unsorted write buffer with sorted flush; newest write wins."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: dict[int, bytes | _Tombstone] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes = b"") -> None:
        self._entries[key] = value

    def delete(self, key: int) -> None:
        """Record a tombstone (shadows older versions on lower levels)."""
        self._entries[key] = TOMBSTONE

    # ------------------------------------------------------------------
    def get(self, key: int) -> bytes | _Tombstone | None:
        """Value, TOMBSTONE, or None when the memtable knows nothing."""
        return self._entries.get(key)

    def contains_point(self, key: int) -> bool:
        """Is a *live* version of ``key`` buffered here?"""
        value = self._entries.get(key)
        return value is not None and value is not TOMBSTONE

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Bulk :meth:`get` status: ``(known, live)`` boolean arrays.

        ``known[i]`` — the memtable holds *some* version of ``keys[i]``
        (live or tombstone) and therefore settles the lookup; ``live[i]`` —
        that version is not a tombstone.  Memtables answer exactly, so this
        is plain dict probing, vector-shaped for the DB's batched reads.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        known = np.zeros(keys.size, dtype=bool)
        live = np.zeros(keys.size, dtype=bool)
        if not self._entries:
            return known, live
        entries = self._entries
        for i, key in enumerate(keys.tolist()):
            value = entries.get(key)
            if value is not None:
                known[i] = True
                live[i] = value is not TOMBSTONE
        return known, live

    def contains_range(self, l_key: int, r_key: int) -> bool:
        """Exact live-key range check (memtables answer precisely)."""
        if not self._entries:
            return False
        width = r_key - l_key + 1
        if width <= 64 and width < len(self._entries):
            return any(self.contains_point(k) for k in range(l_key, r_key + 1))
        return any(
            l_key <= key <= r_key and value is not TOMBSTONE
            for key, value in self._entries.items()
        )

    def entries_in_range(self, l_key: int, r_key: int) -> list[tuple[int, object]]:
        """All buffered entries (incl. tombstones) in [l_key, r_key], sorted."""
        return sorted(
            (k, v) for k, v in self._entries.items() if l_key <= k <= r_key
        )

    # ------------------------------------------------------------------
    def drain_sorted(self):
        """Flush: return (keys, values, tombstone flags) sorted; clear.

        ``keys`` is a uint64 array; ``values`` a list aligned with it;
        tombstoned slots carry ``b""`` in values and True in the flag array.
        """
        items = sorted(self._entries.items())
        self._entries.clear()
        keys = np.fromiter((k for k, _ in items), dtype=np.uint64, count=len(items))
        tombstones = np.fromiter(
            (v is TOMBSTONE for _, v in items), dtype=bool, count=len(items)
        )
        values = [b"" if v is TOMBSTONE else v for _, v in items]
        return keys, values, tombstones
