"""On-disk persistence for the LSM engines — the store behind ``open_store(path=...)``.

The paper's target deployment is bloomRF as the filter-block policy inside a
persistent LSM key-value store (Sect. 2, Sect. 9's RocksDB integration).
This module makes the reproduction's engines durable: a
:class:`~repro.lsm.db.LsmDB` or :class:`~repro.lsm.sharded.ShardedLsmDB`
whose runs, filter blocks, and configuration live in a directory and survive
process restarts with bit-identical probe answers.

On-disk layout (all frames are :mod:`repro.serial` ``BRF1`` frames)::

    <path>/
      STORE.brf            # KIND_STORE manifest: engine, spec(s), geometry,
                           #   run list (unsharded) or shard list (sharded)
      sst-000000.sst       # KIND_SSTABLE frame: keys, tombstones, values
      sst-000000.filter    # the run's filter block (its own filter frame)
      shard-0000/          # sharded engine: one self-contained sub-store
        STORE.brf          #   per shard, laid out exactly like the above
        sst-000000.sst
        sst-000000.filter

On-disk layout, continued: each store directory (and each shard
directory) also holds a ``WAL.brf`` write-ahead log (:mod:`repro.lsm.wal`)
— every ``put``/``delete`` is appended there *before* the memtable
mutates.

Durability contract
-------------------
* ``put``/``delete`` (scalar and batched) — the operation is in the
  write-ahead log (in the kernel, via ``os.write``) before the call
  returns: an **acknowledged write survives process death** (``kill -9``)
  in every ``wal_sync`` mode, and survives power loss once fsynced
  (``wal_sync="always"``: every call; ``"batch"``: every
  ``wal_group_commit`` operations; ``"off"``: at flush only).
* ``flush()`` — drains the memtable into a new run *and* makes every run
  durable: new ``.sst``/``.filter`` files are written, then the manifest
  is updated (an appended run delta when the run set only grew, an atomic
  write-temp + ``os.replace`` rewrite otherwise), then the write-ahead
  log is rotated to a new epoch and unreferenced run files are pruned.
  When ``flush()`` returns, a reopen reproduces the store exactly.
* ``close()`` (and the context manager) — ``flush()`` + release resources.
* Reopening after a crash replays the write-ahead log into the memtable:
  a torn record at the log's tail (the expected artifact of dying
  mid-append) is truncated silently, a log left behind by a crash between
  the manifest update and the log rotation (its records already live in
  runs) is discarded silently, and any other damage raises
  :class:`~repro.serial.SerialError` naming the file and offset.

Every reader-side failure — truncated or bit-flipped manifest, version
skew, a missing shard directory or run file, an SST/filter frame of the
wrong kind, a run whose contents contradict the manifest — raises
:class:`~repro.serial.SerialError` naming the offending file; a damaged
store never silently mis-answers.  Filter blocks are *deserialized* on
reopen (never rebuilt from keys), so probe answers and their
:class:`~repro.lsm.iostats.IOStats` accounting match the never-closed
store bit for bit; deserialization time lands in the
``deserialization_s`` bucket (the Fig. 12.G cost the paper charges for
filter-block loads).

Durability contract (machine-checked by ``repro lint``): raw
``os.replace``/``os.write``/``open(..., "w")`` calls are confined to the
approved helpers (``_atomic_write`` and the WAL append path), so every
durable byte gets the fsync-before-replace ordering the crash suites
verify (``durability-discipline``); in the ``Persistent*`` engines a
memtable mutation must be preceded by a WAL append (``wal-ordering``).
"""

from __future__ import annotations

import inspect
import os
import time
import zlib
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.api import FilterSpec
from repro.lsm.blocks import (
    DEFAULT_CACHE_BYTES,
    BlockCache,
    BlockedPayload,
    SlicedValues,
    compress_payload,
    decompress_payload,
    normalize_compression,
    require_codec,
)
from repro.lsm.compaction import coerce_compaction, compaction_to_dict
from repro.lsm.db import LsmDB
from repro.lsm.filter_policy import SpecPolicy, handle_from_bytes
from repro.lsm.sharded import ShardedLsmDB
from repro.lsm.sstable import SSTable
from repro.lsm.wal import (
    OP_DELETE,
    WAL_NAME,
    WriteAheadLog,
    read_wal,
)
from repro.serial import (
    FORMAT_VERSION_BLOCKS,
    KIND_SSTABLE,
    KIND_STORE,
    SerialError,
    map_frame,
    pack_frame,
    peek_kind,
    unpack_frame,
    unpack_frame_prefix,
)

__all__ = [
    "MANIFEST_NAME",
    "PersistentLsmDB",
    "PersistentShardedLsmDB",
    "open_persistent_store",
    "read_store_manifest",
]

MANIFEST_NAME = "STORE.brf"
_SST_SUFFIX = ".sst"
_FILTER_SUFFIX = ".filter"


# ----------------------------------------------------------------------
# frame helpers
# ----------------------------------------------------------------------
def _atomic_write(path: Path, data: bytes) -> None:
    """Durable write-temp + rename: no crash leaves a half-written frame.

    The temp file is fsynced before the rename and the directory after,
    so the replace is not persisted ahead of the data it points at — the
    ordering the durability contract (crash mid-flush reopens to the last
    durable state) relies on across power loss, not just process death.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_store_manifest(directory: str | Path) -> dict:
    """The manifest header of the store at ``directory``.

    Raises :class:`SerialError` naming the manifest file when it is
    missing, truncated, bit-flipped, of a stale format version, or not a
    store-manifest frame at all.
    """
    header = _read_manifest_file(Path(directory))
    header.pop("_valid_bytes", None)
    return header


def _read_manifest_file(directory: Path) -> dict:
    """Parse ``STORE.brf``: one base frame plus appended run deltas.

    ``flush()`` grows the run set by prepending, so instead of rewriting
    the whole manifest it appends a small ``{"delta": 1, "new_runs": ...}``
    frame (see :meth:`PersistentLsmDB.sync`).  This reader folds the
    deltas back into the base header, newest runs first.  The *base* frame
    must parse completely (any damage raises).  A delta cut short at the
    file's tail is the artifact of a crash mid-append and is ignored —
    safely, because every delta also advances the WAL epoch, so a log
    whose records were dropped that way replays on reopen, and a manifest
    truncated after the fact fails the epoch cross-check loudly.  A
    complete-but-damaged delta raises naming the file and offset.

    The returned header carries the parsed byte count under
    ``"_valid_bytes"`` (consumed by the store, stripped by
    :func:`read_store_manifest`).
    """
    path = directory / MANIFEST_NAME
    if not path.is_file():
        raise SerialError(
            f"{directory} holds no store manifest ({MANIFEST_NAME} is missing)"
        )
    data = path.read_bytes()
    try:
        header, payloads, cursor = unpack_frame_prefix(
            data, 0, expect_kind=KIND_STORE
        )
    except SerialError as exc:
        raise SerialError(f"corrupt store manifest {path}: {exc}") from exc
    if payloads:
        raise SerialError(
            f"corrupt store manifest {path}: carries {len(payloads)} "
            "payloads, expected 0"
        )
    while cursor < len(data):
        try:
            delta, delta_payloads, end = unpack_frame_prefix(
                data, cursor, expect_kind=KIND_STORE
            )
        except SerialError as exc:
            if "truncated" in str(exc):
                break  # torn tail of an appended delta (crash mid-append)
            raise SerialError(
                f"corrupt store manifest {path}: bad run delta at byte "
                f"offset {cursor}: {exc}"
            ) from exc
        if delta_payloads or delta.get("delta") != 1:
            raise SerialError(
                f"corrupt store manifest {path}: appended frame at byte "
                f"offset {cursor} is not a run delta"
            )
        header["runs"] = list(delta.get("new_runs", [])) + list(
            header.get("runs", [])
        )
        for field in ("next_file_id", "wal_epoch"):
            if field in delta:
                header[field] = delta[field]
        cursor = end
    header["_valid_bytes"] = cursor
    return header


def _payload_crc(payloads: list[bytes]) -> int:
    crc = 0
    for payload in payloads:
        crc = zlib.crc32(payload, crc)
    return crc


def _manifest_field(mapping: dict, name: str, where) -> object:
    """A required manifest/run-entry field, or :class:`SerialError`.

    A frame-valid manifest whose JSON header lost a field must still fail
    as a corrupt *store* artifact (naming the file), not as a bare
    :class:`KeyError` leaking out of the reader.
    """
    try:
        return mapping[name]
    except (KeyError, TypeError):
        raise SerialError(
            f"corrupt store manifest {where}: missing field {name!r}"
        ) from None


def _spec_from_manifest(data, where) -> FilterSpec:
    """A persisted :class:`FilterSpec`, or :class:`SerialError`."""
    try:
        return FilterSpec.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerialError(
            f"corrupt store manifest {where}: bad filter spec ({exc})"
        ) from None


def _pack_sstable(sst: SSTable, compression: dict | None = None) -> bytes:
    """One immutable run as a KIND_SSTABLE frame: keys, tombstones, values.

    Unlike filter frames (approximate structures, deliberately
    checksum-free in :mod:`repro.serial`), SST payloads are *exact* data:
    a flipped bit would change answers instead of just moving a false
    positive.  The header therefore carries a CRC32 of the payloads —
    the RocksDB move of checksumming data blocks while filter damage
    stays survivable.

    With ``compression`` (the store geometry's canonical
    ``{"codec", "block_bytes"}`` dict) each payload is split into
    fixed-size blocks and compressed independently (version-2 frame,
    see :mod:`repro.lsm.blocks`): the header additionally records the
    codec, block size, per-payload raw lengths, and per-payload block
    tables, and the CRC32 covers the *stored* (compressed) bytes.
    Without it the frame is bit-identical to what previous releases
    wrote.
    """
    payloads = [
        np.ascontiguousarray(sst.keys, dtype="<u8").tobytes(),
        np.packbits(sst.tombstones).tobytes(),
    ]
    header = {
        "num_keys": int(sst.keys.size),
        "has_values": sst.values is not None,
    }
    if sst.values is not None:
        lengths = np.array([len(v) for v in sst.values], dtype="<u8")
        payloads.append(lengths.tobytes())
        payloads.append(b"".join(sst.values))
    if compression is not None:
        codec = compression["codec"]
        block_bytes = compression["block_bytes"]
        raw_lens, tables, compressed = [], [], []
        for payload in payloads:
            comp, table = compress_payload(payload, codec, block_bytes)
            raw_lens.append(len(payload))
            tables.append(table)
            compressed.append(comp)
        header["codec"] = codec
        header["block_bytes"] = block_bytes
        header["raw_lens"] = raw_lens
        header["blocks"] = tables
        header["crc32"] = _payload_crc(compressed)
        return pack_frame(
            KIND_SSTABLE, header, *compressed, version=FORMAT_VERSION_BLOCKS
        )
    header["crc32"] = _payload_crc(payloads)
    return pack_frame(KIND_SSTABLE, header, *payloads)


def _unpack_sstable(
    data: bytes,
    name: str,
    *,
    expected_codec: str | None = None,
    cache: BlockCache | None = None,
    stats=None,
):
    """Parse a KIND_SSTABLE frame back into ``(keys, values, tombstones)``.

    Every internal inconsistency raises :class:`SerialError` naming the
    offending file — a truncated, swapped, or cross-wired run file fails
    loudly instead of reconstructing a different key set.
    """
    try:
        header, payloads = unpack_frame(data, expect_kind=KIND_SSTABLE)
    except SerialError as exc:
        raise SerialError(f"corrupt SST file {name}: {exc}") from exc
    return _decode_sstable(
        header,
        payloads,
        name,
        expected_codec=expected_codec,
        cache=cache,
        stats=stats,
        verify_crc=True,
        zero_copy=False,
    )


def _map_sstable(
    path: Path,
    name: str,
    *,
    expected_codec: str | None = None,
    cache: BlockCache | None = None,
    stats=None,
):
    """The mmap counterpart of :func:`_unpack_sstable` — O(header) work.

    Keys, tombstones, and the value blob come back as views over the
    mapping (:func:`repro.serial.map_frame`), so bytes fault in only when
    probed.  The whole-frame payload CRC is deliberately *not* verified —
    that would read every page and turn reopen back into O(bytes); frame
    structure is still fully validated, and version-2 (compressed) frames
    keep per-block CRCs that are checked on first access to each block.
    """
    try:
        frame = map_frame(path, expect_kind=KIND_SSTABLE)
    except SerialError as exc:
        raise SerialError(f"corrupt SST file {name}: {exc}") from exc
    return _decode_sstable(
        frame.header,
        frame.payloads,
        name,
        expected_codec=expected_codec,
        cache=cache,
        stats=stats,
        verify_crc=False,
        zero_copy=True,
    )


def _decode_sstable(
    header: dict,
    payloads: list,
    name: str,
    *,
    expected_codec: str | None,
    cache: BlockCache | None,
    stats,
    verify_crc: bool,
    zero_copy: bool,
):
    """Shared v1/v2 payload decode behind the eager and mmap readers."""
    has_values = bool(header.get("has_values", False))
    expected_payloads = 4 if has_values else 2
    if len(payloads) != expected_payloads:
        raise SerialError(
            f"corrupt SST file {name}: carries {len(payloads)} payloads, "
            f"expected {expected_payloads}"
        )
    codec = header.get("codec")
    if codec != expected_codec:
        raise SerialError(
            f"corrupt SST file {name}: frame compression codec {codec!r} "
            f"does not match the store manifest's {expected_codec!r} (the "
            "run belongs to a differently-configured store)"
        )
    if verify_crc and _payload_crc(payloads) != int(header.get("crc32", -1)):
        raise SerialError(
            f"corrupt SST file {name}: payload checksum mismatch (the run "
            "data was altered after it was written)"
        )
    num_keys = int(header.get("num_keys", -1))
    tables = raw_lens = block_bytes = None
    if codec is not None:
        block_bytes = int(header.get("block_bytes", 0))
        raw_lens = header.get("raw_lens")
        tables = header.get("blocks")
        for field in (raw_lens, tables):
            if not isinstance(field, list) or len(field) != len(payloads):
                raise SerialError(
                    f"corrupt SST file {name}: truncated block table "
                    f"(expected {len(payloads)} per-payload entries)"
                )

        def _raw(index: int) -> bytes:
            # Keys, tombstones, and value lengths are needed whole (sorted
            # order, fences, offsets), so they decompress eagerly — with
            # every block CRC-checked; only the value blob stays lazy.
            return decompress_payload(
                payloads[index],
                tables[index],
                int(raw_lens[index]),
                block_bytes,
                codec,
                context=f"corrupt SST file {name}: payload {index}",
            )

        keys_bytes, tomb_bytes = _raw(0), _raw(1)
    else:
        keys_bytes, tomb_bytes = payloads[0], payloads[1]
    keys = np.frombuffer(keys_bytes, dtype="<u8")
    if not zero_copy or codec is not None:
        keys = keys.astype(np.uint64)
    if keys.size != num_keys:
        raise SerialError(
            f"corrupt SST file {name}: holds {keys.size} keys but its "
            f"header records {num_keys}"
        )
    if len(tomb_bytes) != (num_keys + 7) // 8:
        raise SerialError(
            f"corrupt SST file {name}: tombstone bitmap is "
            f"{len(tomb_bytes)} bytes for {num_keys} keys"
        )
    tombstones = np.unpackbits(
        np.frombuffer(tomb_bytes, dtype=np.uint8), count=num_keys
    ).astype(bool)
    values = None
    if has_values:
        if codec is not None:
            lengths = np.frombuffer(_raw(2), dtype="<u8")
            blob_len = int(raw_lens[3])
        else:
            lengths = np.frombuffer(payloads[2], dtype="<u8")
            blob_len = len(payloads[3])
        if lengths.size != num_keys or int(lengths.sum()) != blob_len:
            raise SerialError(
                f"corrupt SST file {name}: value index does not match the "
                "value blob"
            )
        offsets = np.zeros(num_keys + 1, dtype=np.int64)
        np.cumsum(lengths.astype(np.int64), out=offsets[1:])
        if codec is not None:
            blob = BlockedPayload(
                payloads[3],
                tables[3],
                blob_len,
                block_bytes,
                codec,
                context=f"corrupt SST file {name}: payload 3",
                cache=cache,
                cache_key=(name, 3),
                stats=stats,
            )
            values = SlicedValues(blob, offsets)
        elif zero_copy:
            values = SlicedValues(payloads[3], offsets)
        else:
            blob = payloads[3]
            values = [
                blob[offsets[i] : offsets[i + 1]] for i in range(num_keys)
            ]
    return keys, values, tombstones


def _spec_of(filter) -> FilterSpec:
    """The persistable :class:`FilterSpec` behind a filter argument.

    On-disk stores must rebuild their policy from the manifest alone, so
    only spec-driven filters (a :class:`FilterSpec`, a
    :class:`~repro.lsm.filter_policy.SpecPolicy`, or None) are accepted.
    """
    if filter is None:
        return FilterSpec("none")
    if isinstance(filter, FilterSpec):
        return filter
    spec = getattr(filter, "spec", None)
    if isinstance(spec, FilterSpec):
        return spec
    raise ValueError(
        "on-disk stores need a FilterSpec-driven filter (a FilterSpec, a "
        f"SpecPolicy, or None) so reopening can rebuild the policy; got "
        f"{type(filter).__name__}"
    )


def _shard_dir_name(index: int) -> str:
    return f"shard-{index:04d}"


# ----------------------------------------------------------------------
# the unsharded persistent engine
# ----------------------------------------------------------------------
class PersistentLsmDB(LsmDB):
    """An :class:`LsmDB` whose runs and filter blocks live in a directory.

    Opening a directory that already holds a store manifest *reopens* it —
    the persisted spec and geometry win, runs are reconstructed from their
    ``.sst`` frames, and filter blocks are deserialized (never rebuilt).
    Otherwise the directory is initialized as a fresh store and the
    manifest written immediately, so an empty store reopens too.
    """

    def __init__(
        self,
        directory: str | Path,
        spec: FilterSpec | None = None,
        *,
        memtable_capacity: int = 1 << 16,
        value_bytes: int = 512,
        block_bytes: int = 4096,
        device=None,
        store_values: bool = False,
        wal_sync: str = "batch",
        wal_group_commit: int = 1024,
        compaction=None,
        compaction_scheduler=None,
        compression=None,
        mmap: bool = False,
        block_cache_bytes: int | None = None,
        _manifest: dict | None = None,
        _block_cache: BlockCache | None = None,
    ) -> None:
        directory = Path(directory)
        manifest = _manifest
        if manifest is None and (directory / MANIFEST_NAME).is_file():
            manifest = _read_manifest_file(directory)
        if manifest is not None:
            engine = manifest.get("engine")
            if engine != "lsm":
                raise SerialError(
                    f"store at {directory} holds a {engine!r} engine, not "
                    "an unsharded 'lsm' store"
                )
            where = directory / MANIFEST_NAME
            stored_spec = _spec_from_manifest(
                _manifest_field(manifest, "spec", where), where
            )
            if spec is not None and spec != stored_spec:
                raise ValueError(
                    f"store at {directory} was created with {stored_spec!r}; "
                    f"reopening with {spec!r} would change probe answers"
                )
            spec = stored_spec
            geometry = _manifest_field(manifest, "geometry", where)
            memtable_capacity = int(
                _manifest_field(geometry, "memtable_capacity", where)
            )
            value_bytes = int(_manifest_field(geometry, "value_bytes", where))
            block_bytes = int(_manifest_field(geometry, "block_bytes", where))
            store_values = bool(
                _manifest_field(geometry, "store_values", where)
            )
            wal_sync = str(_manifest_field(geometry, "wal_sync", where))
            # Stores persisted before the compressed read tier have no
            # compression field: .get reads them as uncompressed.
            compression = geometry.get("compression")
            wal_seal = str(_manifest_field(manifest, "wal_seal", where))
            wal_epoch = int(_manifest_field(manifest, "wal_epoch", where))
            # Manifests written before the compaction subsystem carry no
            # policy field: default to manual via .get (never a KeyError),
            # unless the caller (e.g. the sharded parent, whose top
            # manifest is authoritative) passed a config explicitly.
            stored_compaction = geometry.get("compaction")
            if stored_compaction is not None:
                compaction = stored_compaction
        else:
            if any(directory.glob("sst-*")):
                raise SerialError(
                    f"{directory} holds run files but no store manifest "
                    f"({MANIFEST_NAME}); refusing to initialize a fresh "
                    "store over them — restore the manifest or move the "
                    "files away"
                )
            if spec is None:
                spec = FilterSpec("none")
            wal_seal = os.urandom(12).hex()
            wal_epoch = 0
        super().__init__(
            policy=SpecPolicy(spec),
            memtable_capacity=memtable_capacity,
            value_bytes=value_bytes,
            block_bytes=block_bytes,
            device=device,
            store_values=store_values,
            compaction=compaction,
            compaction_scheduler=compaction_scheduler,
        )
        self.directory = directory
        self.spec = spec
        self._compression = normalize_compression(compression)
        if self._compression is not None:
            # Fail at open, not at first flush, when the codec is absent
            # (zstd without the optional zstandard package).
            require_codec(self._compression["codec"])
        self._use_mmap = bool(mmap)
        self._block_cache = (
            _block_cache
            if _block_cache is not None
            else BlockCache(
                DEFAULT_CACHE_BYTES
                if block_cache_bytes is None
                else block_cache_bytes
            )
        )
        self._run_files: dict[SSTable, str] = {}
        self._next_file_id = 0
        # The run-name list the on-disk manifest currently records (None =
        # no manifest yet): sync() short-circuits when it still matches.
        self._synced_runs: list[str] | None = None
        self._synced_epoch: int | None = None
        self._manifest_valid_bytes = 0
        self._compacting = False
        self._wal: WriteAheadLog | None = None
        self._wal_seal = wal_seal
        self._wal_epoch = wal_epoch
        self._wal_sync = wal_sync
        self._wal_group_commit = wal_group_commit
        self.last_recovery = {
            "replayed_records": 0,
            "replayed_ops": 0,
            "discarded_stale_records": 0,
            "recovered_torn_tail": False,
        }
        if manifest is not None:
            self._manifest_valid_bytes = int(
                manifest.get("_valid_bytes", 0)
            )
            self._load_runs(manifest)
            self._synced_epoch = wal_epoch
            self._recover_wal()
        else:
            directory.mkdir(parents=True, exist_ok=True)
            # The log is created *before* the manifest: a crash between
            # the two leaves a directory with no manifest, which the next
            # open initializes freshly (replacing the orphan log); a
            # manifest without its log, by contrast, reopens loudly.
            self._wal = WriteAheadLog.create(
                directory / WAL_NAME,
                seal=wal_seal,
                sync=wal_sync,
                group_commit=wal_group_commit,
            )
            self.sync()

    # ------------------------------------------------------------------
    # reopen path
    # ------------------------------------------------------------------
    def _load_runs(self, manifest: dict) -> None:
        where = self.directory / MANIFEST_NAME
        self._next_file_id = int(manifest.get("next_file_id", 0))
        names = []
        for entry in manifest.get("runs", []):
            sst = self._load_sstable(entry)
            self.sstables.append(sst)
            name = _manifest_field(entry, "file", where)
            self._run_files[sst] = name
            names.append(name)
        self._synced_runs = names

    def _load_sstable(self, entry: dict) -> SSTable:
        where = self.directory / MANIFEST_NAME
        name = _manifest_field(entry, "file", where)
        num_keys = int(_manifest_field(entry, "num_keys", where))
        filter_kind = int(_manifest_field(entry, "filter_kind", where))
        filter_crc = int(_manifest_field(entry, "filter_crc32", where))
        sst_path = self.directory / (name + _SST_SUFFIX)
        filter_path = self.directory / (name + _FILTER_SUFFIX)
        for path in (sst_path, filter_path):
            if not path.is_file():
                raise SerialError(
                    f"store at {self.directory} is missing run file "
                    f"{path.name}"
                )
        codec = self._compression["codec"] if self._compression else None
        reader_kw = {
            "expected_codec": codec,
            "cache": self._block_cache,
            "stats": self.stats,
        }
        if self._use_mmap:
            keys, values, tombstones = _map_sstable(
                sst_path, str(sst_path), **reader_kw
            )
        else:
            keys, values, tombstones = _unpack_sstable(
                sst_path.read_bytes(), str(sst_path), **reader_kw
            )
        if keys.size != num_keys:
            raise SerialError(
                f"corrupt SST file {sst_path}: holds {keys.size} keys but "
                f"the store manifest records {num_keys}"
            )
        if self._use_mmap:
            # Zero-copy filter load: the frame is mapped, its structure
            # validated, and the bit-array words become read-only views —
            # a probe faults in only the pages test_bits touches.  The
            # manifest's whole-blob CRC is *not* verified here (it would
            # read every page); the eager path still checks it, and frame
            # structure/kind damage fails loudly either way.
            start = time.perf_counter()
            try:
                frame = map_frame(filter_path)
                if frame.kind != filter_kind:
                    raise SerialError(
                        f"frame kind {frame.kind} does not match "
                        f"the manifest's kind {filter_kind}"
                    )
                handle = handle_from_bytes(frame.view)
            except SerialError as exc:
                raise SerialError(
                    f"corrupt filter block {filter_path}: {exc}"
                ) from exc
            filter_blob = frame.view
        else:
            filter_blob = filter_path.read_bytes()
            start = time.perf_counter()
            try:
                if peek_kind(filter_blob) != filter_kind:
                    raise SerialError(
                        f"frame kind {peek_kind(filter_blob)} does not match "
                        f"the manifest's kind {filter_kind}"
                    )
                # The manifest pins each run's filter blob by checksum, so a
                # same-kind blob swapped in from another run fails here
                # instead of probing false negatives at query time.
                if zlib.crc32(filter_blob) != filter_crc:
                    raise SerialError(
                        "blob checksum does not match the manifest (the block "
                        "was altered or belongs to a different run)"
                    )
                handle = handle_from_bytes(filter_blob)
            except SerialError as exc:
                raise SerialError(
                    f"corrupt filter block {filter_path}: {exc}"
                ) from exc
        self.stats.deserialization_s += time.perf_counter() - start
        try:
            return SSTable(
                keys,
                policy=self.policy,
                values=values,
                tombstones=tombstones,
                value_bytes=self.value_bytes,
                block_bytes=self.block_bytes,
                prebuilt_filter=handle,
                prebuilt_block=filter_blob,
            )
        except ValueError as exc:
            raise SerialError(f"corrupt SST file {sst_path}: {exc}") from exc

    def _recover_wal(self) -> None:
        """Adopt the directory's write-ahead log on reopen.

        A log at the manifest's epoch holds writes acknowledged after the
        last flush — replay them into the memtable (then flush if it
        replays full).  A log at an *older* epoch is the crash window
        between the manifest update and the log rotation: its records are
        already durable in runs, so it is discarded (never resurrected).
        A *newer* log means the manifest lost a run delta after the fact —
        raise.  Seal mismatches (a log from another store or shard) and
        non-tail corruption raise; a torn tail is truncated silently.
        """
        wal_path = self.directory / WAL_NAME
        where = self.directory / MANIFEST_NAME
        if not wal_path.is_file():
            raise SerialError(
                f"store at {self.directory} is missing its write-ahead log "
                f"({WAL_NAME}); acknowledged writes may be unrecoverable — "
                "restore the log or accept the loss by recreating the store"
            )
        header, records, valid_end, torn = read_wal(wal_path)
        seal = header.get("seal")
        epoch = header.get("epoch")
        if not isinstance(seal, str) or not isinstance(epoch, int):
            raise SerialError(
                f"corrupt write-ahead log {wal_path}: header is missing "
                "its seal/epoch fields"
            )
        if seal != self._wal_seal:
            raise SerialError(
                f"write-ahead log {wal_path} belongs to a different store "
                f"(log seal {seal!r} does not match the manifest's "
                f"{self._wal_seal!r}); the log files were swapped or "
                "restored across stores"
            )
        if epoch > self._wal_epoch:
            raise SerialError(
                f"the store manifest {where} is stale or truncated: it "
                f"records WAL epoch {self._wal_epoch} but the write-ahead "
                f"log is already at epoch {epoch}"
            )
        if epoch < self._wal_epoch:
            self._wal = WriteAheadLog.create(
                wal_path,
                seal=self._wal_seal,
                epoch=self._wal_epoch,
                sync=self._wal_sync,
                group_commit=self._wal_group_commit,
            )
            self.last_recovery = {
                "replayed_records": 0,
                "replayed_ops": 0,
                "discarded_stale_records": len(records),
                "recovered_torn_tail": torn,
            }
            return
        ops = 0
        for record in records:
            if record.op == OP_DELETE:
                self.memtable.delete_many(record.keys)  # repro-lint: ignore[wal-ordering] -- WAL replay: the record being applied IS the log entry
            else:
                self.memtable.put_many(record.keys, record.values)  # repro-lint: ignore[wal-ordering] -- WAL replay: the record being applied IS the log entry
            ops += int(record.keys.size)
        self._wal = WriteAheadLog.attach(
            wal_path,
            seal=self._wal_seal,
            epoch=epoch,
            valid_end=valid_end,
            num_records=len(records),
            torn=torn,
            sync=self._wal_sync,
            group_commit=self._wal_group_commit,
        )
        self.last_recovery = {
            "replayed_records": len(records),
            "replayed_ops": ops,
            "discarded_stale_records": 0,
            "recovered_torn_tail": torn,
        }
        if len(self.memtable) >= self.memtable.capacity:
            self.flush()

    # ------------------------------------------------------------------
    # the write path (log first, then the memtable)
    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes = b"") -> None:
        """Insert one key, durably: logged before the memtable mutates."""
        self._wal.append_put(
            np.array([key], dtype=np.uint64), [value] if value else None
        )
        super().put(key, value)
        self._wal.commit()

    def delete(self, key: int) -> None:
        """Tombstone one key, durably: logged before the memtable mutates."""
        self._wal.append_delete(np.array([key], dtype=np.uint64))
        super().delete(key)
        self._wal.commit()

    def put_many(
        self, keys: np.ndarray, values: list[bytes] | None = None
    ) -> None:
        """Bulk :meth:`put` with per-chunk logging.

        Mirrors :meth:`LsmDB.put_many`'s chunk loop, logging each chunk
        just before it enters the memtable — *not* the whole batch up
        front, because an interior flush rotates (truncates) the log and
        would drop the still-unapplied suffix of an up-front record.  A
        crash mid-batch therefore recovers exactly the chunks that reached
        the kernel: a prefix of the batch, never a gap.
        """
        keys = self._validated_keys(keys)
        if values is not None and len(values) != keys.size:
            raise ValueError("values must align with keys")
        n = keys.size
        start = 0
        while start < n:
            room = self.memtable.capacity - len(self.memtable)
            if room <= 0:
                self.flush()
                continue
            stop = min(start + room, n)
            chunk_values = (
                values[start:stop] if values is not None else None
            )
            self._wal.append_put(keys[start:stop], chunk_values)
            self.memtable.put_many(keys[start:stop], chunk_values)
            start = stop
            if self.memtable.is_full:
                self.flush()
        self._wal.commit()

    def delete_many(self, keys: np.ndarray) -> None:
        """Bulk :meth:`delete` with per-chunk logging (see :meth:`put_many`)."""
        keys = self._validated_keys(keys)
        n = keys.size
        start = 0
        while start < n:
            room = self.memtable.capacity - len(self.memtable)
            if room <= 0:
                self.flush()
                continue
            stop = min(start + room, n)
            self._wal.append_delete(keys[start:stop])
            self.memtable.delete_many(keys[start:stop])
            start = stop
            if self.memtable.is_full:
                self.flush()
        self._wal.commit()

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def commit_barrier(self) -> None:
        """Block until every acknowledged write is covered by an fsync.

        The ``wal_sync="batch"`` ack contract: :meth:`put` returning only
        means the record reached the kernel (survives ``kill -9``); this
        barrier additionally waits for — or leads — the covering group
        commit, after which the write survives power loss too.  The
        serving layer acks a whole write group behind one barrier call.
        """
        if self._wal is not None:
            self._wal.commit_barrier()

    def sync(self) -> None:
        """Make the current run set durable.

        Unpersisted runs get ``.sst``/``.filter`` files first, then the
        manifest is updated, then run files no longer referenced (dropped
        by compaction) are pruned — in that order, so a crash at any point
        leaves a reopenable store.  When the run set only *grew* (the
        flush path, which also advances the WAL epoch) the update is an
        appended run-delta frame — one small ``os.write`` + fsync, keeping
        flush O(1) in the run count; anything else (compaction removing
        runs, a previous torn delta tail) atomically rewrites the whole
        manifest.  When the run set and epoch already match the manifest
        (e.g. a read-only open/close cycle) nothing is written at all, so
        pure reads never touch the directory.
        """
        with self._maintenance_lock:
            self._sync_locked()

    def _sync_locked(self) -> None:
        runs = []
        for sst in self.sstables:
            name = self._run_files.get(sst)
            if name is None:
                name = f"sst-{self._next_file_id:06d}"
                self._next_file_id += 1
                _atomic_write(
                    self.directory / (name + _SST_SUFFIX),
                    _pack_sstable(sst, self._compression),
                )
                _atomic_write(
                    self.directory / (name + _FILTER_SUFFIX), sst.filter_block
                )
                self._run_files[sst] = name
            runs.append(
                {
                    "file": name,
                    "num_keys": sst.num_keys,
                    "filter_kind": peek_kind(sst.filter_block),
                    "filter_crc32": zlib.crc32(sst.filter_block),
                }
            )
        # Drop mappings for runs compaction removed (also releases the
        # strong references keeping their SSTable objects alive).
        self._run_files = {
            sst: self._run_files[sst] for sst in self.sstables
        }
        names = [run["file"] for run in runs]
        if names == self._synced_runs and self._wal_epoch == self._synced_epoch:
            return
        path = self.directory / MANIFEST_NAME
        # A delta is appended only when the old run list survives as a
        # suffix of the new one (runs are newest-first; flush prepends)
        # AND this sync advances the WAL epoch — that pairing is what lets
        # the reader ignore a torn delta: a dropped delta means a dropped
        # epoch bump, so either the log still holds the records (crash
        # before rotation: replay) or it is ahead of the manifest
        # (post-hoc damage: loud failure).  The file-size check rewrites
        # over any torn garbage a previous crash left at the tail.
        grew = (
            self._synced_runs is not None
            and self._wal_epoch != self._synced_epoch
            and len(names) > len(self._synced_runs)
            and names[len(names) - len(self._synced_runs) :]
            == self._synced_runs
        )
        if (
            grew
            and path.is_file()
            and path.stat().st_size == self._manifest_valid_bytes
        ):
            delta = pack_frame(
                KIND_STORE,
                {
                    "delta": 1,
                    "new_runs": runs[: len(names) - len(self._synced_runs)],
                    "next_file_id": self._next_file_id,
                    "wal_epoch": self._wal_epoch,
                },
            )
            fd = os.open(path, os.O_WRONLY | os.O_APPEND)
            try:
                os.write(fd, delta)  # repro-lint: ignore[durability-discipline] -- O_APPEND manifest run-delta: fsync'd below before the flush is acknowledged
                os.fsync(fd)
            finally:
                os.close(fd)
            self._manifest_valid_bytes += len(delta)
        else:
            blob = pack_frame(
                KIND_STORE,
                {
                    "engine": "lsm",
                    "spec": self.spec.to_dict(),
                    "geometry": {
                        "memtable_capacity": self.memtable.capacity,
                        "value_bytes": self.value_bytes,
                        "block_bytes": self.block_bytes,
                        "store_values": self.store_values,
                        "wal_sync": self._wal_sync,
                        "compaction": compaction_to_dict(self.compaction),
                        "compression": self._compression,
                    },
                    "runs": runs,
                    "next_file_id": self._next_file_id,
                    "wal_seal": self._wal_seal,
                    "wal_epoch": self._wal_epoch,
                },
            )
            _atomic_write(path, blob)
            self._manifest_valid_bytes = len(blob)
        self._synced_runs = names
        self._synced_epoch = self._wal_epoch
        self._prune_orphans(set(names))

    def _prune_orphans(self, live: set[str]) -> None:
        # Unlinking is safe under live mmap views: POSIX keeps mapped
        # pages of an unlinked file valid until the last view dies, and
        # sealed runs are never rewritten in place — new data always gets
        # a new file name.
        for path in self.directory.glob("sst-*"):
            if path.name.endswith(".tmp"):
                path.unlink(missing_ok=True)
                continue
            for suffix in (_SST_SUFFIX, _FILTER_SUFFIX):
                if path.name.endswith(suffix):
                    if path.name[: -len(suffix)] not in live:
                        if suffix == _SST_SUFFIX:
                            self._block_cache.drop_file(str(path))
                        path.unlink(missing_ok=True)

    def flush(self) -> None:
        """Drain the memtable into a new run and make the store durable.

        The maintenance lock is held across the drain *and* the
        sync/rotate, so a background merge commit can never interleave
        between them (the run files and manifest always describe one
        consistent run set).
        """
        with self._maintenance_lock:
            super().flush()
            if not self._compacting:
                self._sync_and_rotate()

    def _sync_and_rotate(self) -> None:
        """Persist the run set, then truncate the now-redundant log.

        Order matters: runs first (inside :meth:`sync`), then the manifest
        carrying the advanced epoch, then the log reset to that epoch.  A
        crash before the manifest write replays the old log against the
        old manifest; a crash after it finds a log one epoch behind and
        discards it — the records are already in the just-persisted runs.
        """
        with self._maintenance_lock:
            wal = self._wal
            if (
                wal is not None
                and wal.num_records
                and len(self.memtable) == 0
            ):
                self._wal_epoch += 1
                self._sync_locked()
                wal.reset(self._wal_epoch)
            else:
                self._sync_locked()

    def compact(self) -> None:
        """Compact, then persist the merged run and prune the old files.

        The memtable drain inside :meth:`LsmDB.compact` skips its interim
        sync — persisting a run only for the merge to immediately discard
        it would be wasted run serialization and two extra manifest
        fsyncs; compaction's durability point is this method returning.
        """
        with self._maintenance_lock:
            self._compacting = True
            try:
                super().compact()
            finally:
                self._compacting = False
            self._sync_and_rotate()

    def _commit_merge(self) -> None:
        """Make a background merge durable (maintenance lock held).

        The run set *shrank*, which the manifest's append-only run-delta
        frames cannot express, so :meth:`sync` takes its atomic-rewrite
        path: merged run files are written and fsynced first, then one
        ``os.replace`` swaps the manifest — a crash at any point reopens
        to either the pre- or the post-merge run set, never a mix.  The
        WAL epoch is untouched: the memtable did not change, so the live
        log must keep replaying against both outcomes.
        """
        self._sync_locked()

    def bulk_load(self, keys: np.ndarray, num_sstables: int) -> None:
        super().bulk_load(keys, num_sstables)
        self.sync()

    def wal_info(self) -> dict:
        """Write-ahead-log state + last recovery outcome (CLI inspect)."""
        info = dict(self.last_recovery)
        if self._wal is not None:
            info.update(self._wal.info())
        info["seal"] = self._wal_seal
        return info

    def close(self) -> None:
        """Flush (making the store durable) and release resources."""
        self.flush()
        if self._wal is not None:
            self._wal.close()
        super().close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PersistentLsmDB({str(self.directory)!r}, "
            f"policy={self.policy.name}, sstables={len(self.sstables)}, "
            f"keys={self.num_keys})"
        )


# ----------------------------------------------------------------------
# the sharded persistent engine
# ----------------------------------------------------------------------
class PersistentShardedLsmDB(ShardedLsmDB):
    """A :class:`ShardedLsmDB` of per-shard :class:`PersistentLsmDB` engines.

    The top-level manifest pins the partition scheme, the per-shard specs,
    and the geometry; each ``shard-NNNN/`` directory is a self-contained
    unsharded store (own manifest, runs, filter blocks), so the per-shard
    independence of the partitioned layout extends to disk.
    """

    def __init__(
        self,
        directory: str | Path,
        specs: "FilterSpec | Sequence[FilterSpec] | None" = None,
        *,
        num_shards: int = 4,
        partition: str = "hash",
        memtable_capacity: int = 1 << 16,
        value_bytes: int = 512,
        block_bytes: int = 4096,
        device=None,
        store_values: bool = False,
        max_workers: int | None = None,
        domain_bits: int = 64,
        wal_sync: str = "batch",
        wal_group_commit: int = 1024,
        compaction=None,
        compression=None,
        mmap: bool = False,
        block_cache_bytes: int | None = None,
        _manifest: dict | None = None,
    ) -> None:
        directory = Path(directory)
        manifest = _manifest
        if manifest is None and (directory / MANIFEST_NAME).is_file():
            manifest = _read_manifest_file(directory)
        if manifest is not None:
            engine = manifest.get("engine")
            if engine != "sharded-lsm":
                raise SerialError(
                    f"store at {directory} holds a {engine!r} engine, not a "
                    "'sharded-lsm' store"
                )
            where = directory / MANIFEST_NAME
            specs = [
                _spec_from_manifest(d, where)
                for d in _manifest_field(manifest, "specs", where)
            ]
            num_shards = int(_manifest_field(manifest, "num_shards", where))
            partition = _manifest_field(manifest, "partition", where)
            domain_bits = int(_manifest_field(manifest, "domain_bits", where))
            geometry = _manifest_field(manifest, "geometry", where)
            memtable_capacity = int(
                _manifest_field(geometry, "memtable_capacity", where)
            )
            value_bytes = int(_manifest_field(geometry, "value_bytes", where))
            block_bytes = int(_manifest_field(geometry, "block_bytes", where))
            store_values = bool(
                _manifest_field(geometry, "store_values", where)
            )
            wal_sync = str(_manifest_field(geometry, "wal_sync", where))
            # Pre-compaction manifests lack the field: manual via .get.
            compaction = geometry.get("compaction", compaction)
            # Likewise pre-compression manifests read as uncompressed.
            compression = geometry.get("compression")
            for index in range(num_shards):
                shard_manifest = directory / _shard_dir_name(index) / MANIFEST_NAME
                if not shard_manifest.is_file():
                    raise SerialError(
                        f"store at {directory} is missing shard directory "
                        f"{_shard_dir_name(index)}"
                    )
        else:
            if any(directory.glob("shard-*")) or any(directory.glob("sst-*")):
                raise SerialError(
                    f"{directory} holds shard/run data but no store "
                    f"manifest ({MANIFEST_NAME}); refusing to initialize a "
                    "fresh store over it — restore the manifest or move "
                    "the data away"
                )
            if isinstance(specs, (list, tuple)):
                if len(specs) != num_shards:
                    raise ValueError(
                        f"got {len(specs)} per-shard specs for "
                        f"{num_shards} shards"
                    )
                specs = [_spec_of(s) for s in specs]
            else:
                specs = [_spec_of(specs)] * num_shards
            directory.mkdir(parents=True, exist_ok=True)
        self.directory = directory
        self.specs: list[FilterSpec] = list(specs)
        self._wal_sync = wal_sync
        self._wal_group_commit = wal_group_commit
        # Set before super().__init__ — it triggers _build_shard, which
        # threads these into every per-shard sub-store.  One BlockCache is
        # shared by all shards so the decompressed-block budget is
        # per-store, not per-shard.
        self._compression = normalize_compression(compression)
        self._use_mmap = bool(mmap)
        self._block_cache = BlockCache(
            DEFAULT_CACHE_BYTES if block_cache_bytes is None else block_cache_bytes
        )
        if manifest is None:
            # Top manifest *before* the per-shard sub-stores: a crash in
            # that window then reopens loudly (missing shard directory)
            # instead of silently re-initializing under a possibly
            # different partition scheme over the old shard data.
            self._write_manifest(
                num_shards=num_shards,
                partition=partition,
                domain_bits=domain_bits,
                memtable_capacity=memtable_capacity,
                value_bytes=value_bytes,
                block_bytes=block_bytes,
                store_values=store_values,
                wal_sync=wal_sync,
                compaction=compaction,
                compression=self._compression,
            )
        super().__init__(
            policy=[SpecPolicy(spec) for spec in self.specs],
            num_shards=num_shards,
            partition=partition,
            memtable_capacity=memtable_capacity,
            value_bytes=value_bytes,
            block_bytes=block_bytes,
            device=device,
            store_values=store_values,
            max_workers=max_workers,
            domain_bits=domain_bits,
            compaction=compaction,
        )

    def _build_shard(self, index: int, policy, **kw) -> LsmDB:
        """Each shard is a self-contained persistent sub-store with its
        own write-ahead log (independent group commit per shard)."""
        return PersistentLsmDB(
            self.directory / _shard_dir_name(index),
            policy.spec,
            device=self.device,
            wal_sync=self._wal_sync,
            wal_group_commit=self._wal_group_commit,
            compression=self._compression,
            mmap=self._use_mmap,
            _block_cache=self._block_cache,
            **kw,
        )

    def _write_manifest(
        self,
        *,
        num_shards: int,
        partition: str,
        domain_bits: int,
        memtable_capacity: int,
        value_bytes: int,
        block_bytes: int,
        store_values: bool,
        wal_sync: str,
        compaction=None,
        compression=None,
    ) -> None:
        manifest = {
            "engine": "sharded-lsm",
            "specs": [spec.to_dict() for spec in self.specs],
            "num_shards": num_shards,
            "partition": partition,
            "domain_bits": domain_bits,
            "geometry": {
                "memtable_capacity": memtable_capacity,
                "value_bytes": value_bytes,
                "block_bytes": block_bytes,
                "store_values": store_values,
                "wal_sync": wal_sync,
                "compaction": compaction_to_dict(coerce_compaction(compaction)),
                "compression": normalize_compression(compression),
            },
            "shards": [
                _shard_dir_name(index) for index in range(num_shards)
            ],
        }
        _atomic_write(
            self.directory / MANIFEST_NAME, pack_frame(KIND_STORE, manifest)
        )

    def wal_info(self) -> dict:
        """Aggregated per-shard write-ahead-log state (CLI inspect)."""
        infos = [shard.wal_info() for shard in self.shards]
        merged = {
            "sync": infos[0].get("sync", self._wal_sync),
            "group_commit": infos[0].get(
                "group_commit", self._wal_group_commit
            ),
            "epoch": max(int(i.get("epoch", 0)) for i in infos),
            "recovered_torn_tail": any(
                i.get("recovered_torn_tail") for i in infos
            ),
        }
        for field in (
            "records",
            "bytes",
            "fsyncs",
            "replayed_records",
            "replayed_ops",
            "discarded_stale_records",
        ):
            merged[field] = sum(int(i.get(field, 0)) for i in infos)
        return merged

    def close(self) -> None:
        """Flush every shard (making the store durable), then shut down."""
        self.flush()
        for shard in self.shards:
            wal = getattr(shard, "_wal", None)
            if wal is not None:
                wal.close()
        super().close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PersistentShardedLsmDB({str(self.directory)!r}, "
            f"shards={self.num_shards}, partition={self.partition!r}, "
            f"keys={self.num_keys})"
        )


# ----------------------------------------------------------------------
# the open_store(path=...) dispatch
# ----------------------------------------------------------------------
def _open_store_defaults() -> dict:
    """``open_store``'s keyword defaults, read from its signature so the
    reopen conflict check below cannot drift from the facade."""
    from repro.api import open_store

    return {
        name: parameter.default
        for name, parameter in inspect.signature(open_store).parameters.items()
        if parameter.default is not inspect.Parameter.empty
    }


_CREATE_DEFAULTS = _open_store_defaults()


def _check_reopen_args(manifest: dict, directory: Path, args: dict) -> None:
    """Reopening takes the persisted configuration; explicit arguments must
    agree with it.  Arguments still at their :func:`~repro.api.open_store`
    defaults are treated as "unspecified" (the manifest wins); anything
    explicitly different from both the default and the persisted value is
    a configuration conflict and raises :class:`ValueError`.
    """
    where = directory / MANIFEST_NAME
    sharded = manifest["engine"] == "sharded-lsm"
    geometry = _manifest_field(manifest, "geometry", where)
    stored = {
        "shards": (
            int(_manifest_field(manifest, "num_shards", where))
            if sharded
            else 1
        ),
        "partition": (
            _manifest_field(manifest, "partition", where)
            if sharded
            else "hash"
        ),
        "memtable_capacity": int(
            _manifest_field(geometry, "memtable_capacity", where)
        ),
        "value_bytes": int(_manifest_field(geometry, "value_bytes", where)),
        "block_bytes": int(_manifest_field(geometry, "block_bytes", where)),
        "store_values": bool(_manifest_field(geometry, "store_values", where)),
        "domain_bits": (
            int(_manifest_field(manifest, "domain_bits", where))
            if sharded
            else 64
        ),
        "wal_sync": str(_manifest_field(geometry, "wal_sync", where)),
    }
    for name, stored_value in stored.items():
        passed = args[name]
        if passed != _CREATE_DEFAULTS[name] and passed != stored_value:
            raise ValueError(
                f"store at {directory} was created with {name}="
                f"{stored_value!r}; reopening with {name}={passed!r} "
                "conflicts (leave it at the default to use the persisted "
                "configuration)"
            )
    # The compaction policy compares in normalized (dict) form so every
    # accepted spelling — name string, params dict, policy instance —
    # matches the persisted manifest entry; manifests written before the
    # compaction subsystem read as manual via .get.
    stored_compaction = compaction_to_dict(
        coerce_compaction(geometry.get("compaction"))
    )
    passed_compaction = compaction_to_dict(coerce_compaction(args["compaction"]))
    default_compaction = compaction_to_dict(
        coerce_compaction(_CREATE_DEFAULTS["compaction"])
    )
    if (
        passed_compaction != default_compaction
        and passed_compaction != stored_compaction
    ):
        raise ValueError(
            f"store at {directory} was created with compaction="
            f"{stored_compaction!r}; reopening with "
            f"{passed_compaction!r} conflicts (leave it at the default "
            "to use the persisted configuration)"
        )
    # Compression compares in normalized dict form for the same reason;
    # pre-compression manifests read as uncompressed via .get.  (mmap and
    # block_cache_bytes are runtime read-tier knobs, not persisted state,
    # so they are deliberately not conflict-checked — like device.)
    stored_compression = normalize_compression(geometry.get("compression"))
    passed_compression = normalize_compression(args["compression"])
    if passed_compression is not None and passed_compression != stored_compression:
        raise ValueError(
            f"store at {directory} was created with compression="
            f"{stored_compression!r}; reopening with "
            f"{passed_compression!r} conflicts (leave it at the default "
            "to use the persisted configuration)"
        )
    filter = args["filter"]
    if filter is None:
        return
    if sharded:
        stored_specs = [
            _spec_from_manifest(d, where)
            for d in _manifest_field(manifest, "specs", where)
        ]
        passed_specs = (
            [_spec_of(f) for f in filter]
            if isinstance(filter, (list, tuple))
            else [_spec_of(filter)] * len(stored_specs)
        )
        if passed_specs != stored_specs:
            raise ValueError(
                f"store at {directory} was created with filter specs "
                f"{stored_specs!r}; reopening with {passed_specs!r} "
                "conflicts"
            )
    else:
        stored_spec = _spec_from_manifest(
            _manifest_field(manifest, "spec", where), where
        )
        if _spec_of(filter) != stored_spec:
            raise ValueError(
                f"store at {directory} was created with {stored_spec!r}; "
                f"reopening with {_spec_of(filter)!r} conflicts"
            )


def open_persistent_store(
    path: str | Path,
    *,
    filter=None,
    shards: int = 1,
    partition: str = "hash",
    memtable_capacity: int = 1 << 16,
    value_bytes: int = 512,
    block_bytes: int = 4096,
    device=None,
    store_values: bool = False,
    max_workers: int | None = None,
    domain_bits: int = 64,
    wal_sync: str = "batch",
    wal_group_commit: int = 1024,
    compaction=None,
    compression=None,
    mmap: bool = False,
    block_cache_bytes: int | None = None,
):
    """Create or reopen the on-disk store at ``path``.

    The create/reopen dispatch behind ``open_store(path=...)``: a
    directory holding a store manifest is reopened with its persisted
    configuration (explicit arguments must agree — see
    :func:`_check_reopen_args`); otherwise a fresh store is initialized
    from the arguments, exactly mirroring the in-memory
    :func:`~repro.api.open_store` semantics.
    """
    path = Path(path)
    if (path / MANIFEST_NAME).is_file():
        manifest = _read_manifest_file(path)
        engine = manifest.get("engine")
        if engine not in ("lsm", "sharded-lsm"):
            raise SerialError(
                f"store manifest at {path} names unknown engine {engine!r}"
            )
        _check_reopen_args(
            manifest,
            path,
            {
                "filter": filter,
                "shards": shards,
                "partition": partition,
                "memtable_capacity": memtable_capacity,
                "value_bytes": value_bytes,
                "block_bytes": block_bytes,
                "store_values": store_values,
                "domain_bits": domain_bits,
                "wal_sync": wal_sync,
                "compaction": compaction,
                "compression": compression,
            },
        )
        # mmap and block_cache_bytes are runtime read-tier knobs (like
        # device): they pass through on reopen rather than persisting.
        if engine == "lsm":
            return PersistentLsmDB(
                path,
                device=device,
                wal_group_commit=wal_group_commit,
                mmap=mmap,
                block_cache_bytes=block_cache_bytes,
                _manifest=manifest,
            )
        return PersistentShardedLsmDB(
            path,
            device=device,
            max_workers=max_workers,
            wal_group_commit=wal_group_commit,
            mmap=mmap,
            block_cache_bytes=block_cache_bytes,
            _manifest=manifest,
        )
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        if isinstance(filter, (list, tuple)):
            raise ValueError("per-shard filter specs require shards > 1")
        return PersistentLsmDB(
            path,
            _spec_of(filter),
            memtable_capacity=memtable_capacity,
            value_bytes=value_bytes,
            block_bytes=block_bytes,
            device=device,
            store_values=store_values,
            wal_sync=wal_sync,
            wal_group_commit=wal_group_commit,
            compaction=compaction,
            compression=compression,
            mmap=mmap,
            block_cache_bytes=block_cache_bytes,
        )
    return PersistentShardedLsmDB(
        path,
        filter,
        num_shards=shards,
        partition=partition,
        memtable_capacity=memtable_capacity,
        value_bytes=value_bytes,
        block_bytes=block_bytes,
        device=device,
        store_values=store_values,
        max_workers=max_workers,
        domain_bits=domain_bits,
        wal_sync=wal_sync,
        wal_group_commit=wal_group_commit,
        compaction=compaction,
        compression=compression,
        mmap=mmap,
        block_cache_bytes=block_cache_bytes,
    )
