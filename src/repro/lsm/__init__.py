"""LSM-tree substrate — the RocksDB stand-in for the system experiments.

Memtable + L0 SSTables with per-SST full filter blocks (through
:mod:`repro.lsm.filter_policy`), fence pointers, a simulated block device
whose read costs surface in :class:`repro.lsm.iostats.IOStats`, and
pluggable background compaction (:mod:`repro.lsm.compaction`: size-tiered
and leveled policies behind a worker-thread scheduler, manual by default).
"""

from repro.lsm.compaction import (
    COMPACTION_POLICIES,
    CompactionScheduler,
    LeveledPolicy,
    SizeTieredPolicy,
    coerce_compaction,
)
from repro.lsm.db import LsmDB
from repro.lsm.filter_policy import (
    BloomPolicy,
    BloomRFPolicy,
    NoFilterPolicy,
    PrefixBloomPolicy,
    RosettaPolicy,
    SpecPolicy,
    SuRFPolicy,
    handle_from_bytes,
    load_handle,
    policy_by_name,
    save_handle,
    wrap_filter,
)
from repro.lsm.iostats import IOStats, SimulatedDevice
from repro.lsm.memtable import MemTable
from repro.lsm.sharded import ShardedLsmDB
from repro.lsm.sstable import SSTable
from repro.lsm.store import PersistentLsmDB, PersistentShardedLsmDB
from repro.lsm.wal import WriteAheadLog

__all__ = [
    "LsmDB",
    "ShardedLsmDB",
    "PersistentLsmDB",
    "PersistentShardedLsmDB",
    "WriteAheadLog",
    "MemTable",
    "SSTable",
    "IOStats",
    "SimulatedDevice",
    "SpecPolicy",
    "wrap_filter",
    "BloomRFPolicy",
    "BloomPolicy",
    "PrefixBloomPolicy",
    "RosettaPolicy",
    "SuRFPolicy",
    "NoFilterPolicy",
    "policy_by_name",
    "save_handle",
    "load_handle",
    "handle_from_bytes",
    "SizeTieredPolicy",
    "LeveledPolicy",
    "CompactionScheduler",
    "COMPACTION_POLICIES",
    "coerce_compaction",
]
