"""Background compaction: pluggable merge policies + a worker scheduler.

The paper's deployment target keeps bloomRF filter blocks useful by
keeping the run set *bounded*: under sustained write traffic an L0-only
store grows one overlapping run per memtable flush and every probe pays
for all of them.  This module supplies the steady-state machinery:

* :class:`SizeTieredPolicy` / :class:`LeveledPolicy` — pure, stateless
  *pickers*: given the engine's newest-first run sizes they either
  return a merge window or None.  ``"manual"`` (= no policy) keeps the
  paper's compaction-disabled L0 shape.
* :class:`CompactionScheduler` — runs policy-selected merges on
  background worker threads (a :class:`~repro.parallel.ShardPool`, so
  per-shard engines fan out over the same executor machinery as query
  dispatch), with per-engine coalescing: back-to-back flush triggers
  collapse into one drain loop that re-evaluates the policy until it is
  quiescent.

Soundness: a merge window is always a **contiguous** slice of the
newest-first run list.  Runs carry no per-entry timestamps — recency is
encoded purely by list position — so merging a non-contiguous subset
could let an excluded middle run shadow a newer version.  A contiguous
window collapses to one run in place and every key's newest version
stays newest.  Tombstones are dropped only when the window includes the
oldest run (nothing older left to shadow); interior merges keep them.

Policy configuration is plain data (``{"policy": name, "params":
{...}}``) so it persists in the store manifest and round-trips through
``open_store(compaction=...)``, the CLI, and reopen checks.

Worker-path contract (machine-checked by ``repro lint``): a background
thread cannot unwind the main thread, so no exception may be silently
swallowed — errors must reach ``last_error`` or re-raise
(``exception-discipline``), and merge commits must hold the engine's
maintenance lock (``lock-discipline``).
"""

from __future__ import annotations

import math
import threading
from typing import Sequence

from repro.parallel import ShardPool

__all__ = [
    "COMPACTION_POLICIES",
    "CompactionPolicy",
    "SizeTieredPolicy",
    "LeveledPolicy",
    "CompactionScheduler",
    "coerce_compaction",
    "compaction_to_dict",
]


# ----------------------------------------------------------------------
# policies
# ----------------------------------------------------------------------
class CompactionPolicy:
    """A merge-candidate picker over the newest-first run-size list.

    Subclasses implement :meth:`pick`; everything else (serialization,
    level assignment for ``store inspect``) is shared.  Policies hold no
    engine state, so one instance can serve every shard of a sharded
    store.
    """

    name = "abstract"

    def params(self) -> dict:
        """The constructor parameters, JSON-ready (manifest persistence)."""
        raise NotImplementedError

    def pick(self, run_keys: Sequence[int]) -> tuple[int, int] | None:
        """A merge window over ``run_keys`` (newest first), or None.

        Returns ``(start, stop)`` — a non-empty contiguous ``[start,
        stop)`` slice of at least two runs — when the policy's trigger
        fires; None when the run set is acceptable as-is.
        """
        raise NotImplementedError

    def level_of(self, num_keys: int, base: int) -> int:
        """The size tier/level of a run of ``num_keys`` keys (display +
        leveled trigger): 0 for runs up to ``base`` keys, then one level
        per ``growth``-factor of size."""
        growth = self._growth()
        if num_keys <= base:
            return 0
        return 1 + int(math.floor(math.log(num_keys / base, growth)))

    def _growth(self) -> float:
        return 2.0

    def describe_levels(self, run_keys: Sequence[int]) -> list[dict]:
        """Per-level run counts/key totals for ``store inspect``."""
        if not run_keys:
            return []
        base = max(1, min(run_keys))
        levels: dict[int, dict] = {}
        for keys in run_keys:
            level = self.level_of(keys, base)
            entry = levels.setdefault(level, {"level": level, "runs": 0, "keys": 0})
            entry["runs"] += 1
            entry["keys"] += int(keys)
        return [levels[level] for level in sorted(levels)]

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> dict:
        return {"policy": self.name, "params": dict(sorted(self.params().items()))}

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CompactionPolicy) and self.to_dict() == other.to_dict()
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.params().items()))))

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params().items()))
        return f"{type(self).__name__}({params})"


class SizeTieredPolicy(CompactionPolicy):
    """Cassandra-style size tiering: merge a window of similar-sized runs.

    The trigger fires when ``min_runs`` contiguous runs are within
    ``size_ratio`` of each other (largest <= ratio * smallest); the
    cheapest such window (fewest total keys) wins, capped at
    ``max_runs`` inputs per merge.  Repeated memtable flushes produce
    equal-sized L0 runs, so the run count stays O(log n) under a
    sustained write stream.
    """

    name = "size-tiered"

    def __init__(
        self,
        min_runs: int = 4,
        max_runs: int = 32,
        size_ratio: float = 2.0,
    ) -> None:
        if min_runs < 2:
            raise ValueError(f"min_runs must be >= 2, got {min_runs}")
        if max_runs < min_runs:
            raise ValueError(
                f"max_runs ({max_runs}) must be >= min_runs ({min_runs})"
            )
        if size_ratio < 1.0:
            raise ValueError(f"size_ratio must be >= 1.0, got {size_ratio}")
        self.min_runs = int(min_runs)
        self.max_runs = int(max_runs)
        self.size_ratio = float(size_ratio)

    def params(self) -> dict:
        return {
            "min_runs": self.min_runs,
            "max_runs": self.max_runs,
            "size_ratio": self.size_ratio,
        }

    def _growth(self) -> float:
        return max(self.size_ratio, 1.5)

    def pick(self, run_keys: Sequence[int]) -> tuple[int, int] | None:
        n = len(run_keys)
        best: tuple[int, int, int] | None = None  # (total_keys, start, stop)
        for start in range(n):
            lo = hi = run_keys[start]
            total = run_keys[start]
            for stop in range(start + 1, min(n, start + self.max_runs) + 1):
                if stop > start + 1:
                    keys = run_keys[stop - 1]
                    lo, hi = min(lo, keys), max(hi, keys)
                    total += keys
                    if hi > self.size_ratio * lo:
                        break
                if stop - start >= self.min_runs:
                    if best is None or total < best[0]:
                        best = (total, start, stop)
        if best is None:
            return None
        return best[1], best[2]


class LeveledPolicy(CompactionPolicy):
    """RocksDB-style leveling: bounded runs per exponentially-sized level.

    A run's level is its size class relative to the smallest run
    (``fanout``-factor per level).  When any level exceeds
    ``runs_per_level`` runs, the contiguous window spanning that level's
    runs (including any interleaved runs of other levels, to keep the
    window contiguous and therefore version-sound) merges into one
    deeper run.  The shallowest overfull level wins — merging new small
    runs first keeps write bursts from stalling behind giant merges.
    """

    name = "leveled"

    def __init__(self, runs_per_level: int = 4, fanout: float = 8.0) -> None:
        if runs_per_level < 1:
            raise ValueError(
                f"runs_per_level must be >= 1, got {runs_per_level}"
            )
        if fanout <= 1.0:
            raise ValueError(f"fanout must be > 1.0, got {fanout}")
        self.runs_per_level = int(runs_per_level)
        self.fanout = float(fanout)

    def params(self) -> dict:
        return {"runs_per_level": self.runs_per_level, "fanout": self.fanout}

    def _growth(self) -> float:
        return self.fanout

    def pick(self, run_keys: Sequence[int]) -> tuple[int, int] | None:
        n = len(run_keys)
        if n < 2:
            return None
        base = max(1, min(run_keys))
        levels = [self.level_of(keys, base) for keys in run_keys]
        overfull: dict[int, list[int]] = {}
        for index, level in enumerate(levels):
            overfull.setdefault(level, []).append(index)
        for level in sorted(overfull):
            members = overfull[level]
            if len(members) <= self.runs_per_level:
                continue
            start, stop = members[0], members[-1] + 1
            if stop - start >= 2:
                return start, stop
        return None


COMPACTION_POLICIES: dict[str, type[CompactionPolicy]] = {
    SizeTieredPolicy.name: SizeTieredPolicy,
    LeveledPolicy.name: LeveledPolicy,
}


def coerce_compaction(config) -> CompactionPolicy | None:
    """A policy instance (or None = manual) from every accepted form.

    Accepts None / ``"manual"``, a policy name string, a policy
    instance, or a dict ``{"policy": name, "params": {...}}`` (the
    manifest form; flat trigger knobs beside ``"policy"`` work too).
    Raises :class:`ValueError` naming the known policies otherwise.
    """
    if config is None or config == "manual" or config == {"policy": "manual"}:
        return None
    if isinstance(config, CompactionPolicy):
        return config
    if isinstance(config, str):
        try:
            return COMPACTION_POLICIES[config]()
        except KeyError:
            known = ", ".join(["manual", *sorted(COMPACTION_POLICIES)])
            raise ValueError(
                f"unknown compaction policy {config!r} (known: {known})"
            ) from None
    if isinstance(config, dict):
        data = dict(config)
        name = data.pop("policy", None)
        if name == "manual":
            return None
        params = dict(data.pop("params", {}))
        params.update(data)  # flat knobs beside "policy" are accepted too
        if name not in COMPACTION_POLICIES:
            known = ", ".join(["manual", *sorted(COMPACTION_POLICIES)])
            raise ValueError(
                f"unknown compaction policy {name!r} (known: {known})"
            )
        try:
            return COMPACTION_POLICIES[name](**params)
        except TypeError as exc:
            raise ValueError(
                f"invalid parameters for compaction policy {name!r}: {exc}"
            ) from None
    raise ValueError(
        "compaction must be None, 'manual', a policy name, a policy "
        f"instance, or a config dict; got {type(config).__name__}"
    )


def compaction_to_dict(policy: CompactionPolicy | None) -> dict:
    """The manifest/JSON form of a policy (``manual`` for None)."""
    if policy is None:
        return {"policy": "manual", "params": {}}
    return policy.to_dict()


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
class CompactionScheduler:
    """Background merge execution over one or many engines.

    Engines call :meth:`notify` after every flush; the scheduler runs
    each engine's :meth:`~repro.lsm.db.LsmDB.maybe_compact` drain loop on
    a worker thread until the policy is quiescent.  At most one drain
    loop runs per engine at a time — a notify landing while one is
    active just marks the engine dirty, so back-to-back triggers
    coalesce into the already-running loop (re-checked before the worker
    exits, so no trigger is lost).

    Workers catch ``BaseException`` (fault injection raises
    :class:`~repro.testing.faults.InjectedCrash`, which is not an
    ``Exception``) and record it under :attr:`last_error` instead of
    dying silently — a crashed merge never wedges :meth:`close`.

    :meth:`close` is idempotent and *drains*: it refuses new work, waits
    for every in-flight drain loop, then shuts the pool down — the
    lifecycle contract ``LsmDB.close()`` relies on.
    """

    def __init__(self, max_workers: int = 1, name: str = "compaction") -> None:
        self._pool = ShardPool(max_workers, name=name)
        self._lock = threading.Lock()
        self._active: dict[int, object] = {}  # id(engine) -> Future
        self._dirty: set[int] = set()
        self._closed = False
        self.notifications = 0
        self.merges = 0
        self.merged_runs = 0
        self.merged_input_keys = 0
        self.merged_output_keys = 0
        self.last_error: BaseException | None = None

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def notify(self, engine) -> bool:
        """Schedule a policy evaluation for ``engine`` (non-blocking).

        Returns True when a new drain loop was submitted, False when the
        trigger coalesced into an active loop or the scheduler is closed.
        """
        key = id(engine)
        with self._lock:
            self.notifications += 1
            if self._closed:
                return False
            if key in self._active:
                self._dirty.add(key)
                return False
            future = self._pool.submit(self._drain_engine, engine)
            self._active[key] = future
            return True

    def _drain_engine(self, engine) -> None:
        """One engine's drain loop: merge until the policy is quiescent."""
        key = id(engine)
        try:
            while True:
                with self._lock:
                    self._dirty.discard(key)
                    if self._closed:
                        return
                merged = engine.maybe_compact()
                if merged is None:
                    with self._lock:
                        # A flush landed while we were merging: loop again
                        # instead of dropping its trigger on the floor.
                        if key not in self._dirty:
                            return
                    continue
                with self._lock:
                    self.merges += 1
                    self.merged_runs += merged["input_runs"]
                    self.merged_input_keys += merged["input_keys"]
                    self.merged_output_keys += merged["output_keys"]
        except BaseException as exc:  # noqa: BLE001 - crash-kill safety net
            with self._lock:
                self.last_error = exc
        finally:
            with self._lock:
                self._active.pop(key, None)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def drain(self) -> None:
        """Block until every in-flight drain loop has finished."""
        while True:
            with self._lock:
                futures = list(self._active.values())
            if not futures:
                return
            for future in futures:
                future.result()  # _drain_engine never raises

    def close(self) -> None:
        """Refuse new work, drain in-flight merges, stop the workers."""
        with self._lock:
            if self._closed:
                self._pool.close()
                return
            self._closed = True
        self.drain()
        self._pool.close()

    def __enter__(self) -> "CompactionScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def info(self) -> dict:
        """Scheduler state for ``store inspect`` and the benchmarks."""
        with self._lock:
            return {
                "workers": self._pool.max_workers,
                "closed": self._closed,
                "in_flight": len(self._active),
                "pending": len(self._dirty),
                "notifications": self.notifications,
                "merges": self.merges,
                "merged_runs": self.merged_runs,
                "merged_input_keys": self.merged_input_keys,
                "merged_output_keys": self.merged_output_keys,
                "last_error": repr(self.last_error) if self.last_error else None,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompactionScheduler(workers={self._pool.max_workers}, "
            f"merges={self.merges}, closed={self._closed})"
        )
