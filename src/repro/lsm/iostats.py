"""Execution statistics for the LSM substrate (drives Figs. 9, 10, 12.C, 12.G).

The paper's system experiments report an execution-time breakdown per probe
workload: *filter probe* CPU, *residual* CPU, filter *deserialization*, and
*I/O wait* (Fig. 12.G).  Our substrate measures real CPU time for the filter
and bookkeeping paths and charges a fixed simulated latency per block read —
the substitution documented in DESIGN.md: what matters for the paper's
claims is how filter FPR converts block reads into I/O wait, which this
accounting preserves exactly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields, replace

import numpy as np

__all__ = ["IOStats", "SimulatedDevice"]


@dataclass
class SimulatedDevice:
    """Fixed-cost storage device: ``read_latency_s`` per block read."""

    read_latency_s: float = 100e-6
    block_bytes: int = 4096


@dataclass
class IOStats:
    """Counters + time buckets accumulated by a DB instance."""

    # Filter-level outcomes (per filter probe, ground truth known):
    filter_probes: int = 0
    filter_positives: int = 0
    filter_true_positives: int = 0
    filter_false_positives: int = 0
    filter_true_negatives: int = 0
    # I/O:
    blocks_read: int = 0
    # Decompressed-block cache (compressed stores only; an eager or
    # uncompressed store leaves both at zero).  Deliberately *not* part of
    # counters(): hit/miss splits depend on cache budget and access order,
    # while counters() is the bit-for-bit exactness comparison set.
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    # Time buckets (seconds):
    filter_cpu_s: float = 0.0
    residual_cpu_s: float = 0.0
    deserialization_s: float = 0.0
    io_wait_s: float = 0.0

    def __post_init__(self) -> None:
        # Deliberately NOT a dataclass field: ``reset()`` zeros fields in
        # place and ``replace(self)`` snapshots them, and the lock must
        # survive both untouched.
        self._hot_lock = threading.Lock()

    def bump(self, **deltas: int) -> None:
        """Atomically add ``deltas`` to the named counter fields.

        The hot-path form of ``stats.field += n`` for counters that can be
        bumped from concurrent reader threads (the decompressed-block
        cache hooks live inside mmap'd SST frames shared by every
        reader): a bare ``+=`` is a read-modify-write that loses updates
        under contention.  One uncontended lock acquisition is ~100ns, so
        the single-threaded path cost is unmeasurable next to a block
        decompression.
        """
        with self._hot_lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def add_cache_hit(self, n: int = 1) -> None:
        """Atomic ``block_cache_hits += n`` (see :meth:`bump`)."""
        with self._hot_lock:
            self.block_cache_hits += n

    def add_cache_miss(self, n: int = 1) -> None:
        """Atomic ``block_cache_misses += n`` (see :meth:`bump`)."""
        with self._hot_lock:
            self.block_cache_misses += n

    def record_probe(self, positive: bool, truly_present: bool) -> None:
        """Classify one filter probe against ground truth."""
        self.filter_probes += 1
        if positive:
            self.filter_positives += 1
            if truly_present:
                self.filter_true_positives += 1
            else:
                self.filter_false_positives += 1
        elif not truly_present:
            self.filter_true_negatives += 1
        # A negative on a truly-present key would be a false negative; every
        # filter in this package guarantees none, and the DB asserts it.

    def record_probes(self, positives, truths) -> None:
        """Vectorized :meth:`record_probe` over parallel boolean arrays."""
        positives = np.asarray(positives, dtype=bool)
        truths = np.asarray(truths, dtype=bool)
        n_pos = int(np.count_nonzero(positives))
        n_tp = int(np.count_nonzero(positives & truths))
        self.filter_probes += int(positives.size)
        self.filter_positives += n_pos
        self.filter_true_positives += n_tp
        self.filter_false_positives += n_pos - n_tp
        self.filter_true_negatives += int(
            np.count_nonzero(~positives & ~truths)
        )

    @property
    def fpr(self) -> float:
        """Observed filter FPR: FP / (FP + TN) over empty probes."""
        denominator = self.filter_false_positives + self.filter_true_negatives
        if denominator == 0:
            return 0.0
        return self.filter_false_positives / denominator

    @property
    def total_time_s(self) -> float:
        return (
            self.filter_cpu_s
            + self.residual_cpu_s
            + self.deserialization_s
            + self.io_wait_s
        )

    def reset(self) -> "IOStats":
        """Zero every field in place; returns a snapshot of the old values.

        In place, not by swapping in a fresh object: long-lived readers
        (the decompressed-block cache hooks inside mmap'd SST frames)
        capture a reference to their DB's stats at open time and must keep
        recording into the live object across resets.
        """
        with self._hot_lock:
            snapshot = replace(self)
            for field in fields(self):
                setattr(self, field.name, field.default)
        return snapshot

    def merge(self, other: "IOStats") -> None:
        """Accumulate another stats object into this one.

        Counters and time buckets are plain sums, so merging the per-shard
        stats of a sharded run yields the same aggregate accounting as one
        unsharded run over the same probes (order never matters).
        """
        with self._hot_lock:
            self._merge_locked(other)

    def _merge_locked(self, other: "IOStats") -> None:
        for name in (
            "filter_probes",
            "filter_positives",
            "filter_true_positives",
            "filter_false_positives",
            "filter_true_negatives",
            "blocks_read",
            "block_cache_hits",
            "block_cache_misses",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in (
            "filter_cpu_s",
            "residual_cpu_s",
            "deserialization_s",
            "io_wait_s",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def __iadd__(self, other: "IOStats") -> "IOStats":
        """``stats += other`` — operator form of :meth:`merge`."""
        self.merge(other)
        return self

    @classmethod
    def merged(cls, parts: "list[IOStats] | tuple[IOStats, ...]") -> "IOStats":
        """Fresh stats equal to the sum of ``parts`` (inputs untouched)."""
        total = cls()
        for part in parts:
            total += part
        return total

    def counters(self) -> dict[str, int]:
        """Probe/IO counters as a dict (exactness tests compare these)."""
        return {
            "filter_probes": self.filter_probes,
            "filter_positives": self.filter_positives,
            "filter_true_positives": self.filter_true_positives,
            "filter_false_positives": self.filter_false_positives,
            "filter_true_negatives": self.filter_true_negatives,
            "blocks_read": self.blocks_read,
        }

    def breakdown(self) -> dict[str, float]:
        """Fig. 12.G-style buckets (seconds)."""
        return {
            "filter_probe_s": self.filter_cpu_s,
            "residual_cpu_s": self.residual_cpu_s,
            "deserialization_s": self.deserialization_s,
            "io_wait_s": self.io_wait_s,
        }
