"""ShardedLsmDB — a shard-aware LSM engine: N per-shard stores, one API.

The scale-out counterpart of :class:`~repro.shard.ShardedBloomRF` one layer
up: instead of sharding a single filter, the whole LSM engine is partitioned
into N independent :class:`~repro.lsm.db.LsmDB` instances — each with its own
memtable, SSTable set, filter blocks, and :class:`~repro.lsm.iostats.IOStats`
— behind the batch API of the unsharded store.  Batches are partitioned and
dispatched through the shared layer in :mod:`repro.parallel` and the answers
are scattered back into input order, so callers cannot tell the difference
(the exactness-ladder tests pin this down).

Why shard the *engine* and not just the filter
----------------------------------------------
Partitioning the write stream means each shard flushes its own, smaller run
sequence: a store that would accumulate ``L`` overlapping L0 runs unsharded
accumulates ``~L/N`` runs *per shard*, and a point lookup consults only its
owning shard's runs — an ``N``-fold cut in filter probes and fence checks
per key before any parallelism, on top of the thread-pool overlap of the
per-shard NumPy sweeps (which release the GIL).  This is the move RocksDB
deployments make with column-family/key-range sharding, and what the
ROADMAP's Fig. 12.B scale-out direction asks for.

Exactness
---------
Every read path resolves exactly (filters only accelerate; the merging scan
reconciles versions), and the partitioner routes each key to exactly one
shard — so ``get_many`` / ``scan_nonempty_many`` / ``scan`` answers are
bit-identical to an unsharded :class:`LsmDB` fed the same operations, and
:attr:`stats` (the word-level merge of the per-shard ``IOStats``) reports
the aggregate probe/block accounting of the shards exactly (``IOStats``
merging is a plain counter sum, so order never matters).  Filter-level
*maybe* answers (``may_contain_many`` / ``scan_may_contain``) stay sound —
no false negatives — but probe different run partitions than the unsharded
store, so their false-positive sets may differ.

Range queries follow the partition scheme: with ``"hash"`` dispatch the
keys of a range scatter over every shard, so all shards probe it and the
answers are OR-ed; with ``"range"`` dispatch a query is clipped to its
overlapping shards only, so narrow scans touch one shard.

Lifecycle: use as a context manager (or call :meth:`close`) to release the
worker pool deterministically, exactly like :class:`ShardedBloomRF`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api import FilterSpec
from repro.lsm.compaction import (
    CompactionScheduler,
    coerce_compaction,
    compaction_to_dict,
)
from repro.lsm.db import LsmDB
from repro.lsm.filter_policy import FilterPolicy, coerce_policy
from repro.lsm.iostats import IOStats, SimulatedDevice
from repro.parallel import (
    ShardPool,
    group_by_owner,
    make_partitioner,
    run_bounds_batch,
    run_point_batch,
)

__all__ = ["ShardedLsmDB"]


def _coerce_shard_policies(policy, num_shards: int) -> list:
    """Per-shard policy list from one policy/spec or a sequence of them.

    A single policy/spec/None is shared by every shard (the policies are
    stateless builders).  A sequence supplies one entry per shard —
    per-shard filter configuration (e.g. more bits/key on a hot shard),
    the ROADMAP's "per-shard config sizing" direction.
    """
    if isinstance(policy, (list, tuple)):
        if len(policy) != num_shards:
            raise ValueError(
                f"got {len(policy)} per-shard policies for {num_shards} shards"
            )
        return [coerce_policy(p) for p in policy]
    return [coerce_policy(policy)] * num_shards


class ShardedLsmDB:
    """N per-shard :class:`LsmDB` engines behind the one-store batch API.

    ``policy`` accepts everything :class:`LsmDB` does — a policy object, a
    :class:`~repro.api.FilterSpec`, or None — plus a sequence of those
    (one per shard) for per-shard filter sizing.
    """

    def __init__(
        self,
        policy: FilterPolicy | FilterSpec | Sequence | None = None,
        num_shards: int = 4,
        partition: str = "hash",
        memtable_capacity: int = 1 << 16,
        value_bytes: int = 512,
        block_bytes: int = 4096,
        device: SimulatedDevice | None = None,
        store_values: bool = False,
        max_workers: int | None = None,
        domain_bits: int = 64,
        compaction=None,
    ) -> None:
        self._partitioner = make_partitioner(partition, num_shards, domain_bits)
        self.num_shards = num_shards
        self.partition = partition
        self.device = device if device is not None else SimulatedDevice()
        policies = _coerce_shard_policies(policy, num_shards)
        self.store_values = store_values
        # One shared scheduler for every shard: per-shard merges fan out
        # over its ShardPool workers, while each shard's maintenance lock
        # keeps its own run-set mutations serialized.  (The policy object
        # is stateless, so sharing one instance across shards is safe.)
        self.compaction = coerce_compaction(compaction)
        self._scheduler = (
            CompactionScheduler(max_workers=num_shards, name="lsm-compaction")
            if self.compaction is not None
            else None
        )
        # ``memtable_capacity`` is per shard: each shard flushes after its
        # own ``capacity`` writes, so a sharded store builds N interleaved
        # sequences of same-size runs (each run's filter is sized for the
        # keys it actually holds — per-shard sizing for free).
        self.shards: list[LsmDB] = [
            self._build_shard(
                shard,
                policies[shard],
                memtable_capacity=memtable_capacity,
                value_bytes=value_bytes,
                block_bytes=block_bytes,
                store_values=store_values,
                compaction=self.compaction,
                compaction_scheduler=self._scheduler,
            )
            for shard in range(num_shards)
        ]
        self._pool = ShardPool(
            max_workers if max_workers is not None else num_shards,
            name="lsm-shard",
        )

    def _build_shard(self, index: int, policy, **kw) -> LsmDB:
        """One per-shard engine (the persistent store overrides this to
        back each shard with its own on-disk sub-store)."""
        return LsmDB(policy=policy, device=self.device, **kw)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain background compaction, then shut down the pool (idempotent)."""
        if self._scheduler is not None:
            self._scheduler.close()
        self._pool.close()

    def __enter__(self) -> "ShardedLsmDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def shard_of(self, key: int) -> int:
        return self._partitioner.owner_of(key)

    def shard_of_many(self, keys: np.ndarray) -> np.ndarray:
        """Owning shard index per key (vectorized dispatch function)."""
        return self._partitioner.owner_of_many(keys)

    def _run_per_shard(self, jobs: list[tuple[int, object]], fn) -> list:
        return self._pool.run(jobs, lambda s, payload: fn(self.shards[s], payload))

    def _fan_out_all(self, fn) -> list:
        """Run ``fn(shard)`` on every shard through the pool."""
        return self._pool.run(
            [(s, None) for s in range(self.num_shards)],
            lambda s, _: fn(self.shards[s]),
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes = b"") -> None:
        """Insert or overwrite one key on its owning shard."""
        self.shards[self.shard_of(key)].put(key, value)

    def delete(self, key: int) -> None:
        """Tombstone one key on its owning shard."""
        self.shards[self.shard_of(key)].delete(key)

    def put_many(
        self, keys: np.ndarray, values: list[bytes] | None = None
    ) -> None:
        """Bulk ingest: partition the batch, parallel per-shard ``put_many``.

        Each shard absorbs its sub-batch through the chunked bulk write
        path (memtable fills + flushes with ``insert_many``-built filter
        blocks); later duplicates win exactly like sequential puts because
        partitioning is order-preserving within a shard.
        """
        keys = LsmDB._validated_keys(keys)
        if values is not None and len(values) != keys.size:
            raise ValueError("values must align with keys")
        if keys.size == 0:
            return
        owner = self.shard_of_many(keys)
        jobs = []
        for s, idx in group_by_owner(owner):
            shard_values = (
                [values[i] for i in idx.tolist()] if values is not None else None
            )
            jobs.append((s, (keys[idx], shard_values)))
        self._run_per_shard(
            jobs, lambda shard, job: shard.put_many(job[0], job[1])
        )

    def delete_many(self, keys: np.ndarray) -> None:
        """Bulk delete: partition the batch, parallel per-shard tombstones."""
        keys = LsmDB._validated_keys(keys)
        if keys.size == 0:
            return
        owner = self.shard_of_many(keys)
        jobs = [(s, keys[idx]) for s, idx in group_by_owner(owner)]
        self._run_per_shard(jobs, lambda shard, chunk: shard.delete_many(chunk))

    def flush(self) -> None:
        """Flush every shard's memtable into a new per-shard L0 run."""
        self._fan_out_all(lambda shard: shard.flush())

    def sync(self) -> None:
        """Make every shard's flushed runs durable (no-op when in-memory)."""
        self._fan_out_all(lambda shard: shard.sync())

    def commit_barrier(self) -> None:
        """Wait for every shard's covering group commit (one fsync per
        shard WAL at most; no-op for in-memory shards)."""
        self._fan_out_all(lambda shard: shard.commit_barrier())

    def bulk_load(self, keys: np.ndarray, num_sstables: int) -> None:
        """Load an insertion-ordered stream into ``num_sstables`` runs *per
        shard*: the stream is partitioned first, then each shard chunks its
        share exactly like :meth:`LsmDB.bulk_load` (filters built through
        the bulk ``insert_many`` path)."""
        keys = np.asarray(keys, dtype=np.uint64)
        owner = self.shard_of_many(keys)
        jobs = [(s, keys[idx]) for s, idx in group_by_owner(owner)]
        self._run_per_shard(
            jobs, lambda shard, chunk: shard.bulk_load(chunk, num_sstables)
        )

    def compact(self) -> None:
        """Compact every shard (vectorized newest-wins merge per shard)."""
        self._fan_out_all(lambda shard: shard.compact())

    def drain_compaction(self) -> None:
        """Block until the shared background scheduler is quiescent."""
        if self._scheduler is not None:
            self._scheduler.drain()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> bool:
        """Is a live version of ``key`` present? (owning shard only)."""
        return self.shards[self.shard_of(key)].get(key)

    def get_value(self, key: int) -> bytes | None:
        """Newest live value of ``key``, or None (absent or deleted)."""
        return self.shards[self.shard_of(key)].get_value(key)

    def get_many(self, keys: np.ndarray) -> np.ndarray:
        """Batched :meth:`get`: each key probes exactly its owning shard.

        Bit-identical to the unsharded :meth:`LsmDB.get_many` over the same
        operation stream (asserted by the exactness-ladder tests); each
        shard walks only its own — ``~N``-fold shorter — run list.
        """
        keys = LsmDB._validated_keys(keys)
        result = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return result
        return run_point_batch(
            self._pool, self.shards, self._partitioner, keys,
            LsmDB.get_many, result,
        )

    def may_contain_many(self, keys: np.ndarray) -> np.ndarray:
        """Batched filter-level membership probe (pure filter CPU).

        Sound — a present key always answers True — but the false-positive
        set may differ from the unsharded store's: each key consults its
        shard's filter blocks, which index a different run partitioning.
        """
        keys = LsmDB._validated_keys(keys)
        result = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return result
        return run_point_batch(
            self._pool, self.shards, self._partitioner, keys,
            LsmDB.may_contain_many, result,
        )

    def scan_nonempty(self, l_key: int, r_key: int) -> bool:
        """Does ``[l_key, r_key]`` hold any live key? (exact answer)."""
        return bool(
            self.scan_nonempty_many(
                np.array([[l_key, r_key]], dtype=np.uint64)
            )[0]
        )

    def scan_nonempty_many(self, bounds: np.ndarray) -> np.ndarray:
        """Batched range-emptiness: per-shard probes OR-ed per query.

        See :func:`repro.parallel.run_bounds_batch`: the full batch on
        every shard for hash dispatch, clipped overlap-only queries for
        range dispatch.  Each shard answers exactly for its partition, so
        the OR equals the unsharded answer bit for bit.
        """
        bounds = LsmDB._validated_bounds(bounds)
        n = bounds.shape[0]
        result = np.zeros(n, dtype=bool)
        if n == 0:
            return result
        return run_bounds_batch(
            self._pool, self.shards, self._partitioner, bounds,
            LsmDB.scan_nonempty_many, result,
        )

    def scan_may_contain(self, bounds: np.ndarray) -> np.ndarray:
        """Batched filter-level emptiness probe (sound *maybe* answers)."""
        bounds = LsmDB._validated_bounds(bounds)
        n = bounds.shape[0]
        result = np.zeros(n, dtype=bool)
        if n == 0:
            return result
        return run_bounds_batch(
            self._pool, self.shards, self._partitioner, bounds,
            LsmDB.scan_may_contain, result,
        )

    def scan(self, l_key: int, r_key: int, limit: int | None = None):
        """Merged live entries in range, newest version wins, sorted by key.

        Each key lives in exactly one shard, so there are no cross-shard
        version conflicts: the per-shard merge scans concatenate into one
        key-sorted result (identical to the unsharded scan's).
        """
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        bounds = np.array([[l_key, r_key]], dtype=np.uint64)
        jobs = [
            (s, clipped)
            for s, _, clipped in self._partitioner.split_bounds(bounds)
        ]
        answers = self._run_per_shard(
            jobs,
            lambda shard, clipped: shard.scan(
                int(clipped[0, 0]), int(clipped[0, 1]), limit
            ),
        )
        merged = sorted(entry for part in answers for entry in part)
        if limit is not None:
            merged = merged[:limit]
        return merged

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> IOStats:
        """Merged per-shard stats: aggregate accounting of the whole store."""
        return IOStats.merged([shard.stats for shard in self.shards])

    def reset_stats(self) -> IOStats:
        """Reset every shard's stats; returns the merged old aggregate."""
        return IOStats.merged([shard.reset_stats() for shard in self.shards])

    @property
    def num_keys(self) -> int:
        return sum(shard.num_keys for shard in self.shards)

    @property
    def num_sstables(self) -> int:
        """Total runs across all shards (per-shard lists stay separate)."""
        return sum(len(shard.sstables) for shard in self.shards)

    @property
    def filter_bits(self) -> int:
        return sum(shard.filter_bits for shard in self.shards)

    def filter_bits_per_key(self) -> float:
        stored = sum(
            sst.num_keys for shard in self.shards for sst in shard.sstables
        )
        return self.filter_bits / stored if stored else 0.0

    def construction_times(self) -> tuple[float, float]:
        """(total filter build seconds, total serialization seconds)."""
        totals = [shard.construction_times() for shard in self.shards]
        return (
            sum(t[0] for t in totals),
            sum(t[1] for t in totals),
        )

    def compaction_info(self) -> dict:
        """Aggregated per-shard compaction state: summed per-level run
        counts, the shared policy, and the shared scheduler's counters."""
        infos = [shard.compaction_info() for shard in self.shards]
        levels: dict[int, dict] = {}
        for info in infos:
            for entry in info["levels"]:
                bucket = levels.setdefault(
                    entry["level"],
                    {"level": entry["level"], "runs": 0, "keys": 0},
                )
                bucket["runs"] += entry["runs"]
                bucket["keys"] += entry["keys"]
        return {
            "policy": compaction_to_dict(self.compaction),
            "levels": [levels[level] for level in sorted(levels)],
            "pending": any(info["pending"] for info in infos),
            "scheduler": (
                self._scheduler.info() if self._scheduler is not None else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedLsmDB(shards={self.num_shards}, "
            f"partition={self.partition!r}, keys={self.num_keys}, "
            f"sstables={self.num_sstables})"
        )
