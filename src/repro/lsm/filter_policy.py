"""Filter policies: how SSTables build and consult their filter blocks.

Mirrors RocksDB's ``FilterPolicy`` extension described in Sect. 9: the policy
builds one full-filter block per SST from the SST's keys, (de)serializes it,
and answers point probes — extended here (as in the paper) with range probes
carrying the query's lower/upper bounds.

Every handle exposes bulk probe interfaces (``probe_point_many`` /
``probe_range_many``): policies whose filter has a vectorized path wire it
through; the rest fall back to a uniform scalar loop, so the DB's batched
read paths work against every policy.  Policies whose filters support
word-level union (bloomRF, Bloom) additionally expose ``merge_handles`` so
compaction can union same-config filter blocks instead of re-hashing keys.

Policies exist for every baseline so the same DB harness runs the whole
comparison: bloomRF (basic/tuned), Bloom, Prefix-Bloom, Rosetta, SuRF, and
"none" (fence pointers only).
"""

from __future__ import annotations

from pathlib import Path
from typing import Protocol, Sequence

import numpy as np

from repro._util import bulk_point_eval, bulk_range_eval
from repro.baselines.bloom import BloomFilter
from repro.baselines.prefix_bloom import PrefixBloomFilter
from repro.baselines.rosetta import Rosetta
from repro.baselines.surf import SuRF
from repro.core.bloomrf import BloomRF

__all__ = [
    "FilterHandle",
    "FilterPolicy",
    "BloomRFPolicy",
    "BloomPolicy",
    "PrefixBloomPolicy",
    "RosettaPolicy",
    "SuRFPolicy",
    "NoFilterPolicy",
    "policy_by_name",
    "save_handle",
    "load_handle",
    "handle_from_bytes",
]


class FilterHandle(Protocol):
    """What the DB needs from a built filter block."""

    def probe_point(self, key: int) -> bool: ...

    def probe_point_many(self, keys: np.ndarray) -> np.ndarray: ...

    def probe_range(self, l_key: int, r_key: int) -> bool: ...

    def probe_range_many(self, bounds: np.ndarray) -> np.ndarray: ...

    @property
    def size_bits(self) -> int: ...

    def serialize(self) -> bytes: ...


class FilterPolicy(Protocol):
    name: str

    def build(self, keys: np.ndarray) -> FilterHandle: ...

    def deserialize(self, data: bytes) -> FilterHandle: ...


class _Handle:
    """Adapter turning any filter object into a :class:`FilterHandle`."""

    __slots__ = (
        "_filter",
        "_point",
        "_point_many",
        "_range",
        "_range_many",
        "_serialize",
    )

    def __init__(
        self, filt, point, range_, serialize, range_many=None, point_many=None
    ) -> None:
        self._filter = filt
        self._point = point
        self._point_many = point_many
        self._range = range_
        self._range_many = range_many
        self._serialize = serialize

    def probe_point(self, key: int) -> bool:
        return self._point(key)

    def probe_point_many(self, keys: np.ndarray) -> np.ndarray:
        """Batched point probe; falls back to a scalar loop when the
        underlying filter has no bulk interface."""
        if self._point_many is not None:
            return np.asarray(self._point_many(keys), dtype=bool)
        return bulk_point_eval(self._point, keys)

    def probe_range(self, l_key: int, r_key: int) -> bool:
        return self._range(l_key, r_key)

    def probe_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Batched range probe; falls back to a scalar loop when the
        underlying filter has no bulk interface."""
        if self._range_many is not None:
            return np.asarray(self._range_many(bounds), dtype=bool)
        return bulk_range_eval(self._range, bounds)

    @property
    def size_bits(self) -> int:
        return self._filter.size_bits

    def serialize(self) -> bytes:
        return self._serialize()

    # Lifecycle: most filters hold no resources, but a sharded block owns
    # a worker pool — close releases it (no-op otherwise).  Usable as a
    # context manager for the load-probe-discard pattern.
    def close(self) -> None:
        close = getattr(self._filter, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "_Handle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BloomRFPolicy:
    """bloomRF full-filter policy (advisor-tuned unless ``basic=True``)."""

    def __init__(
        self,
        bits_per_key: float,
        max_range: int = 1 << 40,
        basic: bool = False,
        seed: int = 0x5EED,
    ) -> None:
        self.bits_per_key = bits_per_key
        self.max_range = max_range
        self.basic = basic
        self.seed = seed
        self.name = f"bloomRF{'-basic' if basic else ''}"

    def build(self, keys: np.ndarray) -> FilterHandle:
        n = max(int(keys.size), 1)
        if self.basic:
            filt = BloomRF.basic(
                n_keys=n, bits_per_key=self.bits_per_key, seed=self.seed
            )
        else:
            filt = BloomRF.tuned(
                n_keys=n,
                bits_per_key=self.bits_per_key,
                max_range=self.max_range,
                seed=self.seed,
            )
        filt.insert_many(np.asarray(keys, dtype=np.uint64))
        return self._wrap(filt)

    def deserialize(self, data: bytes) -> FilterHandle:
        return self._wrap(BloomRF.from_bytes(data))

    @staticmethod
    def merge_handles(handles: Sequence[FilterHandle]) -> FilterHandle | None:
        """Union same-config filter blocks into one (compaction fast path).

        Returns None when the blocks are not mergeable (different configs —
        e.g. runs of different sizes were tuned differently), in which case
        the caller rebuilds from keys.  The union indexes every key any
        operand indexed, so it stays sound for the merged run (it may keep
        bits of dropped versions — a few extra false positives, never a
        false negative).
        """
        filters = [getattr(h, "_filter", None) for h in handles]
        if not filters or any(not isinstance(f, BloomRF) for f in filters):
            return None
        if any(f.config != filters[0].config for f in filters[1:]):
            return None
        return BloomRFPolicy._wrap(BloomRF.merge(filters))

    @staticmethod
    def _wrap(filt: BloomRF) -> FilterHandle:
        return _Handle(
            filt,
            filt.contains_point,
            filt.contains_range,
            filt.to_bytes,
            range_many=filt.contains_range_many,
            point_many=filt.contains_point_many,
        )


class BloomPolicy:
    """Standard RocksDB-style Bloom filter (point probes only).

    Range probes conservatively answer True — a BF cannot prune ranges,
    which is exactly the paper's motivation for point-range filters.
    """

    def __init__(self, bits_per_key: float, seed: int = 0xB10F) -> None:
        self.bits_per_key = bits_per_key
        self.seed = seed
        self.name = "bloom"

    def build(self, keys: np.ndarray) -> FilterHandle:
        filt = BloomFilter(
            n_keys=max(int(keys.size), 1),
            bits_per_key=self.bits_per_key,
            seed=self.seed,
        )
        filt.insert_many(np.asarray(keys, dtype=np.uint64))
        return self._wrap(filt)

    def deserialize(self, data: bytes) -> FilterHandle:
        return self._wrap(BloomFilter.from_bytes(data))

    @staticmethod
    def merge_handles(handles: Sequence[FilterHandle]) -> FilterHandle | None:
        """Union same-geometry Bloom blocks (see BloomRFPolicy.merge_handles)."""
        filters = [getattr(h, "_filter", None) for h in handles]
        if not filters or any(not isinstance(f, BloomFilter) for f in filters):
            return None
        head = filters[0]
        if any(
            (f.num_bits, f.num_hashes, f.seed)
            != (head.num_bits, head.num_hashes, head.seed)
            for f in filters[1:]
        ):
            return None
        merged = BloomFilter(
            n_keys=1,
            bits_per_key=head.num_bits,
            num_hashes=head.num_hashes,
            seed=head.seed,
        )
        assert merged.num_bits == head.num_bits  # round_up(m, 64) is idempotent
        for f in filters:
            f.union_into(merged)
        return BloomPolicy._wrap(merged)

    @staticmethod
    def _wrap(filt: BloomFilter) -> FilterHandle:
        return _Handle(
            filt,
            filt.contains_point,
            lambda lo, hi: True,
            filt.to_bytes,
            range_many=lambda bounds: np.ones(len(bounds), dtype=bool),
            point_many=filt.contains_point_many,
        )


class PrefixBloomPolicy:
    """Prefix-BF policy (Fig. 9.D baseline)."""

    def __init__(
        self, bits_per_key: float, expected_range: int, seed: int = 0x9F1
    ) -> None:
        self.bits_per_key = bits_per_key
        self.expected_range = expected_range
        self.seed = seed
        self.name = "prefix-bloom"

    def build(self, keys: np.ndarray) -> FilterHandle:
        filt = PrefixBloomFilter.for_range(
            n_keys=max(int(keys.size), 1),
            bits_per_key=self.bits_per_key,
            expected_range=self.expected_range,
            seed=self.seed,
        )
        filt.insert_many(np.asarray(keys, dtype=np.uint64))
        return _Handle(
            filt,
            filt.contains_point,
            lambda lo, hi: filt.contains_range(lo, hi)[0],
            lambda: b"",
            range_many=filt.contains_range_many,
            point_many=filt.contains_point_many,
        )

    def deserialize(self, data: bytes) -> FilterHandle:
        raise NotImplementedError("prefix-BF serialization is not persisted")


class RosettaPolicy:
    """Rosetta policy (budget-tuned variant)."""

    def __init__(
        self, bits_per_key: float, max_range: int, seed: int = 0x0E77A
    ) -> None:
        self.bits_per_key = bits_per_key
        self.max_range = max_range
        self.seed = seed
        self.name = "rosetta"

    def build(self, keys: np.ndarray) -> FilterHandle:
        filt = Rosetta.tuned(
            n_keys=max(int(keys.size), 1),
            bits_per_key=self.bits_per_key,
            max_range=self.max_range,
            seed=self.seed,
        )
        filt.insert_many(np.asarray(keys, dtype=np.uint64))
        return _Handle(
            filt,
            filt.contains_point,
            filt.contains_range,
            lambda: b"",
            range_many=filt.contains_range_many,
            point_many=filt.contains_point_many,
        )

    def deserialize(self, data: bytes) -> FilterHandle:
        raise NotImplementedError("Rosetta serialization is not persisted")


class SuRFPolicy:
    """SuRF policy (suffix length tuned to the budget)."""

    def __init__(
        self,
        bits_per_key: float,
        suffix_mode: str = "real",
        seed: int = 0x50F1,
    ) -> None:
        self.bits_per_key = bits_per_key
        self.suffix_mode = suffix_mode
        self.seed = seed
        self.name = "surf"

    def build(self, keys: np.ndarray) -> FilterHandle:
        filt = SuRF.tuned_uint64(
            np.asarray(keys, dtype=np.uint64),
            bits_per_key=self.bits_per_key,
            suffix_mode=self.suffix_mode,
            seed=self.seed,
        )
        return _Handle(
            filt,
            filt.contains_point,
            filt.contains_range,
            lambda: b"",
            range_many=filt.contains_range_many,
            point_many=filt.contains_point_many,
        )

    def deserialize(self, data: bytes) -> FilterHandle:
        raise NotImplementedError("SuRF serialization is not persisted")


class NoFilterPolicy:
    """Fence pointers only — every probe answers 'maybe'."""

    name = "none"

    def build(self, keys: np.ndarray) -> FilterHandle:
        return _Handle(
            _ZeroSize(),
            lambda key: True,
            lambda lo, hi: True,
            lambda: b"",
            range_many=lambda bounds: np.ones(len(bounds), dtype=bool),
            point_many=lambda keys: np.ones(len(keys), dtype=bool),
        )

    def deserialize(self, data: bytes) -> FilterHandle:
        return self.build(np.empty(0, dtype=np.uint64))


class _ZeroSize:
    size_bits = 0


# ----------------------------------------------------------------------
# handle-level persistence (SST filter blocks on disk)
# ----------------------------------------------------------------------
def save_handle(handle: FilterHandle, path: str | Path) -> Path:
    """Write a built filter block to ``path`` in the framed format.

    Only policies with a persisted format (bloomRF, Bloom, sharded
    bloomRF) produce loadable blocks; the rest serialize to an empty
    string, which is rejected here rather than written as a 0-byte file.
    """
    data = handle.serialize()
    if not data:
        raise ValueError(
            "this filter block has no persisted serialization format"
        )
    path = Path(path)
    path.write_bytes(data)
    return path


def handle_from_bytes(data: bytes) -> FilterHandle:
    """Rehydrate a serialized filter block into a probe-ready handle.

    Dispatches on the frame's kind (see :mod:`repro.serial`), so one loader
    serves bloomRF, Bloom, and sharded-bloomRF blocks — the reader side of
    RocksDB's ``FilterPolicy`` contract where a block is handed back as raw
    bytes and must answer probes again.
    """
    from repro import serial

    filt = serial.load_filter(data)
    if isinstance(filt, BloomRF):
        return BloomRFPolicy._wrap(filt)
    if isinstance(filt, BloomFilter):
        return BloomPolicy._wrap(filt)
    # ShardedBloomRF exposes the same probe surface as BloomRF, so the
    # generic adapter serves it directly.  A sharded block owns a worker
    # pool: call ``close()`` on the handle (or use it as a context
    # manager) when done, exactly like the filter itself.
    return _Handle(
        filt,
        filt.contains_point,
        filt.contains_range,
        filt.to_bytes,
        range_many=filt.contains_range_many,
        point_many=filt.contains_point_many,
    )


def load_handle(path: str | Path) -> FilterHandle:
    """Read a filter block written by :func:`save_handle`."""
    return handle_from_bytes(Path(path).read_bytes())


def policy_by_name(
    name: str, bits_per_key: float, max_range: int, seed: int | None = None
) -> FilterPolicy:
    """Factory used by the benchmark harness."""
    if name == "bloomrf":
        return BloomRFPolicy(bits_per_key, max_range=max_range)
    if name == "bloomrf-basic":
        return BloomRFPolicy(bits_per_key, max_range=max_range, basic=True)
    if name == "bloom":
        return BloomPolicy(bits_per_key)
    if name == "prefix-bloom":
        return PrefixBloomPolicy(bits_per_key, expected_range=max_range)
    if name == "rosetta":
        return RosettaPolicy(bits_per_key, max_range=max_range)
    if name == "surf":
        return SuRFPolicy(bits_per_key)
    if name == "none":
        return NoFilterPolicy()
    raise ValueError(f"unknown filter policy {name!r}")
