"""Filter policies: how SSTables build and consult their filter blocks.

Mirrors RocksDB's ``FilterPolicy`` extension described in Sect. 9: the policy
builds one full-filter block per SST from the SST's keys, (de)serializes it,
and answers point probes — extended here (as in the paper) with range probes
carrying the query's lower/upper bounds.

Since the :mod:`repro.api` redesign there is **one** policy class:
:class:`SpecPolicy`, driven by a :class:`~repro.api.FilterSpec`.  Every
registered filter kind (bloomRF basic/tuned, Bloom, Prefix-Bloom, Rosetta,
SuRF, Cuckoo, and "none") builds, serializes, deserializes, and — where the
kind supports word-level union — merges through it, with the exact same
:class:`FilterHandle` semantics and probe accounting the per-filter policy
classes used to provide.  The old class names (``BloomRFPolicy``, …) remain
importable as deprecated thin aliases for one release.

Every handle exposes bulk probe interfaces (``probe_point_many`` /
``probe_range_many``): filters with a vectorized path are wired through; the
rest fall back to a uniform scalar loop, so the DB's batched read paths work
against every kind.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Protocol, Sequence

import numpy as np

from repro._util import bulk_point_eval, bulk_range_eval
from repro.api import (
    FilterSpec,
    filter_from_bytes,
    make_filter,
    merge_filters,
    registered_kind,
    standard_spec,
)

__all__ = [
    "FilterHandle",
    "FilterPolicy",
    "SpecPolicy",
    "BloomRFPolicy",
    "BloomPolicy",
    "PrefixBloomPolicy",
    "RosettaPolicy",
    "SuRFPolicy",
    "NoFilterPolicy",
    "coerce_policy",
    "policy_by_name",
    "wrap_filter",
    "save_handle",
    "load_handle",
    "handle_from_bytes",
]


class FilterHandle(Protocol):
    """What the DB needs from a built filter block."""

    def probe_point(self, key: int) -> bool: ...

    def probe_point_many(self, keys: np.ndarray) -> np.ndarray: ...

    def probe_range(self, l_key: int, r_key: int) -> bool: ...

    def probe_range_many(self, bounds: np.ndarray) -> np.ndarray: ...

    @property
    def size_bits(self) -> int: ...

    def serialize(self) -> bytes: ...


class FilterPolicy(Protocol):
    name: str

    def build(self, keys: np.ndarray) -> FilterHandle: ...

    def deserialize(self, data: bytes) -> FilterHandle: ...


class _Handle:
    """Adapter turning any filter object into a :class:`FilterHandle`."""

    __slots__ = (
        "_filter",
        "_point",
        "_point_many",
        "_range",
        "_range_many",
        "_serialize",
    )

    def __init__(
        self, filt, point, range_, serialize, range_many=None, point_many=None
    ) -> None:
        self._filter = filt
        self._point = point
        self._point_many = point_many
        self._range = range_
        self._range_many = range_many
        self._serialize = serialize

    def probe_point(self, key: int) -> bool:
        return self._point(key)

    def probe_point_many(self, keys: np.ndarray) -> np.ndarray:
        """Batched point probe; falls back to a scalar loop when the
        underlying filter has no bulk interface."""
        if self._point_many is not None:
            return np.asarray(self._point_many(keys), dtype=bool)
        return bulk_point_eval(self._point, keys)

    def probe_range(self, l_key: int, r_key: int) -> bool:
        return self._range(l_key, r_key)

    def probe_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Batched range probe; falls back to a scalar loop when the
        underlying filter has no bulk interface."""
        if self._range_many is not None:
            return np.asarray(self._range_many(bounds), dtype=bool)
        return bulk_range_eval(self._range, bounds)

    @property
    def size_bits(self) -> int:
        return self._filter.size_bits

    def serialize(self) -> bytes:
        return self._serialize()

    # Lifecycle: most filters hold no resources, but a sharded block owns
    # a worker pool — close releases it (no-op otherwise).  Usable as a
    # context manager for the load-probe-discard pattern.
    def close(self) -> None:
        close = getattr(self._filter, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "_Handle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def wrap_filter(filt) -> FilterHandle:
    """Adapt any :class:`repro.api.RangeFilter` into a :class:`FilterHandle`.

    Bulk probe interfaces are wired through when the filter has them;
    otherwise the handle falls back to the uniform scalar loop.  The
    serialized form is the filter's own :mod:`repro.serial` frame.
    """
    return _Handle(
        filt,
        filt.contains_point,
        filt.contains_range,
        filt.to_bytes,
        range_many=getattr(filt, "contains_range_many", None),
        point_many=getattr(filt, "contains_point_many", None),
    )


class SpecPolicy:
    """The one spec-driven filter policy for every registered kind.

    ``SpecPolicy(FilterSpec("bloomrf", {"bits_per_key": 16}))`` or the
    shorthand ``SpecPolicy("bloomrf", bits_per_key=16)``.  ``build`` sizes
    the filter for the keys the SST actually holds (``n_keys`` is injected
    per build, so per-shard and per-run sizing come for free), inserts
    them through the kind's bulk path, and wraps the result in the uniform
    :class:`FilterHandle`.  ``deserialize`` rehydrates any registry frame;
    ``merge_handles`` word-unions same-config blocks for kinds that
    support it (bloomRF, Bloom) and returns None otherwise, so compaction
    can always fall back to rebuilding from keys.
    """

    def __init__(self, spec: FilterSpec | str, /, **params) -> None:
        if isinstance(spec, str):
            spec = FilterSpec(spec, params)
        elif params:
            raise TypeError(
                "pass parameters either inside the FilterSpec or as keyword "
                "arguments next to a kind string, not both"
            )
        if not isinstance(spec, FilterSpec):
            raise TypeError(
                f"SpecPolicy needs a FilterSpec or a kind string, got "
                f"{type(spec).__name__}"
            )
        if registered_kind(spec.kind).build is None:
            raise ValueError(
                f"filter kind {spec.kind!r} cannot back an SST filter policy"
            )
        self.spec = spec
        self.name = spec.kind

    def build(self, keys: np.ndarray) -> FilterHandle:
        keys = np.asarray(keys, dtype=np.uint64)
        filt = make_filter(self.spec, n_keys=max(int(keys.size), 1))
        filt.insert_many(keys)
        return wrap_filter(filt)

    def deserialize(self, data: bytes) -> FilterHandle:
        return handle_from_bytes(data)

    def merge_handles(
        self, handles: Sequence[FilterHandle]
    ) -> FilterHandle | None:
        """Union same-config filter blocks into one (compaction fast path).

        Returns None when the blocks are not mergeable — the kind has no
        word-level union, or the configs differ (e.g. runs of different
        sizes were tuned differently) — in which case the caller rebuilds
        from keys.  The union indexes every key any operand indexed, so it
        stays sound for the merged run (it may keep bits of dropped
        versions — a few extra false positives, never a false negative).
        """
        filters = [getattr(handle, "_filter", None) for handle in handles]
        if not filters or any(f is None for f in filters):
            return None
        merged = merge_filters(self.spec.kind, filters)
        return wrap_filter(merged) if merged is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpecPolicy({self.spec!r})"


def coerce_policy(policy) -> FilterPolicy:
    """Normalize a policy argument: spec -> SpecPolicy, None -> "none"."""
    if policy is None:
        return SpecPolicy("none")
    if isinstance(policy, FilterSpec):
        return SpecPolicy(policy)
    return policy


# ----------------------------------------------------------------------
# deprecated per-filter policy aliases (one release of compatibility)
# ----------------------------------------------------------------------
def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (see repro.api)",
        DeprecationWarning,
        stacklevel=3,
    )


class BloomRFPolicy(SpecPolicy):
    """Deprecated: use ``SpecPolicy("bloomrf", ...)``."""

    def __init__(
        self,
        bits_per_key: float,
        max_range: int = 1 << 40,
        basic: bool = False,
        seed: int = 0x5EED,
    ) -> None:
        _warn_deprecated("BloomRFPolicy", "SpecPolicy('bloomrf', ...)")
        if basic:
            super().__init__(
                "bloomrf-basic", bits_per_key=bits_per_key, seed=seed
            )
        else:
            super().__init__(
                "bloomrf",
                bits_per_key=bits_per_key,
                max_range=max_range,
                seed=seed,
            )


class BloomPolicy(SpecPolicy):
    """Deprecated: use ``SpecPolicy("bloom", ...)``."""

    def __init__(self, bits_per_key: float, seed: int = 0xB10F) -> None:
        _warn_deprecated("BloomPolicy", "SpecPolicy('bloom', ...)")
        super().__init__("bloom", bits_per_key=bits_per_key, seed=seed)


class PrefixBloomPolicy(SpecPolicy):
    """Deprecated: use ``SpecPolicy("prefix-bloom", ...)``."""

    def __init__(
        self, bits_per_key: float, expected_range: int, seed: int = 0x9F1
    ) -> None:
        _warn_deprecated("PrefixBloomPolicy", "SpecPolicy('prefix-bloom', ...)")
        super().__init__(
            "prefix-bloom",
            bits_per_key=bits_per_key,
            expected_range=expected_range,
            seed=seed,
        )


class RosettaPolicy(SpecPolicy):
    """Deprecated: use ``SpecPolicy("rosetta", ...)``."""

    def __init__(
        self, bits_per_key: float, max_range: int, seed: int = 0x0E77A
    ) -> None:
        _warn_deprecated("RosettaPolicy", "SpecPolicy('rosetta', ...)")
        super().__init__(
            "rosetta",
            bits_per_key=bits_per_key,
            max_range=max_range,
            seed=seed,
        )


class SuRFPolicy(SpecPolicy):
    """Deprecated: use ``SpecPolicy("surf", ...)``."""

    def __init__(
        self,
        bits_per_key: float,
        suffix_mode: str = "real",
        seed: int = 0x50F1,
    ) -> None:
        _warn_deprecated("SuRFPolicy", "SpecPolicy('surf', ...)")
        super().__init__(
            "surf",
            bits_per_key=bits_per_key,
            suffix_mode=suffix_mode,
            seed=seed,
        )


class NoFilterPolicy(SpecPolicy):
    """Deprecated: use ``SpecPolicy("none")``."""

    def __init__(self) -> None:
        _warn_deprecated("NoFilterPolicy", "SpecPolicy('none')")
        super().__init__("none")


# ----------------------------------------------------------------------
# handle-level persistence (SST filter blocks on disk)
# ----------------------------------------------------------------------
def save_handle(handle: FilterHandle, path: str | Path) -> Path:
    """Write a built filter block to ``path`` in the framed format."""
    data = handle.serialize()
    if not data:
        raise ValueError(
            "this filter block has no persisted serialization format"
        )
    path = Path(path)
    path.write_bytes(data)
    return path


def handle_from_bytes(data: bytes) -> FilterHandle:
    """Rehydrate a serialized filter block into a probe-ready handle.

    Dispatches through the :mod:`repro.api` registry, so one loader serves
    every registered kind — the reader side of RocksDB's ``FilterPolicy``
    contract where a block is handed back as raw bytes and must answer
    probes again.  A sharded block owns a worker pool: call ``close()`` on
    the handle (or use it as a context manager) when done.
    """
    return wrap_filter(filter_from_bytes(data))


def load_handle(path: str | Path) -> FilterHandle:
    """Read a filter block written by :func:`save_handle`."""
    return handle_from_bytes(Path(path).read_bytes())


def policy_by_name(
    name: str, bits_per_key: float, max_range: int, seed: int | None = None
) -> SpecPolicy:
    """Factory used by the benchmark harness and CLI.

    Maps the shared sweep knobs onto the kind's native parameters through
    :func:`repro.api.standard_spec` — every registered kind is accepted.
    """
    return SpecPolicy(
        standard_spec(
            name, bits_per_key=bits_per_key, max_range=max_range, seed=seed
        )
    )
