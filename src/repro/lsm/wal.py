"""Write-ahead log for the persistent LSM engines — the durability gap closer.

PR 5 made flushed runs crash-safe; the memtable stayed volatile.  This
module closes that gap the way RocksDB does: every write API call appends
its operations to an append-only, checksummed log *before* the memtable
mutates, so an acknowledged ``put``/``delete`` survives ``kill -9`` — on
reopen the log is replayed into a fresh memtable and the store answers
exactly as the never-killed store would.

On-disk layout (``WAL.brf`` inside the store directory)::

    +--------------------------------------------------+
    | KIND_WAL frame  {"seal": <hex>, "epoch": <int>}  |  header (atomic)
    +--------------------------------------------------+
    | u32 length | u32 crc32(body) | body              |  record 0
    | u32 length | u32 crc32(body) | body              |  record 1
    | ...                                              |
    +--------------------------------------------------+

    body = u8 op | u32 count | count x u64 keys
           [op 1: count x u32 value lengths | value blob]

    op 1 = put with values, 2 = delete (tombstones), 3 = put (empty values)

The header frame is only ever written whole via write-temp + ``os.replace``
(creation and rotation), so it is never torn; records are appended with one
``os.write`` each, so a crash mid-append leaves a *prefix* of a record at
the tail.  The reader (:func:`read_wal`) therefore recovers silently from a
torn tail — truncate to the last complete record — while any *non-tail*
damage (a complete record whose CRC fails, a malformed body) raises
:class:`~repro.serial.SerialError` naming the file and byte offset: a torn
write is the expected crash artifact, a mid-file flip is corruption.

Seal and epoch
--------------
Each store directory's log carries a random ``seal`` minted at creation and
pinned in the store manifest — a log restored from a *different* store (or
swapped between shard directories) fails the seal check loudly instead of
replaying foreign keys.  The ``epoch`` orders the log against the manifest:
``flush()`` persists the drained memtable as a run, writes the manifest with
``epoch + 1``, then resets the log to the new epoch.  On reopen a log at the
manifest's epoch replays; an *older* log is the crash window between those
two steps (its records are already durable in runs) and is discarded
silently; a *newer* log means the manifest went backwards — corruption.

Group commit
------------
``sync="always"`` fsyncs at the end of every write API call; ``"batch"``
fsyncs once every ``group_commit`` logged operations (the RocksDB group
commit trade: bounded post-power-loss window, a fraction of the fsyncs);
``"off"`` never fsyncs.  In *all* modes the record bytes reach the kernel
before the API call returns, so acknowledged writes survive process death
(``kill -9``) even at ``sync="off"`` — the fsync policy only sizes the
window lost to power failure.

Ack barrier
-----------
Bookkeeping is sequence-based and thread-safe: every appended operation
advances a monotonic sequence (:attr:`last_seq`), and every fsync records
the highest sequence it covered (:attr:`synced_seq`).  A caller that must
know its record is durable against power loss — the serving layer acks a
write group only at its covering group commit — calls
:meth:`commit_barrier` with the sequence its append returned: it returns
immediately when a concurrent fsync already covered the record and
otherwise becomes the group-commit leader, issuing one fsync that covers
every record appended so far.  The old single-writer counter reset
(``_pending_ops = 0`` inside the fsync) could lose a concurrent
appender's pending count and leave its record unsynced forever in batch
mode; ``synced_seq = max(synced_seq, covered)`` cannot.

This module is part of the typed beachhead (``mypy --strict`` in CI) and
its write paths are machine-checked by ``repro lint``: raw writes stay
inside the append helpers (``durability-discipline``), and engines must
append here *before* mutating their memtable (``wal-ordering``).
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.serial import KIND_WAL, SerialError, pack_frame, unpack_frame_prefix

__all__ = ["WAL_NAME", "WalRecord", "WriteAheadLog", "read_wal"]

WAL_NAME = "WAL.brf"

OP_PUT = 1
OP_DELETE = 2
OP_PUT_EMPTY = 3

_SYNC_MODES = ("always", "batch", "off")
_RECORD_PREFIX = struct.Struct("<II")  # body length, body crc32


class WalRecord:
    """One logged operation batch: op code, keys, aligned values (puts)."""

    __slots__ = ("op", "keys", "values")

    def __init__(
        self, op: int, keys: npt.NDArray[np.uint64], values: list[bytes] | None
    ) -> None:
        self.op = op
        self.keys = keys
        self.values = values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WalRecord(op={self.op}, keys={self.keys.size})"


def _encode_record(
    op: int, keys: npt.NDArray[np.uint64], values: list[bytes] | None
) -> bytes:
    parts = [
        bytes([op]),
        int(keys.size).to_bytes(4, "little"),
        np.ascontiguousarray(keys, dtype="<u8").tobytes(),
    ]
    if op == OP_PUT:
        assert values is not None  # append_put routes value-less puts away
        lengths = np.fromiter(
            (len(v) for v in values), dtype="<u4", count=len(values)
        )
        parts.append(lengths.tobytes())
        parts.append(b"".join(values))
    body = b"".join(parts)
    return _RECORD_PREFIX.pack(len(body), zlib.crc32(body)) + body


def _decode_body(body: bytes, where: str, offset: int) -> WalRecord:
    def bad(detail: str) -> SerialError:
        return SerialError(
            f"corrupt write-ahead log {where}: {detail} in the record at "
            f"byte offset {offset}"
        )

    if len(body) < 5:
        raise bad(f"body of {len(body)} bytes is too short")
    op = body[0]
    if op not in (OP_PUT, OP_DELETE, OP_PUT_EMPTY):
        raise bad(f"unknown operation code {op}")
    count = int.from_bytes(body[1:5], "little")
    cursor = 5
    keys_end = cursor + 8 * count
    if keys_end > len(body):
        raise bad(f"key array for {count} keys overruns the body")
    keys = np.frombuffer(body[cursor:keys_end], dtype="<u8").astype(np.uint64)
    values: list[bytes] | None = None
    if op == OP_PUT:
        lengths_end = keys_end + 4 * count
        if lengths_end > len(body):
            raise bad(f"value index for {count} values overruns the body")
        lengths = np.frombuffer(body[keys_end:lengths_end], dtype="<u4")
        blob = body[lengths_end:]
        if int(lengths.sum()) != len(blob):
            raise bad("value index does not match the value blob")
        offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(lengths.astype(np.int64), out=offsets[1:])
        values = [bytes(blob[offsets[i] : offsets[i + 1]]) for i in range(count)]
    elif len(body) != keys_end:
        raise bad(f"{len(body) - keys_end} trailing bytes after the key array")
    return WalRecord(op, keys, values)


def read_wal(path: str | Path) -> tuple[dict[str, Any], list[WalRecord], int, bool]:
    """Parse a log file into ``(header, records, valid_end, torn)``.

    ``valid_end`` is the byte offset of the last complete record's end —
    the truncation point when ``torn`` is True (the file ends mid-record,
    the expected artifact of a crash during an append).  Damage *before*
    the tail — a complete record failing its CRC, a malformed body, a
    broken header frame — raises :class:`SerialError` naming the file and
    the record's byte offset.
    """
    path = Path(path)
    data = path.read_bytes()
    try:
        header, payloads, cursor = unpack_frame_prefix(
            data, 0, expect_kind=KIND_WAL
        )
    except SerialError as exc:
        raise SerialError(f"corrupt write-ahead log {path}: {exc}") from exc
    if payloads:
        raise SerialError(
            f"corrupt write-ahead log {path}: header frame carries "
            f"{len(payloads)} payloads, expected 0"
        )
    records: list[WalRecord] = []
    valid_end = cursor
    torn = False
    total = len(data)
    while cursor < total:
        if cursor + _RECORD_PREFIX.size > total:
            torn = True
            break
        length, crc = _RECORD_PREFIX.unpack_from(data, cursor)
        body_start = cursor + _RECORD_PREFIX.size
        if body_start + length > total:
            torn = True
            break
        body = data[body_start : body_start + length]
        if zlib.crc32(body) != crc:
            raise SerialError(
                f"corrupt write-ahead log {path}: checksum mismatch in the "
                f"record at byte offset {cursor} (the log was altered after "
                "it was written)"
            )
        records.append(_decode_body(body, str(path), cursor))
        cursor = body_start + length
        valid_end = cursor
    return header, records, valid_end, torn


def _header_field(header: dict[str, Any], name: str, path: Path) -> Any:
    try:
        return header[name]
    except (KeyError, TypeError):
        raise SerialError(
            f"corrupt write-ahead log {path}: header is missing field "
            f"{name!r}"
        ) from None


class WriteAheadLog:
    """Append-only operation log for one :class:`PersistentLsmDB` directory.

    Construct through :meth:`create` (fresh header-only log, atomic) or
    :meth:`attach` (an existing log after :func:`read_wal`, truncating a
    torn tail).  Appends write one framed record per call via ``os.write``
    on an ``O_APPEND`` descriptor; :meth:`commit` applies the fsync policy
    at write-API-call boundaries; :meth:`reset` rotates to a new epoch
    (flush truncation).
    """

    def __init__(
        self,
        path: Path,
        *,
        seal: str,
        epoch: int,
        sync: str = "batch",
        group_commit: int = 1024,
        _size: int = 0,
        _records: int = 0,
    ) -> None:
        if sync not in _SYNC_MODES:
            raise ValueError(
                f"wal_sync must be one of {_SYNC_MODES}, got {sync!r}"
            )
        if group_commit < 1:
            raise ValueError(
                f"wal_group_commit must be >= 1, got {group_commit}"
            )
        self.path = Path(path)
        self.seal = seal
        self.epoch = epoch
        self.sync_mode = sync
        self.group_commit = group_commit
        self.size_bytes = _size
        self.num_records = _records
        self.fsyncs = 0
        self.bytes_written = 0
        self.records_appended = 0
        # Sequence-based fsync accounting (thread-safe): ``_append_seq``
        # counts every operation ever appended, ``_synced_seq`` the
        # highest operation sequence covered by an fsync (or made
        # redundant by rotation).  ``_state_lock`` guards the bookkeeping
        # and serializes the appends themselves; ``_sync_lock`` elects a
        # group-commit leader so concurrent barriers issue one fsync.
        self._append_seq = 0
        self._synced_seq = 0
        self._state_lock = threading.Lock()
        self._sync_lock = threading.Lock()
        self._fd: int | None = os.open(self.path, os.O_WRONLY | os.O_APPEND)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def _header_blob(seal: str, epoch: int) -> bytes:
        return pack_frame(KIND_WAL, {"seal": seal, "epoch": epoch})

    @classmethod
    def _write_header_file(cls, path: Path, seal: str, epoch: int) -> int:
        """Atomically (re)place ``path`` with a header-only log.

        Write-temp + ``os.replace`` + directory fsync: the header frame is
        never observable torn, and rotation never exposes a log that mixes
        the old epoch's records with the new epoch's header.
        """
        blob = cls._header_blob(seal, epoch)
        tmp = path.with_name(path.name + ".tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, blob)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        return len(blob)

    @classmethod
    def create(
        cls,
        path: str | Path,
        *,
        seal: str,
        epoch: int = 0,
        sync: str = "batch",
        group_commit: int = 1024,
    ) -> "WriteAheadLog":
        """A fresh (or reset-over-stale) header-only log at ``path``."""
        path = Path(path)
        size = cls._write_header_file(path, seal, epoch)
        return cls(
            path,
            seal=seal,
            epoch=epoch,
            sync=sync,
            group_commit=group_commit,
            _size=size,
        )

    @classmethod
    def attach(
        cls,
        path: str | Path,
        *,
        seal: str,
        epoch: int,
        valid_end: int,
        num_records: int,
        torn: bool,
        sync: str = "batch",
        group_commit: int = 1024,
    ) -> "WriteAheadLog":
        """Adopt an existing log after :func:`read_wal`, cutting a torn tail."""
        path = Path(path)
        if torn:
            fd = os.open(path, os.O_WRONLY)
            try:
                os.ftruncate(fd, valid_end)
                os.fsync(fd)
            finally:
                os.close(fd)
        return cls(
            path,
            seal=seal,
            epoch=epoch,
            sync=sync,
            group_commit=group_commit,
            _size=valid_end,
            _records=num_records,
        )

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def append_put(
        self, keys: npt.NDArray[np.uint64], values: list[bytes] | None = None
    ) -> int:
        """Log a put batch.  Returns only once the record reached the
        kernel (one ``os.write``), which is the acknowledgement point.
        The returned sequence feeds :meth:`commit_barrier`."""
        if values is None or not any(values):
            return self._append(OP_PUT_EMPTY, keys, None)
        return self._append(OP_PUT, keys, values)

    def append_delete(self, keys: npt.NDArray[np.uint64]) -> int:
        """Log a tombstone batch; returns the batch's barrier sequence."""
        return self._append(OP_DELETE, keys, None)

    def _append(
        self, op: int, keys: npt.NDArray[np.uint64], values: list[bytes] | None
    ) -> int:
        record = _encode_record(op, keys, values)
        with self._state_lock:
            if self._fd is None:
                raise ValueError(f"write-ahead log {self.path} is closed")
            os.write(self._fd, record)
            self.size_bytes += len(record)
            self.bytes_written += len(record)
            self.num_records += 1
            self.records_appended += 1
            self._append_seq += int(keys.size)
            seq = self._append_seq
        if (
            self.sync_mode == "batch"
            and seq - self._synced_seq >= self.group_commit
        ):
            self._fsync_upto(seq)
        return seq

    @property
    def last_seq(self) -> int:
        """Sequence of the most recently appended operation."""
        return self._append_seq

    @property
    def synced_seq(self) -> int:
        """Highest operation sequence covered by an fsync (or rotation)."""
        return self._synced_seq

    @property
    def pending_ops(self) -> int:
        """Appended operations not yet covered by an fsync."""
        return self._append_seq - self._synced_seq

    def commit(self) -> None:
        """Apply the fsync policy at a write-API-call boundary."""
        target = self._append_seq
        if target == self._synced_seq:
            return
        if self.sync_mode == "always" or (
            self.sync_mode == "batch"
            and target - self._synced_seq >= self.group_commit
        ):
            self._fsync_upto(target)

    def commit_barrier(self, seq: int | None = None) -> None:
        """Block until an fsync covers the record at ``seq``.

        ``seq`` is a sequence returned by an append helper (default: the
        newest appended record).  Returns immediately when that record is
        already covered — by a group commit another caller led, or by a
        rotation that made it redundant.  Otherwise this caller becomes
        the group-commit leader: one fsync covers every record appended
        so far, and concurrent barriers piggyback on it.  ``sync="off"``
        opts out of power-loss durability entirely, so the barrier is a
        no-op there (process-death durability still holds: the record
        bytes reached the kernel before the append returned).
        """
        if self.sync_mode == "off":
            return
        target = self._append_seq if seq is None else seq
        if self._synced_seq >= target:
            return
        self._fsync_upto(target)

    def _fsync_upto(self, target: int) -> None:
        with self._sync_lock:
            if self._synced_seq >= target:
                return  # a concurrent leader's fsync already covered us
            fd = self._fd
            if fd is None:
                raise ValueError(f"write-ahead log {self.path} is closed")
            covered = self._append_seq
            os.fsync(fd)
            self.fsyncs += 1
            with self._state_lock:
                if covered > self._synced_seq:
                    self._synced_seq = covered

    # ------------------------------------------------------------------
    # rotation / lifecycle
    # ------------------------------------------------------------------
    def reset(self, epoch: int) -> None:
        """Rotate: replace the log with a header-only file at ``epoch``.

        Called by ``flush()`` *after* the new manifest (carrying the same
        epoch) is durable, so a crash at any point reopens consistently:
        before the replace, the old log replays against the old manifest;
        after it, the empty log matches the new one.
        """
        with self._state_lock:
            if self._fd is not None:
                os.close(self._fd)
            self.size_bytes = self._write_header_file(
                self.path, self.seal, epoch
            )
            self.epoch = epoch
            self.num_records = 0
            # The truncated records are durable in the just-persisted
            # runs, so every outstanding barrier is satisfied; sequences
            # stay monotonic so tokens handed out earlier remain valid.
            self._synced_seq = self._append_seq
            self._fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)

    def close(self) -> None:
        if self._fd is None:
            return
        if self.pending_ops and self.sync_mode != "off":
            self._fsync_upto(self._append_seq)
        with self._state_lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def info(self) -> dict[str, Any]:
        """WAL state for ``repro store inspect`` / ``wal_info()``."""
        return {
            "sync": self.sync_mode,
            "group_commit": self.group_commit,
            "epoch": self.epoch,
            "records": self.num_records,
            "bytes": self.size_bytes,
            "fsyncs": self.fsyncs,
            "pending_ops": self.pending_ops,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WriteAheadLog({str(self.path)!r}, epoch={self.epoch}, "
            f"records={self.num_records}, sync={self.sync_mode!r})"
        )
