"""Sorted String Table: sorted keys, values, block layout, fences, filter.

Matches the paper's setup: compaction-disabled L0, block-based table format,
512-byte values, one *full filter block* per SST built through the filter
policy, plus per-block fence pointers (min/max).  Values may be stored
(real KV mode) or left virtual (benchmark mode) — either way their size
fixes how many entries share a 4-KB block and hence how filter decisions
translate into block reads.

Tombstones ride along as a flag array: the filter indexes tombstoned keys
too (a filter cannot un-insert), so a probe may return "maybe" for a deleted
key — the block read then resolves it, exactly like RocksDB.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.baselines.fence import FencePointers
from repro.lsm.filter_policy import FilterHandle, FilterPolicy
from repro.lsm.iostats import IOStats, SimulatedDevice

__all__ = ["SSTable"]

_KEY_BYTES = 8


class SSTable:
    """One immutable sorted run with filter + fences (+ optional payload)."""

    def __init__(
        self,
        keys: np.ndarray,
        policy: FilterPolicy,
        values: "Sequence[bytes] | None" = None,
        tombstones: np.ndarray | None = None,
        value_bytes: int = 512,
        block_bytes: int = 4096,
        prebuilt_filter: FilterHandle | None = None,
        prebuilt_block: bytes | None = None,
    ) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            raise ValueError("an SSTable needs at least one key")
        if np.any(keys[1:] < keys[:-1]):
            raise ValueError("SSTable keys must be sorted")
        if values is not None and len(values) != keys.size:
            raise ValueError("values must align with keys")
        if tombstones is not None and len(tombstones) != keys.size:
            raise ValueError("tombstones must align with keys")
        self.keys = keys
        self.values = values
        self.tombstones = (
            np.asarray(tombstones, dtype=bool)
            if tombstones is not None
            else np.zeros(keys.size, dtype=bool)
        )
        self.value_bytes = value_bytes
        self.block_bytes = block_bytes
        self.entries_per_block = max(1, block_bytes // (_KEY_BYTES + value_bytes))
        # Sortedness was just validated above; skip the fence re-check.
        self.fences = FencePointers.build(
            keys, block_size=self.entries_per_block, presorted=True
        )
        start = time.perf_counter()
        if prebuilt_filter is not None:
            # Compaction hands over a merged (word-unioned) filter block: it
            # indexes a superset of ``keys``, so soundness is preserved and
            # no key is re-hashed.  Build time only covers the hand-off.
            self.filter: FilterHandle = prebuilt_filter
        else:
            self.filter = policy.build(keys)
        self.build_time_s = time.perf_counter() - start
        start = time.perf_counter()
        # A store reopen hands the block bytes straight from disk next to
        # the deserialized handle — re-serializing them would only redo
        # (and re-charge) work whose result is already in hand.
        self.filter_block = (
            prebuilt_block
            if prebuilt_block is not None
            else self.filter.serialize()
        )
        self.serialize_time_s = time.perf_counter() - start

    # ------------------------------------------------------------------
    @property
    def num_keys(self) -> int:
        return int(self.keys.size)

    @property
    def num_live_keys(self) -> int:
        return int(self.keys.size - np.sum(self.tombstones))

    @property
    def min_key(self) -> int:
        return int(self.keys[0])

    @property
    def max_key(self) -> int:
        return int(self.keys[-1])

    # ------------------------------------------------------------------
    # probe paths (stats-instrumented)
    # ------------------------------------------------------------------
    def get(self, key: int, stats: IOStats, device: SimulatedDevice):
        """Point lookup: filter -> fences -> block read -> binary search.

        Returns ``(found_entry, value_or_None, is_tombstone)`` where
        ``found_entry`` says whether this SST holds *any* version of key.
        """
        index = self._index_of(key)
        truly_present = index is not None
        start = time.perf_counter()
        positive = self.filter.probe_point(key)
        stats.filter_cpu_s += time.perf_counter() - start
        stats.record_probe(positive, truly_present)
        assert positive or not truly_present, "filter produced a false negative"
        if not positive:
            return False, None, False
        blocks = self.fences.blocks_for_point(key)
        if not blocks:
            return False, None, False  # fences prune the FP without I/O
        stats.blocks_read += len(blocks)
        stats.io_wait_s += len(blocks) * device.read_latency_s
        if index is None:
            return False, None, False
        if self.tombstones[index]:
            return True, None, True
        value = self.values[index] if self.values is not None else b""
        return True, value, False

    def scan(
        self, l_key: int, r_key: int, stats: IOStats, device: SimulatedDevice
    ) -> bool:
        """Range emptiness probe: range filter -> fences -> block reads.

        True when this SST holds any entry (live or tombstone) in range —
        versions are reconciled by the DB's merging scan.
        """
        truly_present = self._has_entry_in_range(l_key, r_key)
        start = time.perf_counter()
        positive = self.filter.probe_range(l_key, r_key)
        stats.filter_cpu_s += time.perf_counter() - start
        stats.record_probe(positive, truly_present)
        assert positive or not truly_present, "filter produced a false negative"
        if not positive:
            return False
        blocks = self.fences.blocks_for_range(l_key, r_key)
        if not blocks:
            return False
        stats.blocks_read += len(blocks)
        stats.io_wait_s += len(blocks) * device.read_latency_s
        return truly_present

    def get_many(
        self, keys: np.ndarray, stats: IOStats, device: SimulatedDevice
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`get` presence check: one filter probe batch per SST.

        Returns ``(found, tombstone)`` boolean arrays — ``found[i]`` says
        this SST holds *some* version of ``keys[i]``; value retrieval stays
        on the scalar path.  The filter block is consulted once for the
        whole batch through its bulk interface; fences and block reads are
        charged per filter-positive key with the same accounting as the
        scalar :meth:`get` (asserted by the tests).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        n = keys.size
        found = np.zeros(n, dtype=bool)
        tombstone = np.zeros(n, dtype=bool)
        if n == 0:
            return found, tombstone
        positive, idx, truly_present = self._probe_filter_points(keys, stats)
        for i in np.nonzero(positive)[0]:
            blocks = self.fences.blocks_for_point(int(keys[i]))
            if not blocks:
                continue  # fences prune the FP without I/O
            stats.blocks_read += len(blocks)
            stats.io_wait_s += len(blocks) * device.read_latency_s
            if truly_present[i]:
                found[i] = True
                tombstone[i] = self.tombstones[idx[i]]
        return found, tombstone

    def probe_filter_points_many(
        self, keys: np.ndarray, stats: IOStats
    ) -> np.ndarray:
        """Batched filter-block point probe: pure filter CPU, no I/O.

        The point counterpart of :meth:`probe_filter_many` — consults the
        filter once for the whole key batch and records the probe outcomes
        against ground truth; fences and block reads are left to the caller.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        positive, _, _ = self._probe_filter_points(keys, stats)
        return positive

    def _probe_filter_points(
        self, keys: np.ndarray, stats: IOStats
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared stats-charged bulk point probe.

        Returns ``(positive, sorted_index, truly_present)`` where
        ``sorted_index[i]`` locates ``keys[i]`` in the sorted key array when
        ``truly_present[i]``.
        """
        idx = np.searchsorted(self.keys, keys)
        safe = np.minimum(idx, self.keys.size - 1)
        truly_present = (idx < self.keys.size) & (self.keys[safe] == keys)
        start = time.perf_counter()
        positive = self.filter.probe_point_many(keys)
        stats.filter_cpu_s += time.perf_counter() - start
        stats.record_probes(positive, truly_present)
        assert not np.any(truly_present & ~positive), (
            "filter produced a false negative"
        )
        return positive, idx, truly_present

    def probe_filter_many(
        self, bounds: np.ndarray, stats: IOStats
    ) -> np.ndarray:
        """Batched filter-block range probe: pure filter CPU, no I/O.

        Consults this SST's range filter once for the whole batch through
        its bulk interface and records the probe outcomes against ground
        truth; fences and block reads are left to the caller.
        """
        bounds = np.asarray(bounds, dtype=np.uint64)
        if bounds.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        idx = np.searchsorted(self.keys, bounds[:, 0])
        truly_present = (idx < self.keys.size) & (
            self.keys[np.minimum(idx, self.keys.size - 1)] <= bounds[:, 1]
        )
        start = time.perf_counter()
        positive = self.filter.probe_range_many(bounds)
        stats.filter_cpu_s += time.perf_counter() - start
        stats.record_probes(positive, truly_present)
        assert not np.any(truly_present & ~positive), (
            "filter produced a false negative"
        )
        return positive

    def scan_many(
        self, bounds: np.ndarray, stats: IOStats, device: SimulatedDevice
    ) -> np.ndarray:
        """Batched :meth:`scan`: one filter-block probe batch per SST.

        Returns a boolean array (one entry per query) with the same
        semantics and stats accounting as the scalar path; the range filter
        is consulted once for the whole batch through its bulk interface.
        """
        bounds = np.asarray(bounds, dtype=np.uint64)
        n = bounds.shape[0]
        if n == 0:
            return np.zeros(0, dtype=bool)
        positive = self.probe_filter_many(bounds, stats)
        lo = bounds[:, 0]
        hi = bounds[:, 1]
        out = np.zeros(n, dtype=bool)
        for i in np.nonzero(positive)[0]:
            blocks = self.fences.blocks_for_range(int(lo[i]), int(hi[i]))
            if not blocks:
                continue
            stats.blocks_read += len(blocks)
            stats.io_wait_s += len(blocks) * device.read_latency_s
            out[i] = self._has_entry_in_range(int(lo[i]), int(hi[i]))
        return out

    def entries_in_range(self, l_key: int, r_key: int):
        """Yield ``(key, value, is_tombstone)`` for entries in range, sorted."""
        lo = int(np.searchsorted(self.keys, np.uint64(l_key)))
        hi = int(np.searchsorted(self.keys, np.uint64(r_key), side="right"))
        for index in range(lo, hi):
            value = self.values[index] if self.values is not None else b""
            yield int(self.keys[index]), value, bool(self.tombstones[index])

    # ------------------------------------------------------------------
    # exact helpers (ground truth for stats; also the "block read" result)
    # ------------------------------------------------------------------
    def _index_of(self, key: int) -> int | None:
        idx = int(np.searchsorted(self.keys, np.uint64(key)))
        if idx < self.keys.size and int(self.keys[idx]) == key:
            return idx
        return None

    def _has_entry_in_range(self, l_key: int, r_key: int) -> bool:
        idx = int(np.searchsorted(self.keys, np.uint64(l_key)))
        return idx < self.keys.size and int(self.keys[idx]) <= r_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SSTable(keys={self.num_keys}, live={self.num_live_keys}, "
            f"blocks={self.fences.num_blocks}, filter_bits={self.filter.size_bits})"
        )
