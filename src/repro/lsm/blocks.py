"""Per-block payload compression and the decompressed-block cache.

Version-2 :data:`~repro.serial.KIND_SSTABLE` frames split each payload
(keys, tombstone bitmap, value lengths, value blob) into fixed-size
blocks, compress each block independently, and record a *block table* —
``[compressed_len, crc32], ...`` per payload — in the frame header.
Independent blocks are what make the read tier lazy: a point lookup
decompresses only the one value block it touches, the CRC is verified on
that block alone, and the result lands in a small shared
:class:`BlockCache` so hot ranges pay the decompression once
("A Case for Partitioned Bloom Filters" makes the same block-locality
argument for the filters themselves).

Codecs: ``zlib`` is stdlib and always available; ``zstd`` rides on the
optional ``zstandard`` package (the ``repro[zstd]`` extra) and fails
loudly — never silently falls back — when asked for but not installed.

Corruption in a compressed block is detected *before* its bytes are
returned: every block's CRC32 (over the stored, compressed bytes) is
checked on first access, and any mismatch — as well as a block table
whose lengths disagree with the payload — raises
:class:`~repro.serial.SerialError` naming the file, payload, block, and
offset.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from collections.abc import Callable, Iterator
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.serial import SerialError

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "DEFAULT_CACHE_BYTES",
    "available_codecs",
    "normalize_compression",
    "require_codec",
    "compress_payload",
    "decompress_payload",
    "BlockCache",
    "BlockedPayload",
    "SlicedValues",
]

DEFAULT_BLOCK_BYTES = 1 << 16  # 64 KiB raw bytes per compressed block
DEFAULT_CACHE_BYTES = 8 << 20  # decompressed-block budget per store

_CODEC_NAMES = ("zlib", "zstd")


def _zstd_module() -> Any:
    try:
        import zstandard
    except ImportError:
        return None
    return zstandard


def available_codecs() -> list[str]:
    """Codec names usable in this environment (``zlib`` always is)."""
    codecs = ["zlib"]
    if _zstd_module() is not None:
        codecs.append("zstd")
    return codecs


def require_codec(codec: str) -> str:
    if codec not in _CODEC_NAMES:
        raise ValueError(
            f"unknown compression codec {codec!r} "
            f"(known codecs: {', '.join(_CODEC_NAMES)})"
        )
    if codec == "zstd" and _zstd_module() is None:
        raise ValueError(
            "the 'zstd' codec requires the optional 'zstandard' package "
            "(install the repro[zstd] extra); 'zlib' needs nothing"
        )
    return codec


def _compressor(codec: str) -> Callable[[bytes | memoryview], bytes]:
    require_codec(codec)
    if codec == "zlib":
        return lambda raw: zlib.compress(bytes(raw), 6)
    cctx = _zstd_module().ZstdCompressor()

    def compress(raw: bytes | memoryview) -> bytes:
        comp: bytes = cctx.compress(bytes(raw))
        return comp

    return compress


def _decompressor(codec: str) -> Callable[[bytes | memoryview, int], bytes]:
    require_codec(codec)
    if codec == "zlib":
        return lambda comp, raw_len: zlib.decompress(comp)
    dctx = _zstd_module().ZstdDecompressor()

    def decompress(comp: bytes | memoryview, raw_len: int) -> bytes:
        raw: bytes = dctx.decompress(comp, max_output_size=raw_len)
        return raw

    return decompress


def normalize_compression(compression: object) -> dict[str, Any] | None:
    """Coerce an ``open_store(compression=...)`` argument to canonical form.

    ``None`` means uncompressed; a codec name string means that codec at
    :data:`DEFAULT_BLOCK_BYTES`; a dict may pin ``codec`` and
    ``block_bytes``.  The canonical dict is what the store manifest
    persists in its geometry, so reopen can cross-check it against every
    run frame.
    """
    if compression is None or compression is False:
        return None
    if isinstance(compression, str):
        spec = {"codec": compression, "block_bytes": DEFAULT_BLOCK_BYTES}
    elif isinstance(compression, dict):
        unknown = set(compression) - {"codec", "block_bytes"}
        if unknown:
            raise ValueError(
                f"unknown compression option(s) {sorted(unknown)} "
                "(expected 'codec' and optionally 'block_bytes')"
            )
        if "codec" not in compression:
            raise ValueError("compression dict needs a 'codec' entry")
        spec = {
            "codec": compression["codec"],
            "block_bytes": int(compression.get("block_bytes", DEFAULT_BLOCK_BYTES)),
        }
    else:
        raise ValueError(
            f"compression must be None, a codec name, or a dict, "
            f"got {compression!r}"
        )
    if not isinstance(spec["codec"], str) or spec["codec"] not in _CODEC_NAMES:
        raise ValueError(
            f"unknown compression codec {spec['codec']!r} "
            f"(known codecs: {', '.join(_CODEC_NAMES)})"
        )
    if spec["block_bytes"] <= 0:
        raise ValueError(
            f"compression block_bytes must be positive, got {spec['block_bytes']}"
        )
    return spec


# ----------------------------------------------------------------------
# writing: raw payload -> concatenated compressed blocks + block table
# ----------------------------------------------------------------------
def compress_payload(
    raw: bytes | memoryview, codec: str, block_bytes: int
) -> tuple[bytes, list[list[int]]]:
    """Split ``raw`` into ``block_bytes`` chunks and compress each.

    Returns ``(joined_compressed_bytes, table)`` where ``table`` holds one
    ``[compressed_len, crc32]`` pair per block — the CRC covers the
    *stored* (compressed) bytes, so a disk bit flip is caught before the
    decompressor ever sees it.  An empty payload yields an empty table.
    """
    compress = _compressor(codec)
    view = memoryview(raw)
    parts: list[bytes] = []
    table: list[list[int]] = []
    for start in range(0, len(view), block_bytes):
        comp = compress(view[start : start + block_bytes])
        table.append([len(comp), zlib.crc32(comp)])
        parts.append(comp)
    return b"".join(parts), table


# ----------------------------------------------------------------------
# the decompressed-block LRU cache
# ----------------------------------------------------------------------
class BlockCache:
    """Thread-safe, bytes-budgeted LRU of decompressed blocks.

    One cache is shared per *store* (all shards of a
    ``PersistentShardedLsmDB`` feed the same budget), keyed by
    ``(run file path, payload index, block index)``.  Uncompressed
    mmap'd payloads never enter it — the page cache already serves
    those for free.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if capacity_bytes < 0:
            raise ValueError(
                f"capacity_bytes must be non-negative, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        self._blocks: OrderedDict[tuple[Any, ...], bytes] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple[Any, ...]) -> bytes | None:
        with self._lock:
            block = self._blocks.get(key)
            if block is None:
                self.misses += 1
                return None
            self._blocks.move_to_end(key)
            self.hits += 1
            return block

    def put(self, key: tuple[Any, ...], block: bytes) -> None:
        size = len(block)
        if size > self.capacity_bytes:
            return  # larger than the whole budget; not worth evicting for
        with self._lock:
            old = self._blocks.pop(key, None)
            if old is not None:
                self._used -= len(old)
            self._blocks[key] = block
            self._used += size
            while self._used > self.capacity_bytes:
                _, evicted = self._blocks.popitem(last=False)
                self._used -= len(evicted)

    def drop_file(self, path: str) -> None:
        """Evict every block of one run file (called when a run is pruned)."""
        with self._lock:
            stale = [key for key in self._blocks if key[0] == path]
            for key in stale:
                self._used -= len(self._blocks.pop(key))

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._blocks)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._used = 0


# ----------------------------------------------------------------------
# reading: lazy per-block decompression with CRC verification
# ----------------------------------------------------------------------
class BlockedPayload:
    """One compressed frame payload, decompressed block by block.

    ``data`` is the concatenated compressed blocks (bytes or a zero-copy
    memoryview from a mapped frame); ``table`` is the header's
    ``[compressed_len, crc32]`` list.  The table is validated against the
    payload length up front, each block's CRC on first access, and each
    block's decompressed size against what the geometry implies — any
    disagreement raises :class:`SerialError` naming ``context`` (the run
    file and payload) plus the block index and byte offset.
    """

    __slots__ = (
        "_data",
        "_table",
        "_offsets",
        "raw_len",
        "block_bytes",
        "_decompress",
        "_context",
        "_cache",
        "_cache_key",
        "_stats",
    )

    def __init__(
        self,
        data: bytes | memoryview,
        table: list[list[int]],
        raw_len: int,
        block_bytes: int,
        codec: str,
        *,
        context: str,
        cache: BlockCache | None = None,
        cache_key: tuple[Any, ...] | None = None,
        stats: Any = None,
    ) -> None:
        if block_bytes <= 0:
            raise SerialError(
                f"{context}: invalid block size {block_bytes} in block table"
            )
        expected_blocks = -(-int(raw_len) // block_bytes) if raw_len else 0
        if not isinstance(table, list) or len(table) != expected_blocks:
            raise SerialError(
                f"{context}: truncated block table: {len(table) if isinstance(table, list) else 'malformed'}"
                f" entries for {raw_len} raw bytes in {block_bytes}-byte blocks"
                f" (expected {expected_blocks})"
            )
        offsets = [0]
        for entry in table:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not all(isinstance(v, int) and v >= 0 for v in entry)
            ):
                raise SerialError(
                    f"{context}: malformed block table entry {entry!r} "
                    f"at offset {offsets[-1]}"
                )
            offsets.append(offsets[-1] + entry[0])
        if offsets[-1] != len(data):
            raise SerialError(
                f"{context}: block table claims {offsets[-1]} compressed "
                f"bytes but the payload holds {len(data)}"
            )
        self._data = data
        self._table = table
        self._offsets = offsets
        self.raw_len = int(raw_len)
        self.block_bytes = block_bytes
        self._decompress = _decompressor(codec)
        self._context = context
        self._cache = cache
        self._cache_key = cache_key
        self._stats = stats

    @property
    def num_blocks(self) -> int:
        return len(self._table)

    def block(self, index: int) -> bytes:
        """Decompress (or fetch from cache) one verified block."""
        cache = self._cache
        key = (
            (*self._cache_key, index) if self._cache_key is not None else None
        )
        if cache is not None and key is not None:
            cached = cache.get(key)
            stats = self._stats
            if cached is not None:
                if stats is not None:
                    # Atomic bump: block() runs on every reader thread
                    # concurrently, and a bare ``+= 1`` here loses counts
                    # (read-modify-write race on the shared IOStats).
                    stats.add_cache_hit()
                return cached
            if stats is not None:
                stats.add_cache_miss()
        block = self._decode(index)
        if cache is not None and key is not None:
            cache.put(key, block)
        return block

    def _decode(self, index: int) -> bytes:
        start, end = self._offsets[index], self._offsets[index + 1]
        comp = self._data[start:end]
        comp_len, crc = self._table[index]
        if zlib.crc32(comp) != crc:
            raise SerialError(
                f"{self._context}: block {index} checksum mismatch "
                f"({comp_len} compressed bytes at offset {start})"
            )
        try:
            raw = self._decompress(comp, self.block_bytes)
        except Exception as exc:
            raise SerialError(
                f"{self._context}: block {index} at offset {start} "
                f"does not decompress: {exc}"
            ) from exc
        expected = min(self.block_bytes, self.raw_len - index * self.block_bytes)
        if len(raw) != expected:
            raise SerialError(
                f"{self._context}: block {index} at offset {start} "
                f"decompressed to {len(raw)} bytes, expected {expected}"
            )
        return raw

    def read(self, start: int, length: int) -> bytes:
        """Raw bytes ``[start, start+length)``, gathered across blocks."""
        if length <= 0:
            return b""
        if start < 0 or start + length > self.raw_len:
            raise IndexError(
                f"{self._context}: read [{start}, {start + length}) outside "
                f"{self.raw_len} raw bytes"
            )
        first = start // self.block_bytes
        last = (start + length - 1) // self.block_bytes
        if first == last:
            offset = start - first * self.block_bytes
            return self.block(first)[offset : offset + length]
        parts: list[bytes] = []
        for index in range(first, last + 1):
            block = self.block(index)
            lo = start - index * self.block_bytes if index == first else 0
            hi = (
                start + length - index * self.block_bytes
                if index == last
                else len(block)
            )
            parts.append(block[lo:hi])
        return b"".join(parts)

    def to_bytes(self) -> bytes:
        """The whole payload, decompressed eagerly (bypasses the cache)."""
        return b"".join(self._decode(i) for i in range(self.num_blocks))


def decompress_payload(
    data: bytes | memoryview,
    table: list[list[int]],
    raw_len: int,
    block_bytes: int,
    codec: str,
    context: str,
) -> bytes:
    """Eagerly decompress one block-table payload, verifying every CRC."""
    return BlockedPayload(
        data, table, raw_len, block_bytes, codec, context=context
    ).to_bytes()


# ----------------------------------------------------------------------
# lazy value sequences
# ----------------------------------------------------------------------
class SlicedValues:
    """A read-only ``Sequence[bytes]`` sliced out of one value blob.

    ``source`` is either a buffer (bytes / zero-copy memoryview over a
    mapped frame) or a :class:`BlockedPayload`; ``offsets`` is the
    cumulative byte offset of each value (``len(values) + 1`` entries).
    Values materialize one at a time — a mapped store faults in, and a
    compressed store decompresses, only the blocks a lookup touches.
    """

    __slots__ = ("_read", "_offsets")

    def __init__(
        self,
        source: bytes | memoryview | BlockedPayload,
        offsets: npt.NDArray[Any],
    ) -> None:
        self._read: Callable[[int, int], bytes]
        if isinstance(source, BlockedPayload):
            self._read = source.read
        else:
            view = memoryview(source)
            self._read = lambda start, length: bytes(view[start : start + length])
        self._offsets = offsets

    def __len__(self) -> int:
        return int(self._offsets.size - 1)

    def __getitem__(self, index: int) -> bytes:
        size = len(self)
        if index < 0:
            index += size
        if not 0 <= index < size:
            raise IndexError(f"value index {index} out of range for {size} values")
        start = int(self._offsets[index])
        return self._read(start, int(self._offsets[index + 1]) - start)

    def __iter__(self) -> Iterator[bytes]:
        for index in range(len(self)):
            yield self[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SlicedValues(n={len(self)})"
