"""The LSM key-value store: memtable + L0 SSTables (+ optional compaction).

This is the system harness for Experiments 1, 2 and the Fig. 12.C/G
measurements — and a usable KV store: point gets, deletes via tombstones,
and merging range scans (newest version wins) that walk the SSTs
newest-first, consulting each SST's filter block, fence pointers, and the
(simulated) device.  All probe outcomes and time buckets land in
:class:`~repro.lsm.iostats.IOStats`.

Compaction is disabled by default, matching the paper's RocksDB setup
(overlapping L0 runs are exactly what makes per-SST filters matter);
:meth:`LsmDB.compact` is provided for KV-store completeness and drops
shadowed versions and tombstones.

Concurrency contract (machine-checked by ``repro lint``): readers take
lock-free copy-on-write snapshots of ``self.sstables``, so every swap of
the run list — and every call into a ``*_locked`` method or
``_commit_merge`` — must hold ``self._maintenance_lock``
(``lock-discipline``).  The compaction-stress suite additionally runs
under :class:`repro.testing.LockOrderWatcher`, which fails on lock-order
cycles and on unlocked run-list swaps at runtime.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.api import FilterSpec
from repro.lsm.compaction import (
    CompactionScheduler,
    SizeTieredPolicy,
    coerce_compaction,
    compaction_to_dict,
)
from repro.lsm.filter_policy import FilterPolicy, coerce_policy
from repro.lsm.iostats import IOStats, SimulatedDevice
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import SSTable

__all__ = ["LsmDB"]


class LsmDB:
    """Minimal RocksDB-like store (L0 runs, newest first).

    ``policy`` selects the per-SST filter blocks: a
    :class:`~repro.lsm.filter_policy.FilterPolicy` object, a
    :class:`~repro.api.FilterSpec` (wrapped in a
    :class:`~repro.lsm.filter_policy.SpecPolicy`), or None for fence
    pointers only.
    """

    def __init__(
        self,
        policy: FilterPolicy | FilterSpec | None = None,
        memtable_capacity: int = 1 << 16,
        value_bytes: int = 512,
        block_bytes: int = 4096,
        device: SimulatedDevice | None = None,
        store_values: bool = False,
        compaction=None,
        compaction_scheduler: CompactionScheduler | None = None,
    ) -> None:
        self.policy = coerce_policy(policy)
        self.memtable = MemTable(memtable_capacity)
        self.sstables: list[SSTable] = []
        self.value_bytes = value_bytes
        self.block_bytes = block_bytes
        self.device = device if device is not None else SimulatedDevice()
        self.store_values = store_values
        self.stats = IOStats()
        # Background compaction: ``compaction`` picks merge windows (None
        # = manual, the paper's compaction-disabled L0 setup).  All run-set
        # mutations (flush, compact, merge commits) serialize on the
        # maintenance lock; ``self.sstables`` itself is only ever swapped
        # wholesale (copy-on-write), never mutated in place, so readers
        # get an immutable snapshot without taking any lock.
        self.compaction = coerce_compaction(compaction)
        self._maintenance_lock = threading.RLock()
        self._owns_scheduler = False
        self._scheduler = compaction_scheduler
        if self.compaction is not None and self._scheduler is None:
            self._scheduler = CompactionScheduler(max_workers=1)
            self._owns_scheduler = True

    # ------------------------------------------------------------------
    # lifecycle (uniform Store interface; the unsharded engine holds no
    # worker pool, so close is a no-op)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine resources: drain background compaction workers.

        An in-flight merge finishes (and commits) before this returns;
        further triggers are refused.  Idempotent.
        """
        if self._owns_scheduler and self._scheduler is not None:
            self._scheduler.close()

    def sync(self) -> None:
        """Make all flushed runs durable.

        A no-op for the in-memory store; the persistent engines
        (:mod:`repro.lsm.store`) override this to write run files and the
        store manifest, so callers can request durability through the one
        :class:`~repro.api.Store` interface regardless of backing.
        """

    def commit_barrier(self) -> None:
        """Block until every acknowledged write is power-loss durable.

        A no-op for the in-memory store (there is nothing more durable
        than the memtable).  :class:`~repro.lsm.store.PersistentLsmDB`
        overrides this with the WAL's group-commit barrier, so a caller —
        the serving layer acking a write group — can wait for the
        covering fsync through the one :class:`~repro.api.Store`
        interface regardless of backing.
        """

    def __enter__(self) -> "LsmDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes = b"") -> None:
        """Insert or overwrite one key; flushes the memtable when full."""
        self.memtable.put(key, value)
        if self.memtable.is_full:
            self.flush()

    def delete(self, key: int) -> None:
        """Delete via tombstone (shadows older versions until compaction)."""
        self.memtable.delete(key)
        if self.memtable.is_full:
            self.flush()

    def put_many(
        self, keys: np.ndarray, values: list[bytes] | None = None
    ) -> None:
        """Bulk :meth:`put`: chunked memtable fills with flushes in between.

        Each chunk fills the memtable to capacity through
        :meth:`MemTable.put_many` (one dict update, no per-key Python), then
        flushes — so for distinct keys the resulting run layout is identical
        to the scalar ``put`` loop's (asserted by the tests).  Duplicate
        keys within a batch overwrite exactly like sequential puts; only
        the flush boundaries may then differ (the memtable holds fewer
        entries than keys consumed), which changes no answer.
        """
        keys = self._validated_keys(keys)
        if values is not None and len(values) != keys.size:
            raise ValueError("values must align with keys")
        n = keys.size
        start = 0
        while start < n:
            room = self.memtable.capacity - len(self.memtable)
            if room <= 0:
                self.flush()
                continue
            stop = min(start + room, n)
            self.memtable.put_many(
                keys[start:stop],
                values[start:stop] if values is not None else None,
            )
            start = stop
            if self.memtable.is_full:
                self.flush()

    def delete_many(self, keys: np.ndarray) -> None:
        """Bulk :meth:`delete`: chunked tombstone writes, same flush rule."""
        keys = self._validated_keys(keys)
        n = keys.size
        start = 0
        while start < n:
            room = self.memtable.capacity - len(self.memtable)
            if room <= 0:
                self.flush()
                continue
            stop = min(start + room, n)
            self.memtable.delete_many(keys[start:stop])
            start = stop
            if self.memtable.is_full:
                self.flush()

    def flush(self) -> None:
        """Flush the memtable into a new L0 SSTable (newest first).

        The run list is *replaced*, not mutated (copy-on-write), so a
        concurrent reader iterating its snapshot never sees a half-made
        update; when a background policy is configured the flush then
        notifies the scheduler (the auto-compaction trigger).
        """
        flushed = False
        with self._maintenance_lock:
            if len(self.memtable):
                keys, values, tombstones = self.memtable.drain_sorted()
                sst = self._make_sstable(
                    keys,
                    values if self.store_values else None,
                    tombstones,
                )
                self.sstables = [sst] + self.sstables
                flushed = True
        if flushed:
            self._after_flush()

    def _after_flush(self) -> None:
        """Post-flush hook: trigger the background compaction scheduler."""
        if self._scheduler is not None and self.compaction is not None:
            self._scheduler.notify(self)

    def drain_compaction(self) -> None:
        """Block until background compaction is quiescent.

        Returns immediately on a manual store.  Useful before reading
        :meth:`compaction_info` counters or benchmarking a settled run
        layout; answers never require it (reads are correct mid-merge).
        """
        if self._scheduler is not None:
            self._scheduler.drain()

    def bulk_load(self, keys: np.ndarray, num_sstables: int) -> None:
        """Load an insertion-ordered key stream into ``num_sstables`` runs.

        Mirrors how sequential memtable flushes partition a write stream:
        each chunk is sorted on flush, chunks overlap arbitrarily in key
        space (the L0 shape that makes filters matter).  Each run's filter
        block is built through the policy's bulk path — one ``insert_many``
        per-layer sweep over the whole chunk, never per-key scalar inserts.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if num_sstables <= 0:
            raise ValueError(f"num_sstables must be positive, got {num_sstables}")
        with self._maintenance_lock:
            for chunk in np.array_split(keys, num_sstables):
                if chunk.size == 0:
                    continue
                sorted_chunk = np.unique(chunk)
                self.sstables = [
                    self._make_sstable(sorted_chunk, None, None)
                ] + self.sstables

    def compact(self) -> None:
        """Merge every run into one, dropping shadowed versions/tombstones.

        When every run's filter block is word-unionable (same-config
        bloomRF/Bloom blocks; see ``merge_handles`` on the policy), the
        merged run reuses the union instead of re-hashing every key — the
        union still indexes dropped versions and tombstones, so it is a
        sound superset (extra false positives at most, never a false
        negative).  Otherwise the filter is rebuilt from the merged keys.
        """
        with self._maintenance_lock:
            self.flush()
            if not self.sstables:
                return
            merged = self._merge_tables(self.sstables, drop_tombstones=True)
            self.sstables = [merged] if merged is not None else []

    def _merge_tables(
        self, tables: list[SSTable], *, drop_tombstones: bool
    ) -> SSTable | None:
        """One merged run from a newest-first window of runs (or None when
        nothing survives).

        Newest-wins version merge, vectorized: concatenate runs newest
        first, then ``np.unique`` keeps the *first* occurrence of every
        key — its newest version — already sorted ascending.  No per-key
        Python loop; the merged run's filter comes from the word-level
        union (see :meth:`compact`) or one bulk ``policy.build`` over the
        merged keys.  ``drop_tombstones`` is only sound when the window
        includes the store's oldest run — an interior merge must keep its
        tombstones, which still shadow versions in older runs.

        Pure function of the (immutable) input runs: background workers
        call it outside the maintenance lock.
        """
        merge_handles = getattr(self.policy, "merge_handles", None)
        merged_filter = (
            merge_handles([sst.filter for sst in tables])
            if merge_handles is not None
            else None
        )
        all_keys = np.concatenate([sst.keys for sst in tables])
        all_tombstones = np.concatenate([sst.tombstones for sst in tables])
        unique_keys, newest = np.unique(all_keys, return_index=True)
        newest_tombstones = all_tombstones[newest]
        keep = (
            ~newest_tombstones
            if drop_tombstones
            else np.ones(unique_keys.size, dtype=bool)
        )
        if not np.any(keep):
            return None
        values = None
        if self.store_values:
            combined: list[bytes] = []
            for sst in tables:
                combined.extend(
                    sst.values
                    if sst.values is not None
                    else [b""] * sst.num_keys
                )
            values = [combined[i] for i in newest[keep].tolist()]
        return self._make_sstable(
            unique_keys[keep],
            values,
            None if drop_tombstones else newest_tombstones[keep],
            prebuilt_filter=merged_filter,
        )

    def maybe_compact(self, policy=None) -> dict | None:
        """Run one policy-selected background merge; None when quiescent.

        The scheduler's work unit.  Three phases: (1) under the
        maintenance lock, snapshot the run list and ask the policy for a
        contiguous merge window; (2) *outside* the lock, build the merged
        run from the window's immutable SSTables — reads and flushes
        proceed concurrently against their own snapshots; (3) under the
        lock again, splice the merged run over the window and commit.
        Flushes only *prepend*, so the window is still intact unless a
        manual :meth:`compact` superseded it — then the merged run is
        discarded (the manual result already covers it) and None is
        returned.  Returns a small dict of merge accounting otherwise.

        ``policy`` overrides :attr:`compaction` for this one call (the
        CLI's one-shot foreground pass) without touching engine state —
        on a persistent store the merge commit re-writes the manifest
        from :attr:`compaction`, so a *temporarily assigned* policy would
        leak into the manifest; an argument cannot.
        """
        policy = self.compaction if policy is None else policy
        if policy is None:
            return None
        with self._maintenance_lock:
            snapshot = self.sstables
            window = policy.pick([sst.num_keys for sst in snapshot])
            if window is None:
                return None
            start, stop = window
            victims = snapshot[start:stop]
            if not 0 <= start < stop <= len(snapshot) or len(victims) < 2:
                return None
            # Tombstones drop only when nothing older remains to shadow.
            # Decided on the snapshot, still valid at commit: flushes only
            # prepend (the oldest run stays put) and any manual compact
            # aborts the commit entirely.
            drop = stop == len(snapshot)
        merged = self._merge_tables(victims, drop_tombstones=drop)
        with self._maintenance_lock:
            current = self.sstables
            try:
                at = current.index(victims[0])
            except ValueError:
                return None  # superseded by a manual compact mid-merge
            if current[at : at + len(victims)] != victims:
                return None
            replacement = [merged] if merged is not None else []
            self.sstables = current[:at] + replacement + current[at + len(victims):]
            self._commit_merge()
        return {
            "input_runs": len(victims),
            "input_keys": int(sum(sst.num_keys for sst in victims)),
            "output_keys": int(merged.num_keys) if merged is not None else 0,
        }

    def _commit_merge(self) -> None:
        """Post-splice commit hook (the persistent store syncs here);
        called with the maintenance lock held."""

    def compaction_info(self) -> dict:
        """Policy, per-level run layout, and scheduler state (inspect)."""
        policy = self.compaction
        describe = policy if policy is not None else SizeTieredPolicy()
        run_keys = [sst.num_keys for sst in self.sstables]
        return {
            "policy": compaction_to_dict(policy),
            "levels": describe.describe_levels(run_keys),
            "pending": (
                policy is not None and policy.pick(run_keys) is not None
            ),
            "scheduler": (
                self._scheduler.info() if self._scheduler is not None else None
            ),
        }

    def _make_sstable(
        self,
        sorted_keys: np.ndarray,
        values: list[bytes] | None,
        tombstones: np.ndarray | None,
        prebuilt_filter=None,
    ) -> SSTable:
        return SSTable(
            sorted_keys,
            policy=self.policy,
            values=values,
            tombstones=tombstones,
            value_bytes=self.value_bytes,
            block_bytes=self.block_bytes,
            prebuilt_filter=prebuilt_filter,
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> bool:
        """Is a live version of ``key`` present? (filter-accelerated)."""
        return self.get_value(key) is not None

    def get_value(self, key: int) -> bytes | None:
        """Newest live value of ``key``, or None (absent or deleted)."""
        buffered = self.memtable.get(key)
        if buffered is not None:
            return None if buffered is TOMBSTONE else buffered
        for sst in self.sstables:
            found, value, is_tombstone = sst.get(key, self.stats, self.device)
            if found:
                return None if is_tombstone else value
        return None

    @staticmethod
    def _validated_keys(keys: np.ndarray) -> np.ndarray:
        """Shared key validation for the batched point paths: refuses
        negative keys instead of silently wrapping them into uint64."""
        arr = np.asarray(keys)  # repro-lint: ignore[dtype-discipline] -- validation must see the caller's dtype to reject floats/negatives before astype(uint64)
        if arr.size == 0:
            return np.zeros(0, dtype=np.uint64)
        if arr.ndim != 1:
            raise ValueError(f"keys must be one-dimensional, got shape {arr.shape}")
        if arr.dtype.kind not in "iu":
            raise TypeError(f"keys must be integers, got dtype {arr.dtype}")
        if arr.dtype.kind == "i" and int(arr.min()) < 0:
            raise ValueError(f"negative key {int(arr.min())}")
        return arr.astype(np.uint64, copy=False)

    def get_many(self, keys: np.ndarray) -> np.ndarray:
        """Batched :meth:`get`: one boolean per key (newest version live?).

        Bit-identical to looping :meth:`get` (asserted by the tests), with
        identical filter-stats and I/O accounting, but every run's filter
        block is consulted once per batch through its bulk interface.
        Batch-wide pruning mirrors the scalar walk's early exit: a key
        settled by the memtable or an earlier (newer) run stops probing
        older runs, so each run only sees its still-unresolved keys.
        """
        keys = self._validated_keys(keys)
        n = keys.size
        result = np.zeros(n, dtype=bool)
        if n == 0:
            return result
        unresolved = np.ones(n, dtype=bool)
        if len(self.memtable):
            known, live = self.memtable.lookup_many(keys)
            result[known] = live[known]
            unresolved &= ~known
        for sst in self.sstables:
            if not unresolved.any():
                break
            idx = np.nonzero(unresolved)[0]
            found, tombstone = sst.get_many(keys[idx], self.stats, self.device)
            settled = idx[found]
            result[settled] = ~tombstone[found]
            unresolved[settled] = False
        return result

    def may_contain_many(self, keys: np.ndarray) -> np.ndarray:
        """Batched filter-level membership probe: may ``key`` be present?

        The point counterpart of :meth:`scan_may_contain`: every run's
        filter block is consulted through its bulk interface (one batch
        probe per SST), then the memtable.  Pure filter CPU — no fence
        lookups and no block reads are charged, and tombstones are *not*
        resolved (a filter cannot un-insert).  A True is a *may-contain* —
        resolve with :meth:`get_many` when the exact answer matters.
        """
        keys = self._validated_keys(keys)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        result = np.zeros(keys.size, dtype=bool)
        for sst in self.sstables:
            result |= sst.probe_filter_points_many(keys, self.stats)
        if len(self.memtable):
            known, _ = self.memtable.lookup_many(keys)
            result |= known
        return result

    def scan_nonempty(self, l_key: int, r_key: int) -> bool:
        """Does ``[l_key, r_key]`` hold any live key? (Exp. 1's probe shape).

        Probes every run's filter (the paper's workloads are empty — the
        worst case — and real scans must merge all overlapping runs), then
        reconciles versions newest-first.
        """
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        candidates = [
            sst
            for sst in self.sstables
            if sst.scan(l_key, r_key, self.stats, self.device)
        ]
        if self.memtable.contains_range(l_key, r_key):
            return True
        if not candidates:
            return False
        return bool(self._merge_scan(l_key, r_key, candidates, limit=1))

    @staticmethod
    def _validated_bounds(bounds: np.ndarray) -> np.ndarray:
        """Shared bounds validation for the batched scan paths: mirrors the
        scalar scans' inverted-range rejection and refuses negative keys
        instead of silently wrapping them into uint64."""
        arr = np.asarray(bounds)  # repro-lint: ignore[dtype-discipline] -- validation must see the caller's dtype to reject floats/negatives before astype(uint64)
        if arr.size == 0:
            return np.zeros((0, 2), dtype=np.uint64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"bounds must have shape (n, 2), got {arr.shape}")
        if arr.dtype.kind not in "iu":
            raise TypeError(f"bounds must be integers, got dtype {arr.dtype}")
        if arr.dtype.kind == "i" and int(arr.min()) < 0:
            raise ValueError(f"negative query bound {int(arr.min())}")
        arr = arr.astype(np.uint64, copy=False)
        inverted = arr[:, 0] > arr[:, 1]
        if np.any(inverted):
            i = int(np.argmax(inverted))
            raise ValueError(
                f"empty query range [{int(arr[i, 0])}, {int(arr[i, 1])}]"
            )
        return arr

    def scan_may_contain(self, bounds: np.ndarray) -> np.ndarray:
        """Batched filter-level emptiness probe: may ``[lo, hi]`` be non-empty?

        One boolean per ``(lo, hi)`` row; every run's filter block is
        consulted through its bulk interface (one batch probe per SST
        instead of one scalar probe per query per SST), then the memtable.
        Pure filter CPU — no fence lookups and no block reads are charged.
        A True is a *may-contain* — resolve with :meth:`scan_nonempty_many`
        or :meth:`scan` when the exact answer matters.
        """
        bounds = self._validated_bounds(bounds)
        if bounds.size == 0:
            return np.zeros(0, dtype=bool)
        result = np.zeros(bounds.shape[0], dtype=bool)
        for sst in self.sstables:
            result |= sst.probe_filter_many(bounds, self.stats)
        if len(self.memtable):
            result |= self.memtable.contains_range_many(bounds)
        return result

    def scan_nonempty_many(self, bounds: np.ndarray) -> np.ndarray:
        """Batched :meth:`scan_nonempty`: one boolean per ``(lo, hi)`` row.

        Filter probes run batched per SST (the fast path the Fig. 9/12
        benchmarks exercise); only filter-positive (query, run) pairs fall
        back to the merging scan for version reconciliation.
        """
        bounds = self._validated_bounds(bounds)
        if bounds.size == 0:
            return np.zeros(0, dtype=bool)
        n = bounds.shape[0]
        candidates: list[list[SSTable]] = [[] for _ in range(n)]
        for sst in self.sstables:
            hits = sst.scan_many(bounds, self.stats, self.device)
            for i in np.nonzero(hits)[0]:
                candidates[i].append(sst)
        out = self.memtable.contains_range_many(bounds)
        for i, (lo, hi) in enumerate(zip(bounds[:, 0].tolist(), bounds[:, 1].tolist(), strict=True)):
            if not out[i] and candidates[i]:
                out[i] = bool(self._merge_scan(lo, hi, candidates[i], limit=1))
        return out

    def scan(self, l_key: int, r_key: int, limit: int | None = None):
        """Merged live entries in range, newest version wins, sorted by key.

        Returns ``[(key, value), ...]``; filters prune non-overlapping runs.
        """
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        candidates = [
            sst
            for sst in self.sstables
            if sst.scan(l_key, r_key, self.stats, self.device)
        ]
        return self._merge_scan(l_key, r_key, candidates, limit)

    def _merge_scan(self, l_key, r_key, candidates, limit):
        # Newest-wins reconciliation: memtable first, then runs new -> old.
        seen: dict[int, tuple[bytes, bool]] = {}
        for key, value in self.memtable.entries_in_range(l_key, r_key):
            seen[key] = (b"", True) if value is TOMBSTONE else (value, False)
        for sst in candidates:  # self.sstables order = newest first
            for key, value, dead in sst.entries_in_range(l_key, r_key):
                if key not in seen:
                    seen[key] = (value, dead)
        live = sorted(
            (k, v) for k, (v, dead) in seen.items() if not dead
        )
        if limit is not None:
            live = live[:limit]
        return live

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def num_keys(self) -> int:
        return len(self.memtable) + sum(s.num_keys for s in self.sstables)

    @property
    def filter_bits(self) -> int:
        return sum(s.filter.size_bits for s in self.sstables)

    def filter_bits_per_key(self) -> float:
        stored = sum(s.num_keys for s in self.sstables)
        return self.filter_bits / stored if stored else 0.0

    def construction_times(self) -> tuple[float, float]:
        """(total filter build seconds, total serialization seconds)."""
        return (
            sum(s.build_time_s for s in self.sstables),
            sum(s.serialize_time_s for s in self.sstables),
        )

    def reset_stats(self) -> IOStats:
        """Zero the stats in place; returns a snapshot of the old values.

        In place because loaded SST frames capture a reference to this
        object at open time (the decompressed-block cache records its
        hits and misses through it) — swapping in a fresh object would
        silently detach their accounting.
        """
        return self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LsmDB(policy={self.policy.name}, sstables={len(self.sstables)}, "
            f"keys={self.num_keys})"
        )
