"""Small shared helpers: bit arithmetic on unsigned integers.

Every filter in this package works over fixed-width unsigned integer domains
(``d`` bits, ``d <= 64``).  Python integers are unbounded, so the helpers here
centralize the masking discipline that keeps intermediate values inside the
domain.  They are deliberately tiny so the hot paths in :mod:`repro.core` can
inline-call them without surprises; :func:`bulk_range_eval` is the one
NumPy-facing helper (the shared scalar->bulk range-probe adapter).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

MASK64 = (1 << 64) - 1


def bulk_range_eval(
    scalar_fn: Callable[[int, int], bool], bounds: np.ndarray
) -> np.ndarray:
    """Evaluate a scalar ``(lo, hi) -> bool`` range probe over ``(n, 2)`` rows.

    The uniform bulk-interface adapter for filters whose range probe is
    inherently sequential (Rosetta's doubting, SuRF's trie walk, ...):
    one scalar probe per row, boolean array out.
    """
    bounds = np.asarray(bounds)  # repro-lint: ignore[dtype-discipline] -- generic adapter: rows reach the scalar fn via int(), any integer dtype is welcome
    return np.fromiter(
        (scalar_fn(int(lo), int(hi)) for lo, hi in bounds),
        dtype=bool,
        count=bounds.shape[0],
    )


def bulk_point_eval(
    scalar_fn: Callable[[int], bool], keys: np.ndarray
) -> np.ndarray:
    """Evaluate a scalar ``key -> bool`` point probe over a key array.

    The point-probe counterpart of :func:`bulk_range_eval`: the uniform
    bulk interface for filters whose point lookup is inherently sequential
    (SuRF's trie walk, the cuckoo table): one scalar probe per key,
    boolean array out.
    """
    keys = np.asarray(keys)  # repro-lint: ignore[dtype-discipline] -- generic adapter: keys reach the scalar fn via int(), any integer dtype is welcome
    return np.fromiter(
        (scalar_fn(int(key)) for key in keys.ravel()),
        dtype=bool,
        count=keys.size,
    )


def check_bounds_rows(bounds: np.ndarray) -> np.ndarray:
    """Validate an ``(n, 2)`` inclusive-bounds array's row ordering.

    Shared by the conservative all-"maybe" bulk range probes (Bloom,
    Cuckoo, the "none" filter) so their bulk form rejects inverted ranges
    exactly like their scalar form — the protocol's scalar==bulk contract.
    """
    bounds = np.asarray(bounds)  # repro-lint: ignore[dtype-discipline] -- validation helper: compares rows as given; pinning uint64 would wrap negatives before the check
    if bounds.size:
        inverted = bounds[:, 0] > bounds[:, 1]
        if np.any(inverted):
            i = int(np.argmax(inverted))
            raise ValueError(
                f"empty query range [{int(bounds[i, 0])}, {int(bounds[i, 1])}]"
            )
    return bounds


def mask(bits: int) -> int:
    """Return an all-ones mask of ``bits`` bits (``mask(3) == 0b111``)."""
    return (1 << bits) - 1


def domain_size(domain_bits: int) -> int:
    """Number of elements in a ``domain_bits``-bit unsigned domain."""
    return 1 << domain_bits


def domain_max(domain_bits: int) -> int:
    """Largest representable key of a ``domain_bits``-bit unsigned domain."""
    return (1 << domain_bits) - 1


def check_key(key: int, domain_bits: int) -> int:
    """Validate that ``key`` lies in the ``domain_bits``-bit domain.

    Returns the key unchanged so call sites can validate inline.
    Raises ``ValueError`` for out-of-domain or negative keys.
    """
    if not 0 <= key <= domain_max(domain_bits):
        raise ValueError(
            f"key {key!r} outside the {domain_bits}-bit unsigned domain"
        )
    return key


def floor_log2(value: int) -> int:
    """``floor(log2(value))`` for a positive integer."""
    if value <= 0:
        raise ValueError(f"floor_log2 requires a positive value, got {value}")
    return value.bit_length() - 1


def ceil_log2(value: int) -> int:
    """``ceil(log2(value))`` for a positive integer."""
    if value <= 0:
        raise ValueError(f"ceil_log2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding up."""
    return -(-numerator // denominator)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ..."""
    return value > 0 and (value & (value - 1)) == 0
