"""Workload and dataset generators for the paper's experiments (Sect. 9)."""

from repro.workloads.distributions import (
    KeyDistribution,
    distribution_by_name,
    normal_keys,
    sample_indices,
    uniform_keys,
    zipfian_keys,
)
from repro.workloads.queries import (
    QueryWorkload,
    empty_point_queries,
    empty_range_queries,
)
from repro.workloads.datasets import (
    kepler_like_flux,
    sdss_like_catalog,
    synthetic_words,
)

__all__ = [
    "KeyDistribution",
    "distribution_by_name",
    "sample_indices",
    "uniform_keys",
    "normal_keys",
    "zipfian_keys",
    "QueryWorkload",
    "empty_point_queries",
    "empty_range_queries",
    "kepler_like_flux",
    "sdss_like_catalog",
    "synthetic_words",
]
