"""Synthetic stand-ins for the paper's external datasets.

The paper evaluates floats on a NASA Kepler light-curve dataset [33] and
multi-attribute filtering on the Sloan Digital Sky Survey DR16 [42]; neither
ships with this reproduction (no network, licensing), so we synthesize
datasets with the same *structural* properties the experiments exercise:

* :func:`kepler_like_flux` — per-star flux time series: a smooth stellar
  baseline plus Gaussian noise plus occasional deep transit dips, yielding
  positive and negative doubles across many magnitudes (what stresses the
  monotone float codec and tiny 1e-3-wide range queries).
* :func:`sdss_like_catalog` — (Run, ObjectID) columns whose values "roughly
  follow a normal distribution" (paper, Experiment 6).
* :func:`synthetic_words` — email/URL-flavoured variable-length strings for
  the string-filter comparison (Fig. 12.D strings panel).
"""

from __future__ import annotations

import numpy as np

__all__ = ["kepler_like_flux", "sdss_like_catalog", "synthetic_words"]


def kepler_like_flux(
    n_samples: int, n_stars: int = 37, seed: int = 0
) -> np.ndarray:
    """Synthetic Kepler-like flux values (float64, positive and negative).

    Each star contributes a mean-subtracted light curve: slow sinusoidal
    trend + white noise + periodic transit dips, scaled by a per-star
    magnitude spanning several decades — matching the mixed-sign,
    heavy-dynamic-range values of the Kepler campaign-3 table.
    """
    rng = np.random.default_rng(seed)
    per_star = -(-n_samples // n_stars)
    series = []
    for _ in range(n_stars):
        scale = 10.0 ** rng.uniform(-2, 4)
        t = np.arange(per_star, dtype=np.float64)
        period = rng.uniform(50, 500)
        trend = np.sin(2 * np.pi * t / period) * rng.uniform(0.1, 2.0)
        noise = rng.normal(0, rng.uniform(0.05, 0.5), per_star)
        flux = (trend + noise) * scale
        transit_period = rng.integers(80, 400)
        depth = rng.uniform(1.0, 8.0) * scale
        flux[::transit_period] -= depth  # transit dips go negative
        series.append(flux)
    values = np.concatenate(series)[:n_samples]
    rng.shuffle(values)
    return values


def sdss_like_catalog(
    n_rows: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic SDSS-DR16-like (Run, ObjectID) columns, roughly normal.

    ``Run`` values are small positive integers (observation run numbers,
    a few hundred distinct values, bell-shaped); ``ObjectID`` values are
    large 63-bit identifiers with a normal bulk — both as ``uint64``.
    """
    rng = np.random.default_rng(seed)
    run = np.clip(rng.normal(300, 120, n_rows), 1, 1000).astype(np.uint64)
    # The float clip bound must be exactly representable below 2**63, or the
    # cast rounds up and overflows the signed-id convention.
    object_id = np.clip(
        rng.normal(2**62, 2**60, n_rows), 1, float(2**63 - 2**11)
    ).astype(np.uint64)
    return run, object_id


_WORD_STEMS = (
    "data", "bloom", "range", "filter", "query", "index", "store", "key",
    "value", "scan", "prefix", "hash", "trie", "level", "merge", "block",
)
_DOMAINS = ("example.com", "mail.org", "db.net", "uni.edu")


def synthetic_words(n_words: int, seed: int = 0) -> list[bytes]:
    """Sorted distinct email-like byte strings (variable length)."""
    rng = np.random.default_rng(seed)
    words: set[bytes] = set()
    while len(words) < n_words:
        stem = _WORD_STEMS[int(rng.integers(len(_WORD_STEMS)))]
        other = _WORD_STEMS[int(rng.integers(len(_WORD_STEMS)))]
        number = int(rng.integers(0, 10_000))
        domain = _DOMAINS[int(rng.integers(len(_DOMAINS)))]
        words.add(f"{stem}.{other}{number}@{domain}".encode())
    return sorted(words)[:n_words]
