"""Key distributions used throughout the evaluation: uniform, normal, zipfian.

The paper's YCSB-E derivative uses uniformly distributed 64-bit keys with
workloads (query positions) drawn uniform / normal / zipfian; the standalone
experiments (Fig. 11) also vary the *data* distribution.  Generators return
sorted, de-duplicated ``uint64`` arrays of exactly the requested size
(oversampling until enough distinct keys exist), so filters and reference
structures can binary-search them directly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "KeyDistribution",
    "uniform_keys",
    "normal_keys",
    "zipfian_keys",
    "distribution_by_name",
    "sample_indices",
]

_U64_MAX = (1 << 64) - 1

KeyDistribution = Callable[[int, int], np.ndarray]


def _dedupe_to_size(
    draw: Callable[[np.random.Generator, int], np.ndarray],
    n_keys: int,
    seed: int,
) -> np.ndarray:
    """Draw until ``n_keys`` distinct keys exist; return them sorted."""
    rng = np.random.default_rng(seed)
    keys = np.unique(draw(rng, int(n_keys * 1.1) + 16))
    while keys.size < n_keys:
        extra = draw(rng, max(n_keys - keys.size, 1024) * 2)
        keys = np.unique(np.concatenate([keys, extra]))
    return keys[:n_keys].copy()


def uniform_keys(n_keys: int, seed: int = 0, domain_bits: int = 64) -> np.ndarray:
    """``n_keys`` distinct uniform keys over ``[0, 2**domain_bits)``, sorted."""
    high = 1 << domain_bits

    def draw(rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.integers(0, high, count, dtype=np.uint64)

    return _dedupe_to_size(draw, n_keys, seed)


def normal_keys(
    n_keys: int,
    seed: int = 0,
    domain_bits: int = 64,
    sigma_fraction: float = 1 / 8,
) -> np.ndarray:
    """Normally distributed keys centered mid-domain, clipped and sorted.

    ``sigma_fraction`` scales the standard deviation relative to the domain
    width (default: domain/8, a clearly peaked but wide bell).
    """
    width = float(1 << domain_bits)
    center, sigma = width / 2, width * sigma_fraction

    # The float clip bound must be exactly representable below 2**64 or the
    # cast back to uint64 overflows.
    top = float(2**64 - 2**12)

    def draw(rng: np.random.Generator, count: int) -> np.ndarray:
        values = rng.normal(center, sigma, count)
        return np.clip(values, 0, top).astype(np.uint64)

    return _dedupe_to_size(draw, n_keys, seed)


def zipfian_keys(
    n_keys: int,
    seed: int = 0,
    domain_bits: int = 64,
    theta: float = 0.99,
    universe_factor: int = 64,
) -> np.ndarray:
    """Zipf-skewed keys: ranks drawn YCSB-style, scattered over the domain.

    Ranks follow a Zipf(theta) law over a universe of
    ``n_keys * universe_factor`` items; rank ``r`` is then placed at a
    deterministic pseudo-random position (rank-hashing), giving the heavily
    skewed *collision structure* of YCSB's zipfian generator without
    clustering every key at the domain start.
    """
    universe = n_keys * universe_factor

    def draw(rng: np.random.Generator, count: int) -> np.ndarray:
        ranks = _zipf_ranks(rng, count, universe, theta)
        return _scatter_ranks(ranks, domain_bits)

    return _dedupe_to_size(draw, n_keys, seed)


def _zipf_ranks(
    rng: np.random.Generator, count: int, universe: int, theta: float
) -> np.ndarray:
    """YCSB's rejection-free zipfian generator (Gray et al. quick method)."""
    zetan = _zeta(universe, theta)
    zeta2 = _zeta(2, theta)
    alpha = 1.0 / (1.0 - theta)
    eta = (1 - (2.0 / universe) ** (1 - theta)) / (1 - zeta2 / zetan)
    u = rng.random(count)
    uz = u * zetan
    ranks = np.empty(count, dtype=np.uint64)
    low = uz < 1.0
    mid = ~low & (uz < 1.0 + 0.5**theta)
    rest = ~(low | mid)
    ranks[low] = 0
    ranks[mid] = 1
    ranks[rest] = (universe * (eta * u[rest] - eta + 1) ** alpha).astype(np.uint64)
    return np.minimum(ranks, universe - 1)


def _zeta(n: int, theta: float) -> float:
    """Generalized harmonic number; exact below 1e6 items, integral above."""
    if n <= 1_000_000:
        return float(np.sum(1.0 / np.arange(1, n + 1) ** theta))
    head = float(np.sum(1.0 / np.arange(1, 1_000_001) ** theta))
    # Integral tail approximation of sum_{k=1e6+1}^{n} k^-theta.
    return head + (n ** (1 - theta) - 1_000_000 ** (1 - theta)) / (1 - theta)


def _scatter_ranks(ranks: np.ndarray, domain_bits: int) -> np.ndarray:
    """Map ranks to stable pseudo-random domain positions (FNV-style mix)."""
    z = ranks.astype(np.uint64)
    z = (z + np.uint64(0x9E3779B97F4A7C15)) * np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    if domain_bits < 64:
        z >>= np.uint64(64 - domain_bits)
    return z


def distribution_by_name(name: str) -> KeyDistribution:
    """Resolve a distribution by the names the paper uses."""
    table = {
        "uniform": uniform_keys,
        "normal": normal_keys,
        "zipfian": zipfian_keys,
    }
    if name not in table:
        raise ValueError(f"unknown distribution {name!r} (expected {sorted(table)})")
    return table[name]


def sample_indices(
    rng: np.random.Generator, n_items: int, count: int, workload: str, theta: float = 0.99
) -> np.ndarray:
    """Sample item indices according to a *workload* distribution.

    Used to pick query anchor keys: ``uniform`` picks keys evenly, ``normal``
    concentrates on the middle of the sorted key space, ``zipfian`` hammers a
    hot set — reproducing how the paper's workload distributions shift query
    positions over the (sorted) dataset.
    """
    if workload == "uniform":
        return rng.integers(0, n_items, count)
    if workload == "normal":
        raw = rng.normal(n_items / 2, n_items / 6, count)
        return np.clip(raw, 0, n_items - 1).astype(np.int64)
    if workload == "zipfian":
        ranks = _zipf_ranks(rng, count, max(n_items, 2), theta)
        # Scatter hot ranks over the index space deterministically.
        return (_scatter_ranks(ranks, 64) % np.uint64(n_items)).astype(np.int64)
    raise ValueError(f"unknown workload {workload!r}")
