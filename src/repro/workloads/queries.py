"""Query workload generation: empty point/range queries (the worst case).

The paper's YCSB-E derivative issues queries of one fixed range size, all
*empty* — the worst case for a filter, because every positive is a false
positive and every negative saves work (Sect. 9, "Workloads").

Empty queries are generated in the *gaps* of the sorted key set: an anchor
key is sampled according to the workload distribution (uniform / normal /
zipfian over the sorted key index space), and the query is placed uniformly
inside the key-free gap following the anchor.  This keeps queries adjacent
to real data — exercising the filters' hard cases, e.g. SuRF's truncated
suffixes — instead of landing in the astronomically empty reaches of a
64-bit domain where every filter looks perfect.  Verification against the
key set guarantees emptiness by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.distributions import sample_indices

__all__ = ["QueryWorkload", "empty_range_queries", "empty_point_queries"]

_U64_MAX = (1 << 64) - 1


@dataclass(frozen=True)
class QueryWorkload:
    """A batch of queries: ``bounds[i] = (lo, hi)`` inclusive, all empty."""

    bounds: np.ndarray  # shape (n, 2), uint64
    range_size: int
    workload: str

    def __len__(self) -> int:
        return int(self.bounds.shape[0])

    def __iter__(self):
        for lo, hi in self.bounds:
            yield int(lo), int(hi)


def empty_range_queries(
    sorted_keys: np.ndarray,
    count: int,
    range_size: int,
    workload: str = "uniform",
    seed: int = 0,
    max_attempts: int = 64,
) -> QueryWorkload:
    """``count`` empty range queries of exactly ``range_size`` keys.

    Anchors are sampled by ``workload`` over the sorted key indices; each
    query starts uniformly inside the gap ``(key_i, key_{i+1})`` so that
    ``[lo, lo + range_size - 1]`` contains no key.  Raises ``ValueError``
    when the key set is so dense that no gap fits the range (at paper-scale
    domains this only happens for ranges near the domain size).
    """
    if range_size < 1:
        raise ValueError(f"range_size must be >= 1, got {range_size}")
    keys = np.asarray(sorted_keys, dtype=np.uint64)
    if keys.size < 2:
        raise ValueError("need at least two keys to define gaps")
    rng = np.random.default_rng(seed)
    out = np.empty((count, 2), dtype=np.uint64)
    filled = 0
    for _ in range(max_attempts):
        need = count - filled
        if need <= 0:
            break
        anchors = sample_indices(rng, keys.size - 1, need * 2, workload)
        gap_lo = keys[anchors] + np.uint64(1)
        gap_hi = keys[anchors + 1] - np.uint64(1)
        # Usable gaps must fit the whole range strictly between two keys.
        span = gap_hi.astype(np.float64) - gap_lo.astype(np.float64) + 1.0
        ok = span >= float(range_size)
        idx = np.nonzero(ok)[0][:need]
        if idx.size == 0:
            continue
        slack = (gap_hi[idx] - gap_lo[idx] + np.uint64(1)) - np.uint64(range_size)
        offset = (rng.random(idx.size) * (slack.astype(np.float64) + 1.0)).astype(
            np.uint64
        )
        lo = gap_lo[idx] + np.minimum(offset, slack)
        out[filled : filled + idx.size, 0] = lo
        out[filled : filled + idx.size, 1] = lo + np.uint64(range_size - 1)
        filled += idx.size
    if filled < count:
        raise ValueError(
            f"could not place {count} empty ranges of size {range_size}: "
            f"gaps too small (only {filled} found)"
        )
    return QueryWorkload(bounds=out, range_size=range_size, workload=workload)


def empty_point_queries(
    sorted_keys: np.ndarray,
    count: int,
    workload: str = "uniform",
    seed: int = 0,
) -> np.ndarray:
    """``count`` lookup keys guaranteed absent from ``sorted_keys``.

    Sampled adjacent to real keys (inside gaps), the worst case for filters
    whose precision depends on key locality (SuRF, prefix BFs).
    """
    qw = empty_range_queries(
        sorted_keys, count, range_size=1, workload=workload, seed=seed
    )
    return qw.bounds[:, 0].copy()
