"""Datatype support (Sect. 8): floats, variable-length strings, multi-attribute.

bloomRF operates on unsigned integer domains; richer datatypes are handled by
*monotone codecs* that map values to ``uint64`` such that value order equals
unsigned integer order — range queries then translate directly.

* **Floats** use the classic sign-flip mapping ``phi``: positive doubles get
  the sign bit set, negative doubles are bitwise inverted.  ``phi`` is a
  monotone bijection on the IEEE-754 totally ordered doubles (the paper's
  Sect. 8 formulation with ``q + r = 63`` mantissa+exponent bits).
* **Strings** follow SuRF-Hash: the seven most significant bytes carry the
  first seven characters; the least significant byte carries an 8-bit hash of
  the whole string (including its length).  Point probes use the full code;
  range probes zero/saturate the hash byte, so order on the 7-byte prefix is
  preserved (longer shared prefixes are beyond the filter's resolution, as in
  the paper).
* **Multi-attribute filtering** concatenates two reduced-precision attributes
  and inserts *both* orders ``<A,B>`` and ``<B,A>``, so conjunctive queries
  with an equality on either attribute and an equality-or-range on the other
  become a single range probe on the appropriate orientation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.bloomrf import BloomRF
from repro.hashing import splitmix64

__all__ = [
    "float_to_key",
    "key_to_float",
    "float_keys",
    "string_to_point_key",
    "string_range_keys",
    "FloatBloomRF",
    "StringBloomRF",
    "AttributeSpec",
    "MultiAttributeBloomRF",
]

_SIGN_BIT = 1 << 63
_MASK64 = (1 << 64) - 1


# ----------------------------------------------------------------------
# floating point codec
# ----------------------------------------------------------------------
def float_to_key(value: float) -> int:
    """Monotone map ``phi``: IEEE-754 double -> uint64 preserving order.

    ``-0.0`` is normalized to ``+0.0`` so equal floats get equal codes.
    """
    if value == 0.0:
        value = 0.0  # collapses -0.0
    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    if bits & _SIGN_BIT:
        return (~bits) & _MASK64  # negative: reverse the reversed order
    return bits | _SIGN_BIT  # positive: move above all negatives


def key_to_float(key: int) -> float:
    """Inverse of :func:`float_to_key`."""
    if key & _SIGN_BIT:
        bits = key & ~_SIGN_BIT & _MASK64
    else:
        bits = (~key) & _MASK64
    (value,) = struct.unpack("<d", struct.pack("<Q", bits))
    return value


def float_keys(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`float_to_key` for a float64 array."""
    values = np.asarray(values, dtype=np.float64)
    values = np.where(values == 0.0, 0.0, values)  # collapses -0.0
    bits = values.view(np.uint64)
    negative = (bits & np.uint64(_SIGN_BIT)) != 0
    return np.where(negative, ~bits, bits | np.uint64(_SIGN_BIT))


# ----------------------------------------------------------------------
# string codec
# ----------------------------------------------------------------------
_PREFIX_BYTES = 7


def _prefix_value(data: bytes) -> int:
    """First seven bytes, left-aligned into the 7 most significant bytes."""
    padded = data[:_PREFIX_BYTES].ljust(_PREFIX_BYTES, b"\x00")
    return int.from_bytes(padded, "big") << 8


def string_to_point_key(value: str | bytes, seed: int = 0) -> int:
    """Point-query encoding: 7-byte prefix + 1-byte whole-string hash."""
    data = value.encode() if isinstance(value, str) else value
    tail_hash = splitmix64(len(data), seed=seed)
    for chunk_start in range(0, len(data), 8):
        chunk = data[chunk_start : chunk_start + 8]
        tail_hash = splitmix64(
            tail_hash ^ int.from_bytes(chunk, "big"), seed=seed
        )
    return _prefix_value(data) | (tail_hash & 0xFF)


def string_range_keys(lo: str | bytes, hi: str | bytes) -> tuple[int, int]:
    """Range-query encoding of inclusive string bounds.

    The hash byte is floored/saturated so every point encoding of a string in
    the lexicographic interval falls inside the returned key interval
    (restricted to 7-byte-prefix resolution, as in SuRF-Hash).
    """
    lo_data = lo.encode() if isinstance(lo, str) else lo
    hi_data = hi.encode() if isinstance(hi, str) else hi
    return _prefix_value(lo_data), _prefix_value(hi_data) | 0xFF


# ----------------------------------------------------------------------
# typed facades
# ----------------------------------------------------------------------
class FloatBloomRF:
    """bloomRF over IEEE-754 doubles via the monotone codec."""

    def __init__(self, filt: BloomRF) -> None:
        self.filter = filt

    @classmethod
    def tuned(
        cls,
        n_keys: int,
        bits_per_key: float,
        max_range_keys: int = 1 << 40,
        seed: int = 0x5EED,
    ) -> "FloatBloomRF":
        """Advisor-tuned float filter.

        ``max_range_keys`` is the expected query width *in code space*; as the
        paper notes, a float range of 1.0 can span ~2^61 codes, so float
        filters should be tuned generously.
        """
        return cls(
            BloomRF.tuned(
                n_keys=n_keys,
                bits_per_key=bits_per_key,
                max_range=max_range_keys,
                seed=seed,
            )
        )

    def insert(self, value: float) -> None:
        self.filter.insert(float_to_key(value))

    def insert_many(self, values: np.ndarray) -> None:
        self.filter.insert_many(float_keys(values))

    def contains_point(self, value: float) -> bool:
        return self.filter.contains_point(float_to_key(value))

    def contains_range(self, lo: float, hi: float) -> bool:
        if not lo <= hi:
            raise ValueError(f"empty float range [{lo}, {hi}]")
        return self.filter.contains_range(float_to_key(lo), float_to_key(hi))


class StringBloomRF:
    """bloomRF over variable-length strings (SuRF-Hash-style encoding)."""

    def __init__(self, filt: BloomRF, seed: int = 0) -> None:
        self.filter = filt
        self._seed = seed

    @classmethod
    def tuned(
        cls, n_keys: int, bits_per_key: float, seed: int = 0x5EED
    ) -> "StringBloomRF":
        # String ranges resolve at one-byte granularity of the 7-byte prefix:
        # a one-character range spans 2^8 codes; typical prefix ranges 2^40.
        return cls(
            BloomRF.tuned(
                n_keys=n_keys,
                bits_per_key=bits_per_key,
                max_range=1 << 40,
                seed=seed,
            ),
            seed=seed,
        )

    def insert(self, value: str | bytes) -> None:
        self.filter.insert(string_to_point_key(value, seed=self._seed))

    def contains_point(self, value: str | bytes) -> bool:
        return self.filter.contains_point(
            string_to_point_key(value, seed=self._seed)
        )

    def contains_range(self, lo: str | bytes, hi: str | bytes) -> bool:
        lo_key, hi_key = string_range_keys(lo, hi)
        return self.filter.contains_range(lo_key, hi_key)


# ----------------------------------------------------------------------
# multi-attribute filter
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttributeSpec:
    """How to reduce one attribute to its slice of the concatenated key.

    ``source_bits`` is the width of the raw attribute values; ``target_bits``
    the reduced width (the paper reduces 64-bit attributes to 32 bits).
    Reduction keeps the *high* bits, which preserves order — required for
    range predicates on the attribute.
    """

    name: str
    source_bits: int = 64
    target_bits: int = 32

    def reduce(self, value: int) -> int:
        return value >> (self.source_bits - self.target_bits)

    def reduce_range(self, lo: int, hi: int) -> tuple[int, int]:
        shift = self.source_bits - self.target_bits
        return lo >> shift, hi >> shift


class MultiAttributeBloomRF:
    """Two-attribute bloomRF(A, B) with dual-orientation insertion (Sect. 8).

    Supports conjunctive probes where at least one attribute is an equality:
    ``A = a AND B = b``, ``A = a AND B in [lo, hi]``, ``A in [lo, hi] AND
    B = b`` — the equality attribute leads the concatenation and the other
    becomes the low part, turning the probe into a single range lookup.
    """

    def __init__(
        self, filt: BloomRF, spec_a: AttributeSpec, spec_b: AttributeSpec
    ) -> None:
        if spec_a.target_bits + spec_b.target_bits > filt.domain_bits:
            raise ValueError(
                "reduced attribute widths exceed the filter domain "
                f"({spec_a.target_bits} + {spec_b.target_bits} > {filt.domain_bits})"
            )
        self.filter = filt
        self.spec_a = spec_a
        self.spec_b = spec_b

    @classmethod
    def tuned(
        cls,
        n_keys: int,
        bits_per_key: float,
        spec_a: AttributeSpec,
        spec_b: AttributeSpec,
        seed: int = 0x5EED,
    ) -> "MultiAttributeBloomRF":
        filt = BloomRF.tuned(
            n_keys=2 * n_keys,  # each tuple is inserted in both orientations
            bits_per_key=bits_per_key / 2,
            max_range=1 << max(spec_a.target_bits, spec_b.target_bits),
            seed=seed,
        )
        return cls(filt, spec_a, spec_b)

    # -- internal concatenation helpers --------------------------------
    def _key_ab(self, a_reduced: int, b_reduced: int) -> int:
        return (a_reduced << self.spec_b.target_bits) | b_reduced

    def _key_ba(self, a_reduced: int, b_reduced: int) -> int:
        return (b_reduced << self.spec_a.target_bits) | a_reduced

    # -- public API -----------------------------------------------------
    def insert(self, a_value: int, b_value: int) -> None:
        """Insert the tuple ``<A, B>`` in both concatenation orders."""
        a_red = self.spec_a.reduce(a_value)
        b_red = self.spec_b.reduce(b_value)
        self.filter.insert(self._key_ab(a_red, b_red))
        self.filter.insert(self._key_ba(a_red, b_red))

    def insert_many(self, a_values: np.ndarray, b_values: np.ndarray) -> None:
        a_red = np.asarray(a_values, dtype=np.uint64) >> np.uint64(
            self.spec_a.source_bits - self.spec_a.target_bits
        )
        b_red = np.asarray(b_values, dtype=np.uint64) >> np.uint64(
            self.spec_b.source_bits - self.spec_b.target_bits
        )
        ab = (a_red << np.uint64(self.spec_b.target_bits)) | b_red
        ba = (b_red << np.uint64(self.spec_a.target_bits)) | a_red
        self.filter.insert_many(ab)
        self.filter.insert_many(ba)

    def contains_point(self, a_value: int, b_value: int) -> bool:
        """Probe ``A = a AND B = b``."""
        a_red = self.spec_a.reduce(a_value)
        b_red = self.spec_b.reduce(b_value)
        return self.filter.contains_point(self._key_ab(a_red, b_red))

    def contains_a_eq_b_range(
        self, a_value: int, b_lo: int, b_hi: int
    ) -> bool:
        """Probe ``A = a AND B in [b_lo, b_hi]`` (one range lookup)."""
        a_red = self.spec_a.reduce(a_value)
        lo_red, hi_red = self.spec_b.reduce_range(b_lo, b_hi)
        return self.filter.contains_range(
            self._key_ab(a_red, lo_red), self._key_ab(a_red, hi_red)
        )

    def contains_b_eq_a_range(
        self, b_value: int, a_lo: int, a_hi: int
    ) -> bool:
        """Probe ``B = b AND A in [a_lo, a_hi]`` via the <B,A> orientation."""
        b_red = self.spec_b.reduce(b_value)
        lo_red, hi_red = self.spec_a.reduce_range(a_lo, a_hi)
        return self.filter.contains_range(
            self._key_ba(lo_red, b_red), self._key_ba(hi_red, b_red)
        )
