"""bloomRF core: the paper's primary contribution.

Public surface: the :class:`BloomRF` filter, its configuration, the tuning
advisor, the analytic FPR models and the datatype codecs of Sect. 8.
"""

from repro.core.advisor import AdvisorReport, TuningAdvisor, build_delta_vector
from repro.core.bloomrf import BloomRF
from repro.core.config import BloomRFConfig
from repro.core.model import (
    FprProfile,
    basic_point_fpr,
    basic_range_fpr_bound,
    extended_fpr_profile,
)
from repro.core.types import (
    AttributeSpec,
    FloatBloomRF,
    MultiAttributeBloomRF,
    StringBloomRF,
    float_to_key,
    key_to_float,
    string_range_keys,
    string_to_point_key,
)

__all__ = [
    "BloomRF",
    "BloomRFConfig",
    "TuningAdvisor",
    "AdvisorReport",
    "build_delta_vector",
    "FprProfile",
    "basic_point_fpr",
    "basic_range_fpr_bound",
    "extended_fpr_profile",
    "AttributeSpec",
    "FloatBloomRF",
    "MultiAttributeBloomRF",
    "StringBloomRF",
    "float_to_key",
    "key_to_float",
    "string_range_keys",
    "string_to_point_key",
]
