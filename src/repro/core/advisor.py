"""The bloomRF tuning advisor (Sect. 7).

Given the standard parameters — number of keys ``n``, memory budget ``m``
(bits) and an approximate maximum query-range size ``R`` — the advisor
derives a full :class:`~repro.core.config.BloomRFConfig`:

1. **Exact-level candidates.**  The heuristic places the exact bitmap where
   it costs at most 60 % of the budget: ``l_e = min{l : 2^(d-l) < 0.6 m}``;
   the candidates examined are ``l_e`` and ``l_e + 1`` (we also admit
   ``l_e - 1`` when it fits, which subsumes the paper's second phrasing).
2. **Delta vector.**  Bottom layers use the largest word (``delta = 7`` —
   64-bit words); approaching the exact level the distance shrinks
   (higher precision near the top): the remainder is halved repeatedly.
   For the paper's example (exact level 36) this yields top-down
   ``Delta = (2, 2, 4, 7, 7, 7, 7)`` exactly.
3. **Replicas** — one per layer, two on the highest layer only.
4. **Segments** — bottom (``delta = 7``) layers share the sparse segment
   ``m_3``, the remaining mid layers share ``m_2``, the exact bitmap is
   ``m_1 = 2^(d - l_e)``.
5. **Budget split.**  With ``m_1`` fixed, ``m_2`` is swept and the extended
   model evaluated; the advisor minimizes the weighted norm
   ``fpr_w^2 = fpr_m^2 + C^2 fpr_p^2`` (range-FPR for ranges up to ``R``
   versus point-FPR), then picks the best exact-level candidate.

The whole optimization is a few hundred model evaluations (~ms), matching
the paper's "~8 ms" auto-tuning claim in spirit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro._util import ceil_div, round_up
from repro.core.config import MAX_DELTA, BloomRFConfig
from repro.core.model import FprProfile, extended_fpr_profile

__all__ = ["TuningAdvisor", "AdvisorCandidate", "AdvisorReport"]

_ALIGN = 64
_MIN_SEGMENT_BITS = 512


def build_delta_vector(target_level: int, max_delta: int = MAX_DELTA) -> tuple[int, ...]:
    """Bottom-up delta vector summing to ``target_level`` (advisor step 2).

    Keeps emitting the maximal distance while at least two such layers
    remain, then repeatedly halves the remainder so the layers nearest the
    exact level are the most precise.
    """
    if target_level < 1:
        raise ValueError(f"target_level must be >= 1, got {target_level}")
    deltas: list[int] = []
    remaining = target_level
    while remaining >= 2 * max_delta:
        deltas.append(max_delta)
        remaining -= max_delta
    while remaining > 0:
        if remaining > 4:
            step = ceil_div(remaining, 2)
        elif remaining >= 2:
            step = 2
        else:
            step = 1
        step = min(step, max_delta)
        deltas.append(step)
        remaining -= step
    return tuple(deltas)


@dataclass
class AdvisorCandidate:
    """One evaluated configuration (kept for reporting / Fig. ??.C style plots)."""

    exact_level: int
    mid_fraction: float
    config: BloomRFConfig
    profile: FprProfile
    range_fpr: float
    point_fpr: float
    objective: float


@dataclass
class AdvisorReport:
    """Full advisor trace: every candidate plus the winner."""

    best: AdvisorCandidate
    candidates: list[AdvisorCandidate] = field(default_factory=list)

    def curves(self) -> dict[int, list[tuple[float, float]]]:
        """Per exact-level candidate: (mid_fraction, objective) series."""
        out: dict[int, list[tuple[float, float]]] = {}
        for cand in self.candidates:
            out.setdefault(cand.exact_level, []).append(
                (cand.mid_fraction, cand.objective)
            )
        return out


class TuningAdvisor:
    """Computes bloomRF configurations from (n, m, R) — Sect. 7."""

    def __init__(
        self,
        domain_bits: int = 64,
        point_weight: float = 4.0,
        max_delta: int = MAX_DELTA,
        exact_budget_fraction: float = 0.6,
        top_replicas: int = 2,
        distribution_constant: float = 1.0,
        seed: int = 0x5EED,
    ) -> None:
        if not 0 < exact_budget_fraction < 1:
            raise ValueError("exact_budget_fraction must be in (0, 1)")
        self.domain_bits = domain_bits
        self.point_weight = point_weight
        self.max_delta = max_delta
        self.exact_budget_fraction = exact_budget_fraction
        self.top_replicas = top_replicas
        self.distribution_constant = distribution_constant
        self.seed = seed

    # ------------------------------------------------------------------
    def exact_level_floor(self, total_bits: int) -> int:
        """``l_e = min{l : 2^(d-l) < fraction * m}`` (advisor step 1)."""
        budget = self.exact_budget_fraction * total_bits
        level = self.domain_bits
        while level > 0 and 2.0 ** (self.domain_bits - (level - 1)) < budget:
            level -= 1
        return level

    def candidate_config(
        self, exact_level: int, mid_bits: int, bottom_bits: int
    ) -> BloomRFConfig:
        """Assemble a config for one exact-level / budget-split choice."""
        deltas = build_delta_vector(exact_level, self.max_delta)
        k = len(deltas)
        replicas = [1] * k
        replicas[-1] = self.top_replicas
        bottom_layers = [i for i in range(k) if deltas[i] == self.max_delta]
        mid_layers = [i for i in range(k) if deltas[i] != self.max_delta]
        if bottom_layers and mid_layers:
            segment_of = [0 if i in mid_layers else 1 for i in range(k)]
            segment_bits = (mid_bits, bottom_bits)
        else:
            segment_of = [0] * k
            segment_bits = (mid_bits + bottom_bits,)
        return BloomRFConfig(
            domain_bits=self.domain_bits,
            deltas=deltas,
            replicas=tuple(replicas),
            segment_of=tuple(segment_of),
            segment_bits=segment_bits,
            exact_level=exact_level,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    def configure(
        self,
        n_keys: int,
        total_bits: int,
        max_range: int,
        return_report: bool = False,
    ) -> BloomRFConfig | AdvisorReport:
        """Select the best configuration for (n, m, R).

        Falls back to the tuning-free basic configuration when the budget is
        too small to afford any exact bitmap.
        """
        if n_keys <= 0:
            raise ValueError(f"n_keys must be positive, got {n_keys}")
        if total_bits <= 0:
            raise ValueError(f"total_bits must be positive, got {total_bits}")
        total_bits = max(total_bits, 64)  # smallest buildable filter
        max_range = max(1, min(max_range, 1 << self.domain_bits))

        floor_level = self.exact_level_floor(total_bits)
        candidates: list[AdvisorCandidate] = []
        for exact_level in (floor_level - 1, floor_level, floor_level + 1):
            if not 2 <= exact_level <= self.domain_bits:
                continue
            exact_bits = 1 << (self.domain_bits - exact_level)
            pmhf_budget = total_bits - exact_bits
            if pmhf_budget < 2 * _MIN_SEGMENT_BITS:
                continue
            candidates.extend(
                self._sweep_budget_split(n_keys, exact_level, pmhf_budget, max_range)
            )

        if not candidates:
            config = BloomRFConfig.basic(
                n_keys=n_keys,
                bits_per_key=total_bits / n_keys,
                domain_bits=self.domain_bits,
                delta=min(self.max_delta, self.domain_bits),
                seed=self.seed,
            )
            if not return_report:
                return config
            profile = extended_fpr_profile(
                config, n_keys, distribution_constant=self.distribution_constant
            )
            fallback = AdvisorCandidate(
                exact_level=-1,
                mid_fraction=0.0,
                config=config,
                profile=profile,
                range_fpr=profile.max_fpr_up_to_range(max_range),
                point_fpr=profile.point_fpr,
                objective=profile.weighted_norm(max_range, self.point_weight),
            )
            return AdvisorReport(best=fallback, candidates=[fallback])

        best = min(candidates, key=lambda c: c.objective)
        if return_report:
            return AdvisorReport(best=best, candidates=candidates)
        return best.config

    # ------------------------------------------------------------------
    def _sweep_budget_split(
        self, n_keys: int, exact_level: int, pmhf_budget: int, max_range: int
    ) -> list[AdvisorCandidate]:
        deltas = build_delta_vector(exact_level, self.max_delta)
        has_two_segments = any(d == self.max_delta for d in deltas) and any(
            d != self.max_delta for d in deltas
        )
        out: list[AdvisorCandidate] = []
        if has_two_segments:
            fractions = [f / 100 for f in range(5, 96, 5)]
        else:
            fractions = [0.0]
        for fraction in fractions:
            if has_two_segments:
                mid_bits = round_up(
                    max(int(fraction * pmhf_budget), _MIN_SEGMENT_BITS), _ALIGN
                )
                bottom_bits = pmhf_budget - mid_bits
                bottom_bits -= bottom_bits % _ALIGN
                if bottom_bits < _MIN_SEGMENT_BITS:
                    continue
            else:
                mid_bits = pmhf_budget - pmhf_budget % _ALIGN
                bottom_bits = 0
            try:
                config = self.candidate_config(exact_level, mid_bits, bottom_bits)
            except ValueError:
                continue
            profile = extended_fpr_profile(
                config, n_keys, distribution_constant=self.distribution_constant
            )
            range_fpr = profile.max_fpr_up_to_range(max_range)
            point_fpr = profile.point_fpr
            objective = math.sqrt(
                range_fpr**2 + (self.point_weight * point_fpr) ** 2
            )
            out.append(
                AdvisorCandidate(
                    exact_level=exact_level,
                    mid_fraction=fraction,
                    config=config,
                    profile=profile,
                    range_fpr=range_fpr,
                    point_fpr=point_fpr,
                    objective=objective,
                )
            )
        return out
