"""Analytic FPR models for bloomRF (Sect. 5 basic, Sect. 7 extended).

Two models are provided:

* the closed-form *basic* model — eq. (5)/(6) of the paper: an upper bound on
  the range-query FPR of the tuning-free filter, plus the standard
  Bloom-style point FPR with the layer count fixed by the datatype; and
* the *extended* recursive model of Sect. 7, which walks dyadic levels from
  the exact level downwards, tracking per-level expected counts of true
  positives (``tp``), false positives (``fp``) and true negatives (``tn``),
  honoring segments (per-segment fill probability ``p``), replicated hash
  functions and the exact bitmap.  This is the model the tuning advisor
  optimizes over.

Notation matches the paper: ``p`` is the probability that a bit is **zero**;
a DI on level ``l`` probed through layer ``i`` reads ``s = 2**(l - l_i)``
adjacent bits per replica, so the probe fires with
``p' = (1 - p**s) ** r_i`` (the closed form consistent with the paper's
``r=1`` expansions; its printed ``r=2`` expansion has a coefficient typo —
see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util import floor_log2
from repro.core.config import BloomRFConfig

__all__ = [
    "basic_point_fpr",
    "basic_range_fpr_bound",
    "expected_occupied",
    "extended_fpr_profile",
    "FprProfile",
    "probe_fire_probability",
]


def basic_point_fpr(n_keys: int, num_bits: int, num_hashes: int) -> float:
    """Point FPR of basic bloomRF: ``(1 - e^{-kn/m})^k`` (Sect. 5)."""
    if n_keys <= 0:
        return 0.0
    p_zero = math.exp(-num_hashes * n_keys / num_bits)
    return (1.0 - p_zero) ** num_hashes


def basic_range_fpr_bound(
    n_keys: int,
    num_bits: int,
    num_hashes: int,
    delta: int,
    range_size: int,
    distribution_constant: float = 1.0,
) -> float:
    """Eq. (6): FPR bound for range queries up to ``range_size`` keys.

    ``epsilon <= 2 (1 - e^{-Ckn/m})^(k - log2(R)/delta)``.  Returns 1.0 when
    the exponent is non-positive (the bound is vacuous there — the paper's
    basic filter is rated for ``R <= 2**14`` with typical parameters).
    """
    if range_size < 1:
        raise ValueError(f"range_size must be >= 1, got {range_size}")
    if n_keys <= 0:
        return 0.0
    p_zero = math.exp(
        -distribution_constant * num_hashes * n_keys / num_bits
    )
    exponent = num_hashes - math.log2(range_size) / delta
    if exponent <= 0:
        return 1.0
    return min(1.0, 2.0 * (1.0 - p_zero) ** exponent)


def expected_occupied(num_intervals: float, n_keys: int) -> float:
    """Expected number of DIs occupied by ``n`` uniform keys.

    ``N * (1 - (1 - 1/N)^n)`` evaluated stably for the huge ``N = 2**(d-l)``
    counts that occur on low levels of 64-bit domains.
    """
    if num_intervals <= 0 or n_keys <= 0:
        return 0.0
    if num_intervals <= 1.0:
        return num_intervals  # a single interval is certainly occupied
    # -expm1(n * log1p(-1/N)) is exact even when n/N is astronomically small.
    return num_intervals * -math.expm1(n_keys * math.log1p(-1.0 / num_intervals))


def probe_fire_probability(p_zero: float, span_bits: int, replicas: int) -> float:
    """Probability that probing ``span_bits`` adjacent bits fires (Sect. 7).

    One replica fires when at least one of its ``span_bits`` bits is set;
    all ``replicas`` must fire: ``(1 - p**s)^r``.
    """
    return (1.0 - p_zero**span_bits) ** replicas


@dataclass(frozen=True)
class FprProfile:
    """Per-level FPR estimates: ``fpr[l]`` for dyadic levels ``0..d``."""

    fpr: tuple[float, ...]
    fp: tuple[float, ...]
    tn: tuple[float, ...]
    tp: tuple[float, ...]
    p_zero_by_segment: tuple[float, ...]

    @property
    def point_fpr(self) -> float:
        """Estimated FPR of point queries (level 0, full error-correction)."""
        return self.fpr[0]

    def max_fpr_up_to_range(self, range_size: int) -> float:
        """``fpr_m`` of Sect. 7: worst per-level FPR for ranges <= R."""
        top = min(floor_log2(max(range_size, 1)), len(self.fpr) - 1)
        return max(self.fpr[: top + 1])

    def weighted_norm(self, range_size: int, point_weight: float) -> float:
        """The advisor's objective ``sqrt(fpr_m^2 + C^2 fpr_p^2)``."""
        fpr_m = self.max_fpr_up_to_range(range_size)
        return math.sqrt(fpr_m**2 + (point_weight * self.point_fpr) ** 2)


def extended_fpr_profile(
    config: BloomRFConfig,
    n_keys: int,
    distribution_constant: float = 1.0,
    tp_mode: str = "expected",
) -> FprProfile:
    """Sect. 7 extended model: per-level FPR for an arbitrary configuration.

    ``tp_mode`` selects the true-positive estimator: ``"expected"`` (expected
    occupied DIs under uniform keys — matches the paper's worked example) or
    ``"min"`` (the simpler ``min(n, 2^{d-l})`` stated in the running text).
    """
    d = config.domain_bits
    n = n_keys
    if tp_mode == "expected":
        tp = [expected_occupied(2.0 ** (d - lvl), n) for lvl in range(d + 1)]
    elif tp_mode == "min":
        tp = [min(float(n), 2.0 ** (d - lvl)) for lvl in range(d + 1)]
    else:
        raise ValueError(f"unknown tp_mode {tp_mode!r}")

    p_by_segment = []
    for s, seg_bits in enumerate(config.segment_bits):
        hashes = config.hash_count_in_segment(s)
        inside = 1.0 - distribution_constant / seg_bits
        p_by_segment.append(max(inside, 0.0) ** (hashes * n) if inside > 0 else 0.0)

    fp = [0.0] * (d + 1)
    tn = [0.0] * (d + 1)
    boundary = config.top_boundary_level
    for level in range(d, boundary - 1, -1):
        total = 2.0 ** (d - level)
        if config.exact_level is not None:
            fp[level] = 0.0  # exact bitmap: no error at/above the exact level
            tn[level] = total - tp[level]
        else:
            fp[level] = total - tp[level]  # saturated omitted levels: all fire
            tn[level] = 0.0

    for layer in reversed(range(config.num_layers)):
        lo_level = config.levels[layer]
        hi_level = lo_level + config.deltas[layer]  # == next layer's level
        p_zero = p_by_segment[config.segment_of[layer]]
        replicas = config.replicas[layer]
        for level in range(hi_level - 1, lo_level - 1, -1):
            span = 1 << (level - lo_level)
            fire = probe_fire_probability(p_zero, span, replicas)
            scale = 2.0 ** (hi_level - level)
            fp_pot = max(0.0, scale * (fp[hi_level] + tp[hi_level]) - tp[level])
            fp[level] = fire * fp_pot
            tn[level] = scale * tn[hi_level] + (1.0 - fire) * fp_pot

    fpr = []
    for level in range(d + 1):
        denom = fp[level] + tn[level]
        fpr.append(fp[level] / denom if denom > 0 else 0.0)

    return FprProfile(
        fpr=tuple(fpr),
        fp=tuple(fp),
        tn=tuple(tn),
        tp=tuple(tp),
        p_zero_by_segment=tuple(p_by_segment),
    )
